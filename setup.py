"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 editable wheels, which the pinned
offline toolchain here cannot build (no `wheel` distribution); this shim
lets `python setup.py develop` install the package in editable mode with
metadata read from pyproject.toml.
"""

from setuptools import setup

setup()
