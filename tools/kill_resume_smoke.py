#!/usr/bin/env python3
"""Kill-resume smoke test: SIGKILL a sweep mid-run, resume, compare.

The strongest claim the orchestration layer makes is that *recovery
never changes results*: a sweep that is killed uncleanly (no exception
handlers, no atexit — ``SIGKILL``) and then resumed from its checkpoint
must produce aggregates bit-identical to an uninterrupted run.  Unit
tests fabricate interruptions with ``max_units``; this script kills a
real process.

Protocol:

1. Run the sweep in-process, no checkpointing — the reference.
2. Spawn a child (``--child``) running the same sweep with a checkpoint
   directory and ``REPRO_FAULT_KILL_AFTER=2`` in its environment: the
   orchestrator SIGKILLs itself right after its 2nd durable flush
   (``flush_every=1``, so mid-run by construction).  The parent asserts
   the child died by signal and left a loadable, partial checkpoint.
3. Resume in-process from the orphaned checkpoint and assert the merged
   results match the reference exactly and that at least the flushed
   units were skipped, not recomputed.

Exit status 0 on success; raises (non-zero) on any mismatch.  Used by
the ``kill-resume`` CI job; run locally with::

    PYTHONPATH=src python tools/kill_resume_smoke.py
    PYTHONPATH=src python tools/kill_resume_smoke.py --engine batch

``--engine`` selects the sweep engine for every phase (the reference,
the killed child, and the resume — and the checkpoint fingerprint binds
to it).  ``batch`` exercises the grouped dispatch path, where the child
completes whole per-instance payloads atomically and the resume must
trim exactly the flushed entries out of each batch payload.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.observability.stats import StatsCollector  # noqa: E402
from repro.orchestration import (  # noqa: E402
    ENV_FAULT_KILL_AFTER,
    CheckpointStore,
    resumable_sweep,
    sweep_fingerprint,
)
from repro.workloads.base import generate_batch  # noqa: E402
from repro.workloads.uniform import UniformWorkload  # noqa: E402

ALGOS = ["first_fit", "move_to_front", "random_fit"]
KWARGS = {"random_fit": {"seed": 42}}
KILL_AFTER_FLUSHES = 2


def make_batch():
    """The fixed workload every phase of the protocol shares."""
    gen = UniformWorkload(d=2, n=30, mu=5, T=25, B=10)
    return generate_batch(gen, 6, seed=7)


def run_sweep(engine="classic", checkpoint_dir=None, resume=False, collector=None):
    """One sweep over the shared workload (serial: deterministic order)."""
    return resumable_sweep(
        ALGOS,
        make_batch(),
        processes=0,
        algorithm_kwargs=KWARGS,
        engine=engine,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        flush_every=1,
        collector=collector,
    )


def aggregates(results):
    """The comparison key: every per-unit number that reaches a paper table."""
    return {
        name: [(r.instance_index, r.cost, r.num_bins, r.lower_bound)
               for r in results[name]]
        for name in sorted(results)
    }


def child_main(checkpoint_dir: str, engine: str) -> int:
    """Sweep under the kill plan — never returns normally in the smoke."""
    run_sweep(engine=engine, checkpoint_dir=checkpoint_dir)
    return 0  # only reachable if the kill hook did not fire


def parent_main(engine: str) -> int:
    print(f"[1/3] reference run (in-process, no checkpoint, engine={engine})")
    reference = aggregates(run_sweep(engine=engine))
    total_units = sum(len(v) for v in reference.values())

    with tempfile.TemporaryDirectory(prefix="kill-resume-") as ckpt:
        print(f"[2/3] child run, SIGKILL after flush #{KILL_AFTER_FLUSHES}")
        env = dict(os.environ)
        env[ENV_FAULT_KILL_AFTER] = str(KILL_AFTER_FLUSHES)
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", ckpt,
             "--engine", engine],
            env=env,
            timeout=600,
        )
        if proc.returncode == 0:
            raise SystemExit("child survived: the kill hook never fired")
        print(f"      child died with returncode {proc.returncode} (expected)")

        fingerprint = sweep_fingerprint(ALGOS, make_batch(), KWARGS, engine)
        store = CheckpointStore(ckpt, fingerprint=fingerprint)
        flushed = len(store)
        if flushed < KILL_AFTER_FLUSHES:
            raise SystemExit(
                f"checkpoint holds {flushed} units, expected >= {KILL_AFTER_FLUSHES}"
            )
        if flushed >= total_units:
            raise SystemExit("child finished the whole sweep before dying")
        print(f"      checkpoint survived with {flushed}/{total_units} units")

        print("[3/3] resume from the orphaned checkpoint")
        col = StatsCollector()
        resumed = aggregates(run_sweep(engine=engine, checkpoint_dir=ckpt,
                                       resume=True, collector=col))
        stats = col.snapshot()
        if stats.units_resumed != flushed:
            raise SystemExit(
                f"resume recomputed flushed work: units_resumed="
                f"{stats.units_resumed}, checkpoint held {flushed}"
            )
        if resumed != reference:
            raise SystemExit("resumed aggregates differ from the reference run")

    print(f"OK: {total_units} units, {flushed} resumed, aggregates bit-identical")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="CHECKPOINT_DIR", default=None,
                        help="internal: run the killable sweep phase")
    parser.add_argument("--engine", choices=["classic", "fast", "batch"],
                        default="classic",
                        help="sweep engine for every phase (bound into the "
                             "checkpoint fingerprint)")
    args = parser.parse_args()
    if args.child is not None:
        return child_main(args.child, args.engine)
    return parent_main(args.engine)


if __name__ == "__main__":
    raise SystemExit(main())
