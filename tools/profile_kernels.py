#!/usr/bin/env python
"""Per-kernel micro-profiler: events/sec per (policy, backend) cell.

Times the replay kernels of every available fastpath backend on one
pinned workload — no classic-engine baseline, no suite plumbing — so a
kernel change can be profiled in seconds:

    PYTHONPATH=src python tools/profile_kernels.py
    PYTHONPATH=src python tools/profile_kernels.py --n 50000 --d 4
    PYTHONPATH=src python tools/profile_kernels.py --policy best_fit:lp:3.0
    PYTHONPATH=src python tools/profile_kernels.py --json

Each cell reports the minimum wall time over ``--repeats`` runs and the
derived events/sec (one arrival plus one departure per item).  The
numba tier — when importable — is warmed up first and its one-off JIT
cost printed separately (``jit_compile_s``), never folded into the
per-run timings; under ``REPRO_NUMBA_PYFUNC=1`` the same cells run the
uncompiled kernels (plumbing checks, not perf).  Context construction
(event-index sort) is shared per backend family and excluded from the
timed region via a pre-built :class:`~repro.simulation.fastpath.ReplayContext`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.simulation.fastpath import (  # noqa: E402
    FAST_POLICIES,
    FastEngine,
    ReplayContext,
    available_backends,
)
from repro.workloads.uniform import UniformWorkload  # noqa: E402

_DEFAULT_POLICIES = tuple(sorted(FAST_POLICIES)) + (
    "best_fit:l1",
    "best_fit:lp:3.0",
)


def profile(
    n: int = 20000,
    d: int = 2,
    seed: int = 20230613,
    repeats: int = 3,
    policies=None,
    backends=None,
    trial_seed: int = 0,
) -> dict:
    """Profile every (policy, backend) cell; return the result payload."""
    workload = UniformWorkload(n=n, d=d)
    instance = workload.sample_seeded(seed)
    events = 2 * n
    backends = tuple(backends) if backends else available_backends()
    policies = tuple(policies) if policies else _DEFAULT_POLICIES

    jit_compile_s = 0.0
    if "numba" in backends:
        from repro.simulation import kernels_numba

        jit_compile_s = kernels_numba.warmup()

    cells = {}
    for backend in backends:
        ctx = ReplayContext(instance, backend=backend)
        for policy in policies:
            best = float("inf")
            for _ in range(max(1, repeats)):
                engine = FastEngine(
                    instance, policy, seed=trial_seed,
                    backend=backend, context=ctx,
                )
                t0 = time.perf_counter()
                engine.run()
                best = min(best, time.perf_counter() - t0)
            cells[f"{policy}/{backend}"] = {
                "policy": policy,
                "backend": backend,
                "wall_time_s": best,
                "events": events,
                "events_per_sec": events / best if best > 0 else 0.0,
            }
    return {
        "n": n,
        "d": d,
        "seed": seed,
        "repeats": repeats,
        "backends": list(backends),
        "jit_compile_s": jit_compile_s,
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20000,
                        help="items in the pinned uniform workload")
    parser.add_argument("--d", type=int, default=2, help="vector dimension")
    parser.add_argument("--seed", type=int, default=20230613,
                        help="workload seed")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per cell; wall-time is the min")
    parser.add_argument("--policy", action="append", default=None,
                        help="restrict to one policy spec (repeatable)")
    parser.add_argument("--backend", action="append", default=None,
                        choices=["numpy", "python", "vectorized", "numba"],
                        help="restrict to one backend (repeatable; "
                             "default: all available)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw payload as JSON instead of a table")
    args = parser.parse_args(argv)

    requested = args.backend
    if requested:
        missing = [b for b in requested if b not in available_backends()]
        if missing:
            print(f"unavailable backend(s): {', '.join(missing)} "
                  f"(available: {', '.join(available_backends())})",
                  file=sys.stderr)
            return 1

    payload = profile(
        n=args.n, d=args.d, seed=args.seed, repeats=args.repeats,
        policies=args.policy, backends=requested,
    )
    if args.as_json:
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    print(f"workload: n={payload['n']} d={payload['d']} "
          f"seed={payload['seed']} ({2 * payload['n']} events), "
          f"repeats={payload['repeats']}")
    if "numba" in payload["backends"]:
        print(f"numba jit compile: {payload['jit_compile_s']:.2f} s "
              f"(one-off, excluded from cells)")
    width = max(len(k) for k in payload["cells"]) + 2
    print(f"{'cell'.ljust(width)}{'wall (ms)':>12}{'events/s':>14}")
    for key in sorted(payload["cells"]):
        cell = payload["cells"][key]
        print(f"{key.ljust(width)}"
              f"{cell['wall_time_s'] * 1e3:>12.2f}"
              f"{cell['events_per_sec']:>14.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
