#!/usr/bin/env python
"""Documentation gate: links resolve, code blocks run, api.md is complete.

Run from anywhere (the repo root is derived from this file's location):

    python tools/check_docs.py

Three checks, any failure exits non-zero with a per-item report:

1. **Links** — every intra-repo markdown link (``[text](relative/path)``)
   in the checked files points at a file that exists, and every anchor
   fragment (``path#section`` or the pure-fragment ``#section``, which
   targets the current file) names an actual heading of the target
   markdown file (GitHub heading-slug rules, duplicate-suffix
   included).  External (``http``/``mailto``) links are skipped.
2. **Code blocks** — every ``python`` fenced block either executes (if
   it is doctest-style, i.e. its first line starts with ``>>>``) or at
   least compiles.  All doctest blocks of one markdown file run in a
   single shared-globals session, so later blocks may reuse names bound
   by earlier ones (the docs are written that way on purpose).
3. **API coverage** — every module under ``src/repro`` is mentioned by
   its dotted name in ``docs/api.md``; new modules must be documented
   before CI goes green.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: Markdown files under the gate.  Driver-owned scratch files (ISSUE,
#: PAPER(S), SNIPPETS, CHANGES) are deliberately out of scope.
CHECKED_FILES = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "EXPERIMENTS.md",
    REPO / "ROADMAP.md",
    *sorted((REPO / "docs").glob("*.md")),
]

LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")


def heading_slugs(text: str) -> set:
    """GitHub anchor slugs of every markdown heading in ``text``.

    Mirrors GitHub's slugger: formatting stripped, lowercased,
    punctuation (everything but word characters, hyphens, and spaces)
    removed, spaces hyphenated, and duplicate headings suffixed
    ``-1``, ``-2``, ...  Headings inside fenced code blocks (``# shell
    comments``, say) are ignored.
    """
    counts: Dict[str, int] = {}
    slugs = set()
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", m.group(2))
        title = title.replace("`", "").replace("*", "")
        slug = re.sub(r"[^\w\- ]", "", title.lower()).strip().replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def iter_code_blocks(text: str) -> List[Tuple[str, int, str]]:
    """Yield ``(language, start_line, body)`` for each fenced block."""
    blocks = []
    lang, start, buf = None, 0, []
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = FENCE_RE.match(line)
        if m and lang is None:
            lang, start, buf = m.group(1) or "", lineno, []
        elif line.strip() == "```" and lang is not None:
            blocks.append((lang, start, "\n".join(buf)))
            lang = None
        elif lang is not None:
            buf.append(line)
    return blocks


def check_links(
    path: Path, text: str, errors: List[str], slug_cache: Dict[Path, set]
) -> None:
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        rel, _, frag = target.partition("#")
        dest = (path.parent / rel).resolve() if rel else path
        if rel and not dest.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")
            continue
        if not frag or dest.suffix != ".md":
            continue
        if dest not in slug_cache:
            slug_cache[dest] = heading_slugs(dest.read_text(encoding="utf-8"))
        if frag not in slug_cache[dest]:
            errors.append(
                f"{path.relative_to(REPO)}: broken anchor -> {target} "
                f"(no such heading in {dest.name})"
            )


def check_code_blocks(path: Path, text: str, errors: List[str]) -> None:
    doctest_blocks: List[Tuple[int, str]] = []
    for lang, lineno, body in iter_code_blocks(text):
        if lang != "python":
            continue
        stripped = body.lstrip()
        if stripped.startswith(">>>"):
            doctest_blocks.append((lineno, body))
        else:
            try:
                compile(body, f"{path.name}:{lineno}", "exec")
            except SyntaxError as exc:
                errors.append(
                    f"{path.relative_to(REPO)}:{lineno}: block does not "
                    f"compile: {exc}"
                )
    if not doctest_blocks:
        return
    # One shared-globals session per file: later blocks reuse earlier names.
    source = "\n".join(body for _, body in doctest_blocks)
    parser = doctest.DocTestParser()
    test = parser.get_doctest(source, {}, path.name, str(path), 0)
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS, verbose=False)
    failures: List[str] = []
    runner.run(test, out=failures.append)
    if runner.failures or runner.tries == 0 and doctest_blocks:
        detail = "".join(failures).strip() or "no examples parsed"
        errors.append(
            f"{path.relative_to(REPO)}: doctest session failed "
            f"({runner.failures}/{runner.tries}):\n{detail}"
        )


def public_modules() -> Dict[str, Path]:
    """Dotted name -> path for every module under ``src/repro``."""
    out: Dict[str, Path] = {}
    for py in sorted((SRC / "repro").rglob("*.py")):
        rel = py.relative_to(SRC)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]  # the package itself
        if not parts or any(
            p.startswith("_") and p != "__main__" for p in parts
        ):
            continue
        out[".".join(parts)] = py
    return out


def check_api_coverage(errors: List[str]) -> int:
    api_text = (REPO / "docs" / "api.md").read_text(encoding="utf-8")
    modules = public_modules()
    for dotted in sorted(modules):
        if dotted == "repro":
            continue
        if dotted not in api_text:
            errors.append(f"docs/api.md: module {dotted} is not documented")
    return len(modules)


def main() -> int:
    sys.path.insert(0, str(SRC))
    errors: List[str] = []
    slug_cache: Dict[Path, set] = {}
    for path in CHECKED_FILES:
        if not path.exists():
            errors.append(f"missing checked file: {path.relative_to(REPO)}")
            continue
        text = path.read_text(encoding="utf-8")
        slug_cache.setdefault(path.resolve(), heading_slugs(text))
        check_links(path.resolve(), text, errors, slug_cache)
        check_code_blocks(path, text, errors)
    n_modules = check_api_coverage(errors)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(
        f"check_docs: OK ({len(CHECKED_FILES)} files, "
        f"{n_modules} modules covered by docs/api.md)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
