#!/usr/bin/env python
"""Bounded-memory smoke: a long Poisson stream must stay O(peak live items).

The CI ``streaming`` job's memory gate.  Streams a lazily generated
Poisson workload (no instance, no item list, no assignment map) through
the :class:`~repro.streaming.StreamingEngine` and asserts the two
things the memory model promises:

1. the peak number of concurrently live items stays a small fraction of
   the total stream length (the expected peak is ``rate`` x mean
   duration, independent of the horizon); and
2. the engine really consumed the whole stream (total items close to
   ``rate * horizon``), so the bound was not met by truncation.

Exit code 0 on success, 1 with a report on violation.

Usage (from the repo root)::

    PYTHONPATH=src python tools/streaming_memory_smoke.py
    PYTHONPATH=src python tools/streaming_memory_smoke.py --rate 200 --horizon 2000
"""

from __future__ import annotations

import argparse
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.algorithms.registry import make_algorithm  # noqa: E402
from repro.streaming import StreamingEngine  # noqa: E402
from repro.workloads.poisson import PoissonWorkload  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--policy", default="next_fit")
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--rate", type=float, default=100.0)
    parser.add_argument("--horizon", type=float, default=1000.0,
                        help="default gives ~100k items / ~200k events")
    parser.add_argument("--seed", type=int, default=20230419)
    parser.add_argument("--max-live-frac", type=float, default=0.05,
                        dest="max_live_frac",
                        help="peak live items must stay below this fraction "
                             "of the total (default 5%%; the expected value "
                             "for the default stream is ~0.55%%)")
    args = parser.parse_args(argv)

    workload = PoissonWorkload(d=args.d, rate=args.rate, horizon=args.horizon)
    engine = StreamingEngine(
        make_algorithm(args.policy), workload.capacity, record_assignment=False
    )
    t0 = time.perf_counter()
    result = engine.run(workload.stream_seeded(args.seed))
    wall = time.perf_counter() - t0

    expected_items = args.rate * args.horizon
    print(f"streaming memory smoke: {result.events} events "
          f"({result.arrivals} items) in {wall:.1f} s, "
          f"peak live {result.peak_live_items}, "
          f"peak open bins {result.peak_open_bins}")

    problems = []
    live_frac = result.peak_live_items / max(1, result.arrivals)
    if live_frac > args.max_live_frac:
        problems.append(
            f"peak live items {result.peak_live_items} is "
            f"{live_frac:.1%} of the {result.arrivals}-item stream "
            f"(budget {args.max_live_frac:.1%}) — live state is not bounded"
        )
    if result.arrivals < 0.5 * expected_items:
        problems.append(
            f"only {result.arrivals} items consumed of ~{expected_items:.0f} "
            f"expected — the stream was truncated, the bound proves nothing"
        )
    if result.departures != result.arrivals:
        problems.append(
            f"{result.arrivals} arrivals but {result.departures} departures "
            f"— items leaked past the end-of-stream drain"
        )
    if problems:
        print("FAIL:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"OK: peak live fraction {live_frac:.2%} "
          f"<= budget {args.max_live_frac:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
