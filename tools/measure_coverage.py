#!/usr/bin/env python
"""Dependency-free line coverage for ``src/repro`` over the tier-1 suite.

CI gates on ``pytest --cov=repro --cov-fail-under=N`` (pytest-cov is part
of the ``test`` extra).  This tool exists to *choose and audit* ``N``
without needing coverage.py locally: it installs a ``sys.settrace`` hook
that records line events for frames whose code lives under ``src/repro``,
runs the tier-1 pytest suite in-process, and reports per-module and total
line coverage (executable lines = the union of ``co_lines()`` over every
code object compiled from each module, the same universe a tracing
coverage tool sees).

Numbers here track coverage.py's within a couple of points (it excludes
some lines this tool counts, e.g. ``pragma: no cover`` blocks), so the
CI ``--cov-fail-under`` value is pinned a few points *below* this tool's
figure.

Usage::

    python tools/measure_coverage.py            # run tier-1, print report
    python tools/measure_coverage.py -m fuzz    # any extra pytest args pass through
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from types import CodeType
from typing import Dict, Set

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PKG = SRC / "repro"

_hits: Dict[str, Set[int]] = {}
_pkg_prefix = str(PKG)


def _local_tracer(frame, event, arg):
    if event == "line":
        _hits.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(_pkg_prefix):
        return _local_tracer
    return None


def _executable_lines(code: CodeType) -> Set[int]:
    lines: Set[int] = set()
    for _, _, lineno in code.co_lines():
        if lineno is not None:
            lines.add(lineno)
    for const in code.co_consts:
        if isinstance(const, CodeType):
            lines |= _executable_lines(const)
    return lines


def main(argv) -> int:
    sys.path.insert(0, str(SRC))
    import pytest  # imported before tracing so its own frames stay cheap

    threading.settrace(_global_tracer)
    sys.settrace(_global_tracer)
    try:
        exit_code = pytest.main(["-x", "-q", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"pytest failed (exit {exit_code}); coverage report withheld")
        return int(exit_code)

    total_exec = total_hit = 0
    rows = []
    for path in sorted(PKG.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        executable = _executable_lines(compile(source, str(path), "exec"))
        if not executable:
            continue
        hit = _hits.get(str(path), set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        rows.append((path.relative_to(SRC), len(hit), len(executable)))

    width = max(len(str(r[0])) for r in rows)
    print(f"\n{'module':<{width}}  covered  executable      %")
    for mod, hit, executable in rows:
        print(f"{str(mod):<{width}}  {hit:>7}  {executable:>10}  {100 * hit / executable:5.1f}")
    pct = 100.0 * total_hit / total_exec
    print("-" * (width + 32))
    print(f"{'TOTAL':<{width}}  {total_hit:>7}  {total_exec:>10}  {pct:5.1f}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
