"""Result persistence: experiment outputs to/from JSON.

Sweeps at the paper's full scale take hours; this module lets experiment
drivers checkpoint their measurements and lets downstream plotting load
them without re-running anything.  The on-disk format is plain JSON with
a small schema header so files remain inspectable and diff-able.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping

from ..core.errors import ConfigurationError
from .aggregate import SampleStats
from .sweep import SweepCell

__all__ = ["save_cells", "load_cells", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


def _stats_to_dict(stats: SampleStats) -> dict:
    return stats.as_dict()


def _stats_from_dict(payload: Mapping[str, float]) -> SampleStats:
    return SampleStats(
        count=int(payload["count"]),
        mean=float(payload["mean"]),
        std=float(payload["std"]),
        ci_halfwidth=float(payload["ci_halfwidth"]),
        minimum=float(payload["min"]),
        q25=float(payload["q25"]),
        median=float(payload["median"]),
        q75=float(payload["q75"]),
        maximum=float(payload["max"]),
    )


def save_cells(cells: List[SweepCell], path: str, include_raw: bool = True) -> None:
    """Write sweep cells to ``path`` as JSON.

    Parameters
    ----------
    cells:
        The measured cells.
    path:
        Output file; parent directories are created.
    include_raw:
        Whether to store the per-instance ratio lists alongside the
        aggregates (larger files, but lets the loader re-aggregate).
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "cells": [
            {
                "params": dict(cell.params),
                "stats": {a: _stats_to_dict(s) for a, s in cell.stats.items()},
                "ratios": {a: list(v) for a, v in cell.ratios.items()}
                if include_raw
                else {},
            }
            for cell in cells
        ],
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)


def load_cells(path: str) -> List[SweepCell]:
    """Read sweep cells saved by :func:`save_cells`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported schema {payload.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    cells: List[SweepCell] = []
    for rec in payload["cells"]:
        cells.append(
            SweepCell(
                params=rec["params"],
                ratios={a: list(v) for a, v in rec.get("ratios", {}).items()},
                stats={a: _stats_from_dict(s) for a, s in rec["stats"].items()},
            )
        )
    return cells
