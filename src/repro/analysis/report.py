"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers produce aligned, pipe-separated text tables (no plotting
dependency required) plus a compact ASCII chart for figure-like series.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series_chart", "format_interval_diagram"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    def fmt(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    str_rows = [[fmt(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 50,
) -> str:
    """Tiny ASCII bar chart: one row per (x, series) pair.

    Enough to eyeball the shape of a Figure 4 panel in a terminal; the
    numeric series themselves are also printed so nothing is lost to the
    rendering.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals:
        return title or ""
    vmax = max(all_vals)
    if vmax <= 0:
        vmax = 1.0
    name_w = max(len(name) for name in series)
    for i, x in enumerate(x_labels):
        lines.append(f"x = {x}")
        for name, vals in series.items():
            if i >= len(vals):
                continue
            bar = "#" * max(1, int(round(width * vals[i] / vmax)))
            lines.append(f"  {name.ljust(name_w)} {vals[i]:8.3f} {bar}")
    return "\n".join(lines)


def format_interval_diagram(
    rows: Mapping[str, Sequence[tuple]],
    horizon: float,
    width: int = 72,
    markers: Optional[Mapping[str, str]] = None,
) -> str:
    """ASCII timeline diagram (Figures 1 and 2 style).

    ``rows`` maps a label (e.g. ``"bin 0"``) to a list of
    ``(start, end, kind)`` interval triples; ``markers`` maps a kind to
    its fill character (defaults: first kind ``=``, second ``-``).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    kinds = sorted({k for ivs in rows.values() for (_, _, k) in ivs})
    default_chars = ["=", "-", "#", "~", "+"]
    markers = dict(markers or {})
    for i, k in enumerate(kinds):
        markers.setdefault(k, default_chars[i % len(default_chars)])
    label_w = max((len(lbl) for lbl in rows), default=0)
    lines = [f"0{' ' * (width - 2)}{horizon:g}"]
    for label, ivs in rows.items():
        canvas = [" "] * width
        for start, end, kind in ivs:
            lo = int(round(width * max(0.0, start) / horizon))
            hi = int(round(width * min(horizon, end) / horizon))
            for p in range(lo, max(lo + 1, hi)):
                if p < width:
                    canvas[p] = markers[kind]
        lines.append(f"{label.ljust(label_w)} |{''.join(canvas)}|")
    legend = "  ".join(f"{markers[k]} = {k}" for k in kinds)
    if legend:
        lines.append(legend)
    return "\n".join(lines)
