"""Parameter-sweep harness: algorithms × generators × instances.

The workhorse behind Figure 4 and the extension studies: run a set of
algorithms over a batch of instances from each generator configuration,
collect per-instance performance ratios, and aggregate.

Ratios are computed against the Lemma 1(i) lower bound (the paper's
metric).  The lower bound is computed once per instance and shared across
algorithms, and instances are generated once per configuration and shared
across algorithms — both essential for apples-to-apples comparisons and
for keeping the m = 1000 sweeps fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..algorithms.registry import make_algorithm
from ..core.instance import Instance
from ..optimum.lower_bounds import height_lower_bound
from ..simulation.runner import run
from .aggregate import SampleStats, summarize
from .theory import TABLE1, lower_bound, upper_bound

__all__ = ["SweepCell", "sweep_cell", "sweep_grid"]


@dataclass(frozen=True)
class SweepCell:
    """Results of one (generator configuration) × (algorithm set) cell.

    Attributes
    ----------
    params:
        The configuration's parameters (e.g. ``{"d": 2, "mu": 10}``).
    ratios:
        Per-algorithm list of per-instance performance ratios.
    stats:
        Per-algorithm :class:`~repro.analysis.aggregate.SampleStats`.
    """

    params: Mapping[str, object]
    ratios: Mapping[str, List[float]]
    stats: Mapping[str, SampleStats]

    def mean(self, algorithm: str) -> float:
        """Mean ratio of ``algorithm`` in this cell."""
        return self.stats[algorithm].mean

    def ranking(self) -> List[str]:
        """Algorithms sorted by mean ratio, best first."""
        return sorted(self.stats, key=lambda a: self.stats[a].mean)

    def within_theory(self, mu: float, d: int) -> Dict[str, bool]:
        """Check each algorithm's mean ratio against its Table 1 upper bound.

        Only algorithms with a Table 1 row are checked.  Because the
        ratio denominator is a lower bound on OPT, measured ratios can
        only *over*-estimate the true ratio, so ``mean <= upper bound``
        is the expected (not guaranteed) direction — this is a smoke
        check used by tests and reports.
        """
        out: Dict[str, bool] = {}
        for algo, st in self.stats.items():
            if algo in TABLE1:
                out[algo] = st.mean <= upper_bound(algo, mu, d)
        return out


def sweep_cell(
    algorithms: Sequence[str],
    instances: Iterable[Instance],
    params: Optional[Mapping[str, object]] = None,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    processes: int = 0,
    engine: str = "classic",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
) -> SweepCell:
    """Run ``algorithms`` over ``instances`` and aggregate ratios.

    Parameters
    ----------
    algorithms:
        Registry names.
    instances:
        The instance batch (consumed once; pass a list to reuse).
    params:
        Arbitrary labels describing this cell (stored verbatim).
    algorithm_kwargs:
        Optional per-algorithm constructor kwargs, keyed by name.  A
        ``seed`` kwarg is a *base* seed: every (algorithm, instance)
        unit runs with its own seed spawned from it (identically on the
        serial and process-pool paths), so seeded policies draw from
        independent streams per instance.
    processes:
        ``0`` (default) runs in-process; any other value fans the
        (algorithm, instance) units out across a process pool via
        :func:`repro.simulation.parallel.parallel_sweep` (``None``-like
        behaviour is available there; here a positive integer is the
        worker count).  Results are identical either way.
    engine:
        ``"classic"`` (default), ``"fast"``, or ``"batch"`` — forwarded
        to the run / sweep layer; all engines are bit-identical.
        ``"batch"`` always routes through
        :func:`~repro.simulation.parallel.parallel_sweep` (even with
        ``processes=0``) so the whole policy fan-out of each instance
        shares one :class:`~repro.simulation.batch.BatchRunner`, and
        ``instances`` may then be compact
        :class:`~repro.simulation.batch.InstanceSpec` sources.
    checkpoint_dir / resume / retries / unit_timeout:
        Fault-tolerance knobs, forwarded to
        :func:`repro.simulation.parallel.parallel_sweep` (which routes
        to :func:`repro.orchestration.resumable_sweep` when any is
        set).  Setting any of them moves even a ``processes=0`` cell
        onto the checkpointed path so interrupted cells can resume.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    orchestrated = (
        checkpoint_dir is not None or resume or retries or unit_timeout is not None
    )
    if processes or orchestrated or engine == "batch":
        from ..simulation.parallel import parallel_sweep

        batch = list(instances)
        unit_results = parallel_sweep(
            algorithms,
            batch,
            processes=processes,
            algorithm_kwargs=algorithm_kwargs,
            engine=engine,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            retries=retries,
            unit_timeout=unit_timeout,
        )
        ratios = {
            name: [r.ratio for r in unit_results[name]] for name in algorithms
        }
        stats = {name: summarize(vals) for name, vals in ratios.items() if vals}
        return SweepCell(params=dict(params or {}), ratios=ratios, stats=stats)

    from ..simulation.parallel import algorithm_accepts_seed, derive_unit_seeds

    batch = list(instances)
    # Per-unit seeds for seeded policies, spawned exactly as the worker
    # path does it (build_payloads) so serial and pooled cells agree.
    unit_seeds = {
        name: derive_unit_seeds(
            int(algorithm_kwargs.get(name, {}).get("seed", 0)), len(batch)
        )
        for name in algorithms
        if algorithm_accepts_seed(name)
    }
    algos = {
        name: make_algorithm(name, **algorithm_kwargs.get(name, {}))
        for name in algorithms
        if name not in unit_seeds
    }
    ratios: Dict[str, List[float]] = {name: [] for name in algorithms}
    for i, instance in enumerate(batch):
        lb = height_lower_bound(instance)
        if lb <= 0:
            # degenerate (an instance can only reach lb == 0 if it has no
            # load at all, which Instance validation precludes); skip
            continue
        for name in algorithms:
            if name in unit_seeds:
                kwargs = dict(algorithm_kwargs.get(name, {}))
                kwargs["seed"] = unit_seeds[name][i]
                algo = make_algorithm(name, **kwargs)
            else:
                algo = algos[name]
            packing = run(algo, instance, engine=engine)
            ratios[name].append(packing.cost / lb)
    stats = {name: summarize(vals) for name, vals in ratios.items() if vals}
    return SweepCell(params=dict(params or {}), ratios=ratios, stats=stats)


def sweep_grid(
    algorithms: Sequence[str],
    cells: Mapping[tuple, Iterable[Instance]],
    param_names: Sequence[str] = (),
) -> List[SweepCell]:
    """Run a whole grid: ``cells`` maps parameter tuples to instance batches.

    ``param_names`` label the tuple components (e.g. ``("d", "mu")``).
    Returns one :class:`SweepCell` per grid cell, in mapping order.
    """
    results: List[SweepCell] = []
    for key, instances in cells.items():
        params = dict(zip(param_names, key)) if param_names else {"key": key}
        results.append(sweep_cell(algorithms, instances, params=params))
    return results
