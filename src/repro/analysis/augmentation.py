"""Resource-augmentation analysis.

A classic lens on online lower bounds (used for dynamic bin packing by
Chan-Wong-Yung, cited as [6]): give the *online* algorithm bins of
capacity ``1 + beta`` while charging the offline optimum at capacity 1,
and ask how much augmentation buys back the competitive gap.

:func:`augmented_run` runs a policy with inflated capacity on the same
items; :func:`augmentation_curve` sweeps ``beta`` and reports the cost
ratio against the capacity-1 Lemma 1(i) lower bound.  The adversarial
constructions are capacity-critical (loads of exactly ``1 - ε'``), so
even tiny augmentation collapses them — a nice sanity check that the
lower bounds live on a knife's edge, which
``benchmarks/bench_augmentation.py`` asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..algorithms.registry import make_algorithm
from ..core.instance import Instance
from ..optimum.lower_bounds import height_lower_bound
from ..simulation.runner import run

__all__ = ["AugmentationPoint", "augmented_run", "augmentation_curve"]


@dataclass(frozen=True)
class AugmentationPoint:
    """Measured cost at one augmentation level."""

    beta: float
    cost: float
    baseline_lower_bound: float

    @property
    def ratio(self) -> float:
        """Cost (at capacity ``1+beta``) over the capacity-1 OPT bound."""
        return self.cost / self.baseline_lower_bound


def augmented_instance(instance: Instance, beta: float) -> Instance:
    """The same items in bins of capacity ``(1 + beta) * capacity``."""
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    return Instance(
        list(instance.items),
        capacity=np.asarray(instance.capacity) * (1.0 + beta),
        name=f"{instance.name}+beta={beta:g}",
        _skip_sort_check=True,
    )


def augmented_run(algorithm: str, instance: Instance, beta: float):
    """Run ``algorithm`` with capacity augmented by ``beta``.

    Returns the packing (costs are measured on the same items; only the
    capacity differs).
    """
    return run(make_algorithm(algorithm), augmented_instance(instance, beta))


def augmentation_curve(
    algorithm: str,
    instance: Instance,
    betas: Sequence[float] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0),
) -> List[AugmentationPoint]:
    """Cost of ``algorithm`` at each augmentation level vs capacity-1 OPT.

    The baseline lower bound is computed once at the original capacity —
    the offline adversary is *not* augmented, per the resource-
    augmentation convention.
    """
    baseline_lb = height_lower_bound(instance)
    points = []
    for beta in betas:
        packing = augmented_run(algorithm, instance, beta)
        points.append(
            AugmentationPoint(
                beta=float(beta),
                cost=packing.cost,
                baseline_lower_bound=baseline_lb,
            )
        )
    return points
