"""Empirical performance-ratio estimation.

The Section 7 experiments measure each algorithm's cost divided by the
Lemma 1(i) lower bound on OPT (exact OPT being NP-hard at n = 1000).
This module provides that ratio plus the exact-OPT variant for small
instances, and the ratio-vs-certified-OPT used by the Table 1
verification on adversarial families.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import SolverLimitError
from ..core.instance import Instance
from ..core.packing import Packing
from ..optimum.lower_bounds import height_lower_bound, opt_lower_bound
from ..optimum.opt_cost import optimum_cost, optimum_cost_bounds

__all__ = [
    "ratio_to_lower_bound",
    "ratio_to_exact_opt",
    "ratio_bracket",
]


def ratio_to_lower_bound(packing: Packing) -> float:
    """``cost / height_lower_bound`` — the paper's Section 7 metric.

    An *upper* estimate of the true performance ratio (the denominator
    lower-bounds OPT).  Always finite: the height bound is positive for
    any non-empty instance.
    """
    lb = height_lower_bound(packing.instance)
    if lb <= 0:
        raise ZeroDivisionError("height lower bound is zero for this instance")
    return packing.cost / lb


def ratio_to_exact_opt(packing: Packing, max_nodes_per_segment: int = 200_000) -> float:
    """``cost / OPT`` with exact OPT (small instances only).

    Raises
    ------
    SolverLimitError
        If the exact per-segment solves exceed their budget.
    """
    opt = optimum_cost(packing.instance, max_nodes_per_segment=max_nodes_per_segment)
    return packing.cost / opt


def ratio_bracket(packing: Packing) -> tuple:
    """Certified ``(low, high)`` bracket on the true ratio ``cost / OPT``.

    Uses the polynomial-time OPT bracket: ``cost / opt_upper`` is a
    certified lower estimate of the true ratio, ``cost / opt_lower`` a
    certified upper estimate.
    """
    opt_lo, opt_hi = optimum_cost_bounds(packing.instance)
    return packing.cost / opt_hi, packing.cost / opt_lo
