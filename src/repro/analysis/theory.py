"""Theoretical competitive-ratio bounds (Table 1).

Closed-form bound formulas for every algorithm/row of Table 1, with the
provenance (theorem numbers and prior work) attached, so experiments can
print the paper's summary table and tests can check measured ratios
against the right expressions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.errors import ConfigurationError

__all__ = [
    "BoundEntry",
    "TABLE1",
    "lower_bound",
    "upper_bound",
    "any_fit_lower_bound",
    "move_to_front_upper_bound",
    "move_to_front_lower_bound",
    "first_fit_upper_bound",
    "next_fit_upper_bound",
    "next_fit_lower_bound",
]

INF = math.inf


def any_fit_lower_bound(mu: float, d: int) -> float:
    """Theorem 5: every Any Fit algorithm has CR at least ``(μ+1)d``."""
    return (mu + 1.0) * d


def move_to_front_upper_bound(mu: float, d: int) -> float:
    """Theorem 2: CR of Move To Front is at most ``(2μ+1)d + 1``."""
    return (2.0 * mu + 1.0) * d + 1.0


def move_to_front_lower_bound(mu: float, d: int) -> float:
    """Theorem 8: CR of Move To Front is at least ``max{2μ, (μ+1)d}``."""
    return max(2.0 * mu, (mu + 1.0) * d)


def first_fit_upper_bound(mu: float, d: int) -> float:
    """Theorem 3: CR of First Fit is at most ``(μ+2)d + 1``."""
    return (mu + 2.0) * d + 1.0


def next_fit_upper_bound(mu: float, d: int) -> float:
    """Theorem 4: CR of Next Fit is at most ``2μd + 1``."""
    return 2.0 * mu * d + 1.0


def next_fit_lower_bound(mu: float, d: int) -> float:
    """Theorem 6: CR of Next Fit is at least ``2μd``."""
    return 2.0 * mu * d


@dataclass(frozen=True)
class BoundEntry:
    """One row of Table 1.

    ``lower``/``upper`` are callables ``(mu, d) -> float`` (``inf`` for
    unbounded/no bound); provenance strings cite the theorem or prior
    work.
    """

    algorithm: str
    lower: Callable[[float, int], float]
    upper: Callable[[float, int], float]
    lower_source: str
    upper_source: str


TABLE1: Dict[str, BoundEntry] = {
    "any_fit": BoundEntry(
        "any_fit",
        any_fit_lower_bound,
        lambda mu, d: INF,
        "Thm. 5 (this paper); matches mu+1 of [22, 28] at d=1",
        "no upper bound for the family as a whole",
    ),
    "move_to_front": BoundEntry(
        "move_to_front",
        move_to_front_lower_bound,
        move_to_front_upper_bound,
        "Thm. 8 (this paper)",
        "Thm. 2 (this paper); improves 6mu+7 of [18] at d=1",
    ),
    "first_fit": BoundEntry(
        "first_fit",
        any_fit_lower_bound,
        first_fit_upper_bound,
        "Thm. 5 (this paper); matches mu+1 of [22, 28] at d=1",
        "Thm. 3 (this paper); mu+3 known at d=1 [28]",
    ),
    "next_fit": BoundEntry(
        "next_fit",
        next_fit_lower_bound,
        next_fit_upper_bound,
        "Thm. 6 (this paper); matches 2mu of [32] at d=1",
        "Thm. 4 (this paper); 2mu+1 known at d=1 [18]",
    ),
    "best_fit": BoundEntry(
        "best_fit",
        lambda mu, d: INF,
        lambda mu, d: INF,
        "unbounded, Thm. 7 citing [22]",
        "unbounded, Thm. 7 citing [22]",
    ),
}


def _entry(algorithm: str) -> BoundEntry:
    try:
        return TABLE1[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no Table 1 entry for {algorithm!r}; rows: {', '.join(sorted(TABLE1))}"
        ) from None


def lower_bound(algorithm: str, mu: float, d: int) -> float:
    """Table 1 lower bound on the CR of ``algorithm`` at ``(μ, d)``."""
    _check(mu, d)
    return _entry(algorithm).lower(mu, d)


def upper_bound(algorithm: str, mu: float, d: int) -> float:
    """Table 1 upper bound on the CR of ``algorithm`` at ``(μ, d)``."""
    _check(mu, d)
    return _entry(algorithm).upper(mu, d)


def _check(mu: float, d: int) -> None:
    if mu < 1:
        raise ConfigurationError(f"mu is a max/min ratio and must be >= 1, got {mu}")
    if d < 1:
        raise ConfigurationError(f"d must be >= 1, got {d}")
