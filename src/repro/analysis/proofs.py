"""Numerical verification of the paper's proof decompositions.

The upper-bound proofs (Theorems 2 and 4) work by decomposing each bin's
usage period and bounding each piece.  Because the library's simulator
exposes exactly the objects the proofs reason about (leading intervals,
displacement events, release events), every intermediate inequality can
be *checked on real executions* — a much stronger form of reproduction
than re-deriving the final constants.

:func:`verify_theorem2` checks, on an instrumented Move To Front run:

* **Claim 1** — the leading intervals partition ``[0, span)``, so their
  total length equals ``span(R) ≤ OPT``;
* every non-leading interval has length at most ``μ``;
* the Eq. 4 split — for each displacement event with item ``r_{i,j}``
  and resident set ``R_{i,j}``, ``‖s(r_{i,j}) + s(R_{i,j})‖∞ > 1``;
* **Claim 2** — ``Σ ‖s(r_{i,j})‖∞ ℓ(Q_{i,j}) ≤ μ Σ_r ‖s(r)‖∞ ℓ(I(r))``
  (the right side is ``μ·d·(Lemma 1(ii))``, a lower bound on
  ``μ·d·OPT``);
* **Claim 3** — ``Σ ‖s(R_{i,j})‖∞ ℓ(Q_{i,j}) ≤ (μ+1) Σ_r ‖s(r)‖∞
  ℓ(I(r))``;
* the assembled bound — ``cost(MF) ≤ span + claim2 + claim3`` and hence
  ``cost(MF) ≤ ((2μ+1)d + 1)·OPT`` against the exact optimum when it is
  computable.

:func:`verify_theorem4` does the same for Next Fit's current-bin
decomposition: the current periods partition the span, each released
period is at most ``μ``, ``‖s(R'_i) + s(r_i)‖∞ > 1`` at every release,
and ``Σ ℓ(Q_i) ≤ 2μ Σ_r ‖s(r)‖∞``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.move_to_front import MoveToFront
from ..algorithms.next_fit import NextFit
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import linf
from ..optimum.lower_bounds import utilization_lower_bound
from ..simulation.engine import Engine
from ..simulation.instrumentation import LeaderTracker

__all__ = ["ProofCheck", "Theorem2Report", "Theorem4Report", "verify_theorem2", "verify_theorem4"]

_TOL = 1e-9


@dataclass(frozen=True)
class ProofCheck:
    """One verified inequality: ``lhs <= rhs`` (or strict violation info)."""

    name: str
    lhs: float
    rhs: float

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs + _TOL * max(1.0, abs(self.rhs))


@dataclass(frozen=True)
class Theorem2Report:
    """All checked inequalities of the Theorem 2 proof on one run."""

    instance_name: str
    cost: float
    span: float
    mu: float
    d: int
    checks: Tuple[ProofCheck, ...]
    displacement_count: int

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def failed(self) -> List[ProofCheck]:
        return [c for c in self.checks if not c.holds]


@dataclass(frozen=True)
class Theorem4Report:
    """All checked inequalities of the Theorem 4 proof on one run."""

    instance_name: str
    cost: float
    span: float
    mu: float
    d: int
    checks: Tuple[ProofCheck, ...]
    release_count: int

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def failed(self) -> List[ProofCheck]:
        return [c for c in self.checks if not c.holds]


def verify_theorem2(instance: Instance) -> Theorem2Report:
    """Run instrumented Move To Front and check the proof's inequalities."""
    tracker = LeaderTracker()
    packing = Engine(instance, MoveToFront(), observers=[tracker]).run()

    mu = instance.mu
    d = instance.d
    span = instance.span
    delta = instance.min_duration  # the paper normalises this to 1
    norm_factor = 1.0 / instance.capacity
    util = sum(
        linf(it.size * norm_factor) * it.duration for it in instance.items
    )  # = d * Lemma 1(ii)

    checks: List[ProofCheck] = []

    # Claim 1: leading intervals tile the span exactly
    total_leading = sum(
        iv.length for ivs in tracker.leading_intervals().values() for iv in ivs
    )
    checks.append(ProofCheck("claim1: sum of leading == span (<=)", total_leading, span))
    checks.append(ProofCheck("claim1: span <= sum of leading", span, total_leading))

    # per-displacement facts + Claim 2 / Claim 3 accumulators
    claim2_lhs = 0.0
    claim3_lhs = 0.0
    overflow_ok = 0.0  # max over displacements of (1 - ||s(r)+s(R)||inf); must be < 0
    q_max = 0.0
    for bin_index, t, item, residents, pos in tracker.displacements:
        q_len = tracker.q_length(bin_index, t, pos)
        q_max = max(q_max, q_len)
        r_norm = linf(item.size * norm_factor)
        resident_load = sum(
            (it.size * norm_factor for it in residents),
            np.zeros(d),
        )
        total_norm = linf(item.size * norm_factor + resident_load)
        overflow_ok = max(overflow_ok, 1.0 - total_norm)
        claim2_lhs += r_norm * q_len
        claim3_lhs += linf(resident_load) * q_len

    if tracker.displacements:
        checks.append(
            ProofCheck("eq4: every displacement overflows some dimension",
                       overflow_ok, 0.0)
        )
    # in the paper's normalised time units Q <= mu; in absolute units
    # that is Q <= mu * (min duration)
    checks.append(ProofCheck("Q intervals bounded by mu*min_duration", q_max, mu * delta))
    checks.append(
        ProofCheck("claim2: sum ||s(r_ij)|| l(Q_ij) <= mu * util", claim2_lhs, mu * util)
    )
    checks.append(
        ProofCheck(
            "claim3: sum ||s(R_ij)|| l(Q_ij) <= (mu+1) * util",
            claim3_lhs,
            (mu + 1.0) * util,
        )
    )
    # assembled: cost <= span + claim2 + claim3 (Eqs. 3 and 4)
    checks.append(
        ProofCheck(
            "assembly: cost <= span + claim2 + claim3",
            packing.cost,
            span + claim2_lhs + claim3_lhs,
        )
    )
    # final constant against the bound's closed form with util as OPT
    # stand-in: cost <= span + mu*util + (mu+1)*util <= ((2mu+1)d + 1)OPT
    checks.append(
        ProofCheck(
            "theorem2: cost <= span + (2mu+1) * util",
            packing.cost,
            span + (2 * mu + 1.0) * util,
        )
    )

    return Theorem2Report(
        instance_name=instance.name,
        cost=packing.cost,
        span=span,
        mu=mu,
        d=d,
        checks=tuple(checks),
        displacement_count=len(tracker.displacements),
    )


def verify_theorem4(instance: Instance) -> Theorem4Report:
    """Run instrumented Next Fit and check the proof's inequalities."""
    algo = NextFit()
    packing = Engine(instance, algo).run()

    mu = instance.mu
    d = instance.d
    span = instance.span
    delta = instance.min_duration  # the paper normalises this to 1
    norm_factor = 1.0 / instance.capacity
    sum_item_norms = sum(linf(it.size * norm_factor) for it in instance.items)

    usage = {rec.index: rec.usage_period for rec in packing.bins}
    checks: List[ProofCheck] = []

    # current periods partition the span: P_i = [open_i, t_i); released
    # bins have t_i recorded, the final current bin has P_i = full usage
    p_total = 0.0
    q_total = 0.0
    q_max = 0.0
    overflow_ok = 0.0
    release_by_bin: Dict[int, Tuple[float, Item, List[Item]]] = {
        b: (t, item, residents) for b, t, item, residents in algo.release_log
    }
    for index, period in usage.items():
        if index in release_by_bin:
            t_release, item, residents = release_by_bin[index]
            split = min(max(t_release, period.start), period.end)
            p_total += split - period.start
            q_len = period.end - split
            q_total += q_len
            q_max = max(q_max, q_len)
            resident_load = sum(
                (it.size * norm_factor for it in residents), np.zeros(d)
            )
            total_norm = linf(item.size * norm_factor + resident_load)
            overflow_ok = max(overflow_ok, 1.0 - total_norm)
        else:
            p_total += period.length

    # Note: the proof treats {P_i} as partitioning [0, span); in an
    # execution where the current bin closes while *released* bins are
    # still active, no bin is current for a while, so in general only
    # sum P_i <= span holds - which is the direction the bound needs.
    checks.append(ProofCheck("current periods within the span", p_total, span))
    checks.append(
        ProofCheck("released periods bounded by mu*min_duration", q_max, mu * delta)
    )
    if algo.release_log:
        checks.append(
            ProofCheck("every release overflows some dimension", overflow_ok, 0.0)
        )
    checks.append(
        ProofCheck(
            "theorem4: sum l(Q_i) <= 2 mu min_duration sum ||s(r)||",
            q_total,
            2.0 * mu * delta * sum_item_norms,
        )
    )
    checks.append(
        ProofCheck(
            "assembly: cost == P + Q", packing.cost, p_total + q_total
        )
    )
    checks.append(
        ProofCheck(
            "assembly: P + Q <= cost", p_total + q_total, packing.cost
        )
    )

    return Theorem4Report(
        instance_name=instance.name,
        cost=packing.cost,
        span=span,
        mu=mu,
        d=d,
        checks=tuple(checks),
        release_count=len(algo.release_log),
    )
