"""Aggregation of per-instance measurements into summary statistics.

Figure 4 plots the mean performance ratio with standard-deviation error
bars over ``m = 1000`` random instances; this module provides that
aggregation (plus confidence intervals and quantiles for richer
reporting) in one well-tested place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["SampleStats", "bootstrap_ci", "summarize"]

#: Two-sided z critical values for common confidence levels.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


@dataclass(frozen=True)
class SampleStats:
    """Summary statistics of one measurement sample.

    Attributes mirror what Figure 4 needs (mean, std) plus the extras
    (CI half-width, quantiles) used by the extension reports.
    """

    count: int
    mean: float
    std: float
    ci_halfwidth: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @property
    def ci_low(self) -> float:
        """Lower end of the confidence interval on the mean."""
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        """Upper end of the confidence interval on the mean."""
        return self.mean + self.ci_halfwidth

    def as_dict(self) -> dict:
        """Plain-dict form for tabular reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "ci_halfwidth": self.ci_halfwidth,
            "min": self.minimum,
            "q25": self.q25,
            "median": self.median,
            "q75": self.q75,
            "max": self.maximum,
        }


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval on the mean.

    Distribution-free alternative to the normal-approximation CI of
    :func:`summarize` — preferable for the skewed ratio samples produced
    by heavy-tailed workloads.  Returns ``(low, high)``.
    """
    if len(values) == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(means, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)


def summarize(values: Sequence[float], confidence: float = 0.95) -> SampleStats:
    """Compute :class:`SampleStats` for a non-empty sample.

    ``std`` is the population standard deviation (``ddof=0``), matching
    the error bars of Figure 4 ("error bars measure std. deviation");
    the CI uses the normal approximation ``z * std / sqrt(n)`` with the
    sample (``ddof=1``) deviation.
    """
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    if confidence not in _Z:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        )
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    std_pop = float(np.std(arr))
    std_sample = float(np.std(arr, ddof=1)) if n > 1 else 0.0
    q = np.percentile(arr, [0, 25, 50, 75, 100])
    return SampleStats(
        count=int(n),
        mean=float(np.mean(arr)),
        std=std_pop,
        ci_halfwidth=_Z[confidence] * std_sample / math.sqrt(n) if n > 1 else 0.0,
        minimum=float(q[0]),
        q25=float(q[1]),
        median=float(q[2]),
        q75=float(q[3]),
        maximum=float(q[4]),
    )
