"""Empirical competitive-ratio search: hunting for bad instances.

The theorems give constructions; this module searches for bad inputs
*automatically* — useful for conjecture probing (e.g. the paper's open
question whether MF's d ≥ 2 lower bound can be pushed to ``2μd``) and as
a regression net (no algorithm change should suddenly produce ratios
above its proven bound).

The search is simple and effective: sample random instances from a
compact parameter space, score each by ``cost / OPT-upper-bracket``
(a *certified* lower bound on the true ratio of that instance), keep the
worst, and hill-climb with local mutations (duplicate a bad item, stretch
a duration, shrink the bin-relative sizes).  Everything is seeded and
budget-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..algorithms.registry import make_algorithm
from ..core.instance import Instance
from ..core.items import Item
from ..optimum.opt_cost import optimum_cost_bounds
from ..simulation.runner import run

__all__ = ["SearchResult", "certified_ratio", "random_search", "mutate_instance"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a bad-instance search.

    ``ratio`` is certified: cost divided by a feasible offline solution's
    cost (the FFD-per-segment bracket), so the true competitive ratio of
    the algorithm is at least ``ratio``.
    """

    algorithm: str
    instance: Instance
    cost: float
    opt_upper: float
    ratio: float
    evaluations: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SearchResult({self.algorithm}: ratio >= {self.ratio:.3f} "
            f"on n={self.instance.n}, after {self.evaluations} evals)"
        )


def certified_ratio(algorithm: str, instance: Instance) -> Tuple[float, float, float]:
    """``(cost, opt_upper, cost/opt_upper)`` for one instance.

    The denominator is the per-segment FFD upper bound on the repacking
    optimum — a feasible offline cost, hence the quotient certifies a
    competitive-ratio lower bound.
    """
    cost = run(make_algorithm(algorithm), instance).cost
    _, opt_hi = optimum_cost_bounds(instance)
    return cost, opt_hi, cost / opt_hi


def _random_instance(rng: np.random.Generator, d: int, n: int, mu: float) -> Instance:
    """A compact random instance biased toward known-bad structure:
    mixtures of long/tiny and short/large items arriving in bursts."""
    items: List[Item] = []
    t = 0.0
    for uid in range(n):
        if rng.random() < 0.35:
            t += float(rng.integers(0, 2))
        long_item = rng.random() < 0.5
        duration = float(mu if long_item else 1.0)
        if long_item:
            size = rng.uniform(0.02, 0.25, size=d)
        else:
            size = rng.uniform(0.3, 0.7, size=d)
        items.append(Item(t, t + duration, size, uid))
    items.sort(key=lambda it: it.arrival)
    items = [it.with_uid(i) for i, it in enumerate(items)]
    return Instance(items)


def mutate_instance(instance: Instance, rng: np.random.Generator) -> Instance:
    """One local mutation: duplicate, drop, stretch, or resize an item.

    Always returns a valid instance; mutations that would invalidate it
    (e.g. dropping the last item) fall back to duplication.
    """
    items = list(instance.items)
    op = rng.integers(4)
    idx = int(rng.integers(len(items)))
    victim = items[idx]
    if op == 0:  # duplicate an item (shifting arrival slightly later)
        clone = Item(
            victim.arrival,
            victim.departure,
            np.array(victim.size),
            uid=len(items),
        )
        items.append(clone)
    elif op == 1 and len(items) > 1:  # drop an item
        items.pop(idx)
    elif op == 2:  # stretch or shrink the duration (keeping >= 1)
        factor = float(rng.uniform(0.5, 2.0))
        new_dur = max(1.0, victim.duration * factor)
        items[idx] = victim.with_departure(victim.arrival + new_dur)
    else:  # rescale the size vector within (0, 1]
        factor = float(rng.uniform(0.5, 1.5))
        new_size = np.clip(victim.size * factor, 1e-3, 1.0)
        items[idx] = Item(victim.arrival, victim.departure, new_size, victim.uid)
    items.sort(key=lambda it: it.arrival)
    items = [it.with_uid(i) for i, it in enumerate(items)]
    return Instance(items, capacity=np.array(instance.capacity))


def random_search(
    algorithm: str,
    d: int = 2,
    n: int = 16,
    mu: float = 5.0,
    budget: int = 200,
    hill_climb: int = 100,
    seed: int = 0,
) -> SearchResult:
    """Find a high-ratio instance for ``algorithm``.

    Phase 1 samples ``budget`` random instances; phase 2 hill-climbs from
    the worst with ``hill_climb`` mutations (accepting non-decreasing
    ratios).  Returns the worst instance found with its certified ratio.
    """
    rng = np.random.default_rng(seed)
    evals = 0
    best: Optional[Tuple[float, Instance, float, float]] = None

    for _ in range(budget):
        inst = _random_instance(rng, d=d, n=n, mu=mu)
        cost, opt_hi, ratio = certified_ratio(algorithm, inst)
        evals += 1
        if best is None or ratio > best[0]:
            best = (ratio, inst, cost, opt_hi)

    assert best is not None
    for _ in range(hill_climb):
        candidate = mutate_instance(best[1], rng)
        cost, opt_hi, ratio = certified_ratio(algorithm, candidate)
        evals += 1
        if ratio >= best[0]:
            best = (ratio, candidate, cost, opt_hi)

    ratio, inst, cost, opt_hi = best
    return SearchResult(
        algorithm=algorithm,
        instance=inst,
        cost=cost,
        opt_upper=opt_hi,
        ratio=ratio,
        evaluations=evals,
    )
