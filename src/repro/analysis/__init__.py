"""Analysis: empirical ratios, aggregation, sweeps, theory, reporting."""

from .aggregate import SampleStats, bootstrap_ci, summarize
from .augmentation import AugmentationPoint, augmentation_curve, augmented_run
from .competitive import SearchResult, certified_ratio, mutate_instance, random_search
from .io import SCHEMA_VERSION, load_cells, save_cells
from .proofs import ProofCheck, Theorem2Report, Theorem4Report, verify_theorem2, verify_theorem4
from .ratios import ratio_bracket, ratio_to_exact_opt, ratio_to_lower_bound
from .report import format_interval_diagram, format_series_chart, format_table
from .sweep import SweepCell, sweep_cell, sweep_grid
from .theory import (
    TABLE1,
    BoundEntry,
    any_fit_lower_bound,
    first_fit_upper_bound,
    lower_bound,
    move_to_front_lower_bound,
    move_to_front_upper_bound,
    next_fit_lower_bound,
    next_fit_upper_bound,
    upper_bound,
)

__all__ = [
    "BoundEntry",
    "ProofCheck",
    "SearchResult",
    "Theorem2Report",
    "Theorem4Report",
    "AugmentationPoint",
    "bootstrap_ci",
    "augmentation_curve",
    "augmented_run",
    "certified_ratio",
    "mutate_instance",
    "random_search",
    "verify_theorem2",
    "verify_theorem4",
    "SCHEMA_VERSION",
    "SampleStats",
    "SweepCell",
    "TABLE1",
    "any_fit_lower_bound",
    "first_fit_upper_bound",
    "format_interval_diagram",
    "load_cells",
    "save_cells",
    "format_series_chart",
    "format_table",
    "lower_bound",
    "move_to_front_lower_bound",
    "move_to_front_upper_bound",
    "next_fit_lower_bound",
    "next_fit_upper_bound",
    "ratio_bracket",
    "ratio_to_exact_opt",
    "ratio_to_lower_bound",
    "summarize",
    "sweep_cell",
    "sweep_grid",
    "upper_bound",
]
