"""First Fit: pack into the earliest-opened bin that fits.

``L`` is kept in increasing order of opening time, so the first fitting
candidate is the earliest-opened fitting bin.  The paper proves a
competitive ratio of at most ``(μ+2)d + 1`` (Theorem 3) and at least
``(μ+1)d`` (Theorem 5, as for every Any Fit algorithm).
"""

from __future__ import annotations

from typing import List

from ..core.bins import Bin
from ..core.items import Item
from .base import AnyFitAlgorithm

__all__ = ["FirstFit"]


class FirstFit(AnyFitAlgorithm):
    """First Fit (FF) Any Fit packing algorithm."""

    name = "first_fit"
    fast_kernel = "first_fit"

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        # L is in opening order (the base class appends new bins), so the
        # first candidate is the earliest-opened fitting bin.
        return candidates[0]
