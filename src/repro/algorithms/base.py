"""Online algorithm interfaces and the Any Fit base class.

``Algorithm 1`` of the paper is a template: maintain a list ``L`` of open
bins; on arrival, pack into a bin of ``L`` if any fits (never opening a
new bin when one fits — the *Any Fit property*); otherwise open a new
bin; maintain ``L`` on packs and departures.  Concrete family members
differ only in

* which fitting bin of ``L`` they select (Line 5), and
* how ``L`` is reordered/pruned (Lines 9 and 12).

:class:`AnyFitAlgorithm` implements the template once — including the
vectorised fit check over all candidate bins and the enforcement of the
Any Fit property — so subclasses only provide :meth:`choose` plus the
list-maintenance hooks.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.bins import Bin
from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import fits_batch

__all__ = ["OnlineAlgorithm", "AnyFitAlgorithm"]


class OnlineAlgorithm(abc.ABC):
    """Contract between the simulation engine and a dispatch policy.

    The engine owns bin lifecycle (creation, packing, departure
    processing, cost accounting); the algorithm only decides *where* each
    arriving item goes.  Implementations must be resettable: the engine
    calls :meth:`start` before every run.
    """

    #: Human-readable policy name used in reports/legends.
    name: str = "online"

    #: Fast-kernel hook: the name of the
    #: :mod:`repro.simulation.fastpath` policy kernel whose decisions
    #: this algorithm reproduces exactly, or ``None`` when only the
    #: classic engine may run it.  The stock Section 7 classes set it;
    #: configurations that change decisions (e.g. a non-default Best Fit
    #: load measure) clear it on the instance.  Setting the attribute is
    #: necessary but not sufficient — the class must also be registered
    #: via :func:`repro.simulation.fastpath.register_kernel_class`, so a
    #: subclass overriding ``choose`` cannot inherit eligibility by
    #: accident.
    fast_kernel: Optional[str] = None

    #: Unbounded-audit toggle.  Some policies accrue O(stream-length)
    #: proof bookkeeping that no *online* decision ever reads (Next
    #: Fit's ``release_log`` for the Theorem 4 check is the one case
    #: today).  The streaming engine and the placement service clear
    #: this flag before :meth:`start` so long-lived runs stay
    #: O(live-state); the classic engines leave it on, so the offline
    #: analyses (:mod:`repro.analysis.proofs`) see the full trail.
    #: Must never influence dispatch decisions — only what is recorded.
    audit_mode: bool = True

    #: Optional stats collector bound by an instrumented engine for the
    #: duration of one run (see ``repro.observability``).  Class-level
    #: ``None`` means instrumentation costs nothing unless enabled.
    _collector = None

    def bind_collector(self, collector) -> None:
        """Attach (or with ``None`` detach) a stats collector.

        Called by :class:`~repro.simulation.engine.Engine` around an
        instrumented run.  Subclasses with hot-path counters read
        ``self._collector`` and skip counting when it is ``None``.
        """
        self._collector = collector

    @abc.abstractmethod
    def start(self, instance: Instance) -> None:
        """Reset all per-run state for a fresh simulation of ``instance``."""

    @abc.abstractmethod
    def dispatch(
        self,
        item: Item,
        now: float,
        open_new_bin: Callable[[], Bin],
    ) -> Bin:
        """Return the bin ``item`` must be packed into.

        Implementations may call ``open_new_bin()`` at most once to
        create a fresh bin; the engine packs the item into the returned
        bin and performs capacity checks.
        """

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        """Hook invoked after ``item`` leaves ``bin_`` (Line 10-12).

        ``closed`` is ``True`` when the departure emptied the bin.  The
        default implementation does nothing.
        """

    # ------------------------------------------------------------------
    # snapshot/restore (service mode)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the policy's mutable mid-run state.

        Bins are referenced by index (the engine owns the bin objects);
        :meth:`import_state` re-binds them.  The base contract raises —
        a policy must opt in explicitly, because silently snapshotting a
        policy with unexported state (an RNG, a recency order) would
        restore into *different* future decisions.
        :class:`AnyFitAlgorithm` and the stock Section 7 policies all
        opt in; see :class:`~repro.streaming.service.PlacementService`.
        """
        raise AlgorithmError(
            f"{self.name} does not support state export; override "
            "export_state/import_state to make it snapshottable"
        )

    def import_state(self, state: Mapping[str, Any], bins_by_index: Mapping[int, Bin]) -> None:
        """Inverse of :meth:`export_state`.

        Call :meth:`start` first (it binds the capacity and resets the
        derived per-run state), then this to re-adopt the snapshot.
        ``bins_by_index`` maps bin index → live bin object for every bin
        the snapshot references.
        """
        raise AlgorithmError(
            f"{self.name} does not support state import; override "
            "export_state/import_state to make it snapshottable"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class AnyFitAlgorithm(OnlineAlgorithm):
    """Base class implementing Algorithm 1's outer loop.

    Subclass responsibilities:

    * :meth:`choose` — pick one bin from the non-empty list of fitting
      candidates (in ``L``-order);
    * optionally :meth:`on_packed` — reorder ``L`` after a pack (e.g.
      Move To Front moves the bin to the front);
    * optionally :meth:`on_new_bin` — position a freshly opened bin in
      ``L`` (default: append);
    * optionally :meth:`on_closed` — react to a bin closing (default:
      the base class already removes closed bins from ``L``).

    The base class guarantees the **Any Fit property**: a new bin is
    opened only when no bin in ``L`` fits the item.  It also verifies
    that :meth:`choose` returns one of the offered candidates, raising
    :class:`AlgorithmError` otherwise — so a buggy selection rule fails
    loudly instead of producing an infeasible or non-Any-Fit packing.
    """

    def __init__(self) -> None:
        self._list: List[Bin] = []
        self._capacity: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # OnlineAlgorithm API
    # ------------------------------------------------------------------
    def start(self, instance: Instance) -> None:
        self._list = []
        self._capacity = instance.capacity

    @property
    def open_list(self) -> Sequence[Bin]:
        """Read-only view of the candidate list ``L`` (for tests/analysis)."""
        return tuple(self._list)

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        if self._capacity is None:
            raise AlgorithmError(f"{self.name}: dispatch before start()")
        candidates = self._fitting_candidates(item)
        if candidates:
            chosen = self.choose(item, candidates, now)
            if chosen is None or all(chosen is not c for c in candidates):
                raise AlgorithmError(
                    f"{self.name}.choose returned a bin that was not offered "
                    f"(item {item.uid})"
                )
        else:
            chosen = open_new_bin()
            self.on_new_bin(chosen, item, now)
        self.on_packed(chosen, item, now)
        return chosen

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            self._list = [b for b in self._list if b is not bin_]
            self.on_closed(bin_, now)

    def export_state(self) -> Dict[str, Any]:
        """Snapshot ``L`` as a list of bin indexes (order is the state).

        Sufficient for every stock Any Fit policy whose only mutable
        state *is* the ordered open list (First/Last/Best/Worst Fit,
        Move To Front); policies with extra state extend the dict.
        """
        return {"open_list": [b.index for b in self._list]}

    def import_state(self, state: Mapping[str, Any], bins_by_index: Mapping[int, Bin]) -> None:
        if self._capacity is None:
            raise AlgorithmError(f"{self.name}: import_state before start()")
        self._list = [bins_by_index[i] for i in state["open_list"]]

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        """Select one bin from ``candidates`` (non-empty, in ``L``-order)."""

    def on_new_bin(self, bin_: Bin, item: Item, now: float) -> None:
        """Insert a freshly opened bin into ``L``.  Default: append."""
        self._list.append(bin_)

    def on_packed(self, bin_: Bin, item: Item, now: float) -> None:
        """Maintain ``L`` after packing (Line 9).  Default: no-op."""

    def on_closed(self, bin_: Bin, now: float) -> None:
        """React to a bin closing (already removed from ``L``)."""

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _fitting_candidates(self, item: Item) -> List[Bin]:
        """All bins of ``L`` that can fit ``item``, in ``L``-order.

        Uses a single vectorised comparison over the stacked load matrix
        (the hot path of every simulation) instead of per-bin Python
        checks.
        """
        if not self._list:
            return []
        col = self._collector
        if col is not None:
            col.candidate_scans += 1
            col.fit_checks += len(self._list)
        loads = np.stack([b.load for b in self._list])
        mask = fits_batch(loads, item.size, self._capacity)
        return [b for b, ok in zip(self._list, mask) if ok]
