"""Online packing algorithms for MinUsageTime DVBP.

The Any Fit family of the paper (Move To Front, First Fit, Next Fit,
Best Fit, Worst Fit, Last Fit, Random Fit) plus clairvoyant extensions,
all behind a common :class:`~repro.algorithms.base.OnlineAlgorithm`
interface and a name registry.
"""

from .base import AnyFitAlgorithm, OnlineAlgorithm
from .best_fit import BestFit, WorstFit, load_measure
from .clairvoyant import AlignmentBestFit, DurationClassifiedFirstFit
from .first_fit import FirstFit
from .harmonic import HarmonicFit
from .last_fit import LastFit
from .move_to_front import MoveToFront
from .next_fit import NextFit
from .predictions import (
    DurationPredictor,
    PredictedAlignmentFit,
    PredictedDurationClassifiedFirstFit,
)
from .random_fit import RandomFit
from .registry import (
    ALGORITHM_FACTORIES,
    PAPER_ALGORITHMS,
    available_algorithms,
    make_algorithm,
)

__all__ = [
    "ALGORITHM_FACTORIES",
    "AlignmentBestFit",
    "AnyFitAlgorithm",
    "BestFit",
    "DurationClassifiedFirstFit",
    "DurationPredictor",
    "PredictedAlignmentFit",
    "PredictedDurationClassifiedFirstFit",
    "FirstFit",
    "HarmonicFit",
    "LastFit",
    "MoveToFront",
    "NextFit",
    "OnlineAlgorithm",
    "PAPER_ALGORITHMS",
    "RandomFit",
    "WorstFit",
    "available_algorithms",
    "load_measure",
    "make_algorithm",
]
