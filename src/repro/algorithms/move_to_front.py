"""Move To Front: pack into the most recently used bin that fits.

The candidate list ``L`` is kept in most-recent-usage order.  An arriving
item is placed into the *earliest* bin of ``L`` that fits (i.e. the most
recently used fitting bin); the receiving bin — whether existing or
freshly opened — is immediately moved to the front of ``L``.

The paper proves a competitive ratio of at most ``(2μ+1)d + 1``
(Theorem 2) and at least ``max{2μ, (μ+1)d}`` (Theorem 8), and finds Move
To Front to be the best Any Fit algorithm on average (Section 7),
recommending it as the algorithm of choice.
"""

from __future__ import annotations

from typing import List

from ..core.bins import Bin
from ..core.items import Item
from .base import AnyFitAlgorithm

__all__ = ["MoveToFront"]


class MoveToFront(AnyFitAlgorithm):
    """Move To Front (MF) Any Fit packing algorithm."""

    name = "move_to_front"
    fast_kernel = "move_to_front"

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        # L is maintained in recency order, and candidates preserve
        # L-order, so the first candidate is the most recently used
        # fitting bin.
        return candidates[0]

    def on_new_bin(self, bin_: Bin, item: Item, now: float) -> None:
        self._list.insert(0, bin_)

    def on_packed(self, bin_: Bin, item: Item, now: float) -> None:
        # Move the receiving bin to the front: it is now the leader.
        if self._list and self._list[0] is bin_:
            return
        self._list = [bin_] + [b for b in self._list if b is not bin_]

    def leader(self) -> Bin:
        """The current front-of-list bin (used by the Figure 1 analysis).

        Raises ``IndexError`` when no bin is open.
        """
        return self._list[0]
