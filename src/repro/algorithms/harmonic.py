"""Harmonic-style size-classified packing (classical-bin-packing import).

The Harmonic family is the classic alternative to Any Fit in online bin
packing: items are bucketed by *size* class (an item with max demand in
``(1/(c+1), 1/c]`` goes to class ``c``, capped at ``num_classes``), and
each class packs into its own bins — class-``c`` bins hold up to ``c``
items in the classifying dimension.

In the MinUsageTime setting size classification is a *packing*-oriented
policy with no alignment awareness, so the paper's intuition (Section 7,
"Packing and Alignment") predicts it should behave like a tidier Worst
Fit: decent bin counts, poor usage time under duration spread.  The
library includes it as a non-Any-Fit baseline for exactly that
comparison (bench ``bench_ablations.py``; it deliberately violates the
Any Fit property across classes, like
:class:`~repro.algorithms.clairvoyant.DurationClassifiedFirstFit`).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import linf
from .base import OnlineAlgorithm

__all__ = ["HarmonicFit"]


class HarmonicFit(OnlineAlgorithm):
    """Harmonic(size)-classified First Fit.

    Parameters
    ----------
    num_classes:
        Number of size classes ``K``.  An item whose normalised max
        demand lies in ``(1/(c+1), 1/c]`` belongs to class ``c`` for
        ``c < K``; everything smaller falls into the residual class
        ``K`` (packed First Fit among residual bins).
    """

    name = "harmonic_fit"

    def __init__(self, num_classes: int = 5) -> None:
        if num_classes < 1:
            raise ConfigurationError(f"num_classes must be >= 1, got {num_classes}")
        self.num_classes = int(num_classes)
        self._classes: Dict[int, List[Bin]] = {}
        self._class_of_bin: Dict[int, int] = {}
        self._capacity = None

    def start(self, instance: Instance) -> None:
        self._classes = {}
        self._class_of_bin = {}
        self._capacity = instance.capacity

    def _class_index(self, item: Item) -> int:
        # normalised max demand in (0, 1]
        rel = linf(item.size / self._capacity)
        if rel <= 0:
            return self.num_classes
        c = int(1.0 / rel)  # rel in (1/(c+1), 1/c]  ->  int(1/rel) == c
        return min(max(c, 1), self.num_classes)

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        cls = self._class_index(item)
        bucket = self._classes.setdefault(cls, [])
        for b in bucket:
            if b.can_fit(item):
                return b
        fresh = open_new_bin()
        bucket.append(fresh)
        self._class_of_bin[fresh.index] = cls
        return fresh

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            cls = self._class_of_bin.pop(bin_.index, None)
            if cls is not None and cls in self._classes:
                self._classes[cls] = [b for b in self._classes[cls] if b is not bin_]

    def export_state(self):
        """Class buckets as index lists (First Fit order within a class)."""
        return {
            "classes": {
                str(cls): [b.index for b in bucket]
                for cls, bucket in self._classes.items()
            },
        }

    def import_state(self, state, bins_by_index) -> None:
        if self._capacity is None:
            raise ConfigurationError(f"{self.name}: import_state before start()")
        self._classes = {
            int(cls): [bins_by_index[i] for i in idxs]
            for cls, idxs in state["classes"].items()
        }
        self._class_of_bin = {
            b.index: cls for cls, bucket in self._classes.items() for b in bucket
        }
