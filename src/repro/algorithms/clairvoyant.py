"""Clairvoyant extensions: policies that may read an item's departure time.

The paper studies the *non-clairvoyant* setting but names the clairvoyant
problem (departure known on arrival) as future work (Section 8); the 1-D
clairvoyant problem admits an ``O(sqrt(log μ))``-competitive algorithm
[Azar-Vainstein].  This module implements two practical clairvoyant
policies so the library can quantify the value of duration information:

* :class:`DurationClassifiedFirstFit` — the "classify by duration" idea
  behind the hybrid algorithms of Ren-Tang: items are bucketed into
  geometric duration classes and each class runs its own First Fit, so
  short jobs never pin down bins holding long jobs (good *alignment* in
  the Section 7 vocabulary).
* :class:`AlignmentBestFit` — among fitting bins, prefer the one whose
  latest resident departure is closest to the arriving item's departure
  (pure alignment), breaking ties toward higher load (packing).

Both are Any Fit *relaxations*: DurationClassifiedFirstFit deliberately
violates the Any Fit property across classes (it may open a new bin while
a bin of another class fits), which is exactly what gives it better
alignment.  AlignmentBestFit is a genuine Any Fit algorithm.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import fits
from .base import AnyFitAlgorithm, OnlineAlgorithm

__all__ = ["DurationClassifiedFirstFit", "AlignmentBestFit"]


class DurationClassifiedFirstFit(OnlineAlgorithm):
    """First Fit within geometric duration classes (clairvoyant).

    An item of duration ``ell`` belongs to class
    ``floor(log_base(ell / min_duration))`` (clamped at 0).  Each class
    keeps its own First Fit list; an item is only ever packed with items
    of its own class.  ``base`` controls the class width (default 2).

    This trades extra open bins (worse packing) for aligned departures
    within each bin (better alignment); with long-tailed durations the
    alignment gain dominates, which is the effect the clairvoyant study
    example (`examples/clairvoyant_study.py`) measures.
    """

    name = "duration_classified_first_fit"

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ConfigurationError(f"class base must exceed 1, got {base}")
        self.base = float(base)
        self._classes: Dict[int, List[Bin]] = {}
        self._class_of_bin: Dict[int, int] = {}
        self._min_duration: float = 1.0

    def start(self, instance: Instance) -> None:
        self._classes = {}
        self._class_of_bin = {}
        # Clairvoyant: knowing the global minimum duration up front is a
        # mild additional assumption; using 1.0 when durations are
        # normalised.  We take the instance's true minimum, which only
        # shifts class boundaries, not the asymptotics.
        self._min_duration = instance.min_duration

    def _class_index(self, item: Item) -> int:
        ratio = max(item.duration / self._min_duration, 1.0)
        return int(math.floor(math.log(ratio, self.base) + 1e-12))

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        cls = self._class_index(item)
        bucket = self._classes.setdefault(cls, [])
        for b in bucket:
            if b.can_fit(item):
                return b
        fresh = open_new_bin()
        bucket.append(fresh)
        self._class_of_bin[fresh.index] = cls
        return fresh

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            cls = self._class_of_bin.pop(bin_.index, None)
            if cls is not None and cls in self._classes:
                self._classes[cls] = [b for b in self._classes[cls] if b is not bin_]


class AlignmentBestFit(AnyFitAlgorithm):
    """Clairvoyant Best Fit by departure alignment.

    Among fitting bins, choose the one minimising
    ``|latest_resident_departure - item.departure|``; ties break toward
    the higher-loaded bin, then the lower index.  Empty knowledge never
    occurs: candidates always hold at least one active item.
    """

    name = "alignment_best_fit"

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        def key(b: Bin) -> tuple:
            latest = max(it.departure for it in b.active_items())
            return (abs(latest - item.departure), -float(b.load.max()), b.index)

        return min(candidates, key=key)
