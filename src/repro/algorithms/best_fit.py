"""Best Fit: pack into the most-loaded fitting bin.

For ``d = 1`` the load of a bin is its occupied size.  For ``d >= 2``
Section 2.2 notes there is no unique load notion and lists three options,
all supported here via the ``measure`` parameter:

* ``"linf"`` — max load ``w(R) = ||s(R)||_inf`` (the paper's Section 7
  experiments use this one);
* ``"l1"``  — sum of loads ``w(R) = ||s(R)||_1``;
* ``"lp"``  — the ``L_p`` norm for a caller-chosen ``p >= 1``
  (``p = 1`` coincides bitwise with ``"l1"``, ``p = inf`` with
  ``"linf"``; ``p < 1`` is rejected — not a norm).

Best Fit's competitive ratio is **unbounded** even for ``d = 1``
(Theorem 7, citing Li-Tang-Cai), yet it performs well on average
(Section 7) — the paper's "theory vs practice" discussion.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.items import Item
from ..core.vectors import l1, linf, lp
from .base import AnyFitAlgorithm

__all__ = ["BestFit", "WorstFit", "load_measure"]


def load_measure(measure: str, p: float = 2.0) -> Callable[[np.ndarray], float]:
    """Resolve a load-measure name to a function on load vectors.

    Parameters
    ----------
    measure:
        ``"linf"``, ``"l1"``, or ``"lp"``.
    p:
        Exponent for ``"lp"`` (ignored otherwise); must be >= 1.
    """
    if measure == "linf":
        return linf
    if measure == "l1":
        return l1
    if measure == "lp":
        if p < 1:
            raise ConfigurationError(f"lp measure requires p >= 1, got {p}")
        return lambda v: lp(v, p)
    raise ConfigurationError(f"unknown load measure {measure!r}; expected linf/l1/lp")


class BestFit(AnyFitAlgorithm):
    """Best Fit (BF): choose the fitting bin with the **highest** load.

    Ties are broken toward the earliest-opened bin, making the algorithm
    deterministic (and matching the ``d = 1`` behaviour of prior work,
    where ties are broken by bin index).
    """

    name = "best_fit"
    fast_kernel = "best_fit"

    def __init__(self, measure: str = "linf", p: float = 2.0) -> None:
        super().__init__()
        self._measure_name = measure
        self._w = load_measure(measure, p)
        #: Public load-measure configuration, read by
        #: :func:`repro.simulation.fastpath.fast_policy_for` to resolve
        #: the matching (measure, p) fast kernel.
        self.measure = measure
        self.p = float(p) if measure == "lp" else None
        if measure != "linf":
            self.name = f"best_fit_{measure}" + (f"{p:g}" if measure == "lp" else "")

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        best = candidates[0]
        best_w = self._w(best.load)
        for b in candidates[1:]:
            w = self._w(b.load)
            if w > best_w or (w == best_w and b.index < best.index):
                best, best_w = b, w
        return best


class WorstFit(AnyFitAlgorithm):
    """Worst Fit (WF): choose the fitting bin with the **lowest** load.

    Included in the Section 7 experimental lineup; it packs loosely and
    is observed to have the worst average-case performance.
    """

    name = "worst_fit"
    fast_kernel = "worst_fit"

    def __init__(self, measure: str = "linf", p: float = 2.0) -> None:
        super().__init__()
        self._w = load_measure(measure, p)
        self.measure = measure  # see BestFit: read by fast_policy_for
        self.p = float(p) if measure == "lp" else None
        if measure != "linf":
            self.name = f"worst_fit_{measure}" + (f"{p:g}" if measure == "lp" else "")

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        worst = candidates[0]
        worst_w = self._w(worst.load)
        for b in candidates[1:]:
            w = self._w(b.load)
            if w < worst_w or (w == worst_w and b.index < worst.index):
                worst, worst_w = b, w
        return worst
