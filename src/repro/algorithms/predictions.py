"""Learning-augmented packing: policies driven by *predicted* durations.

Section 8 of the paper names "additional information about the input,
perhaps obtained using machine learning algorithms" as a future
direction, citing the clairvoyant problem as the idealised limit.  This
module fills the spectrum between non-clairvoyant and clairvoyant:

* :class:`DurationPredictor` — an oracle producing noisy duration
  predictions (log-normal multiplicative noise with controllable
  ``sigma``; ``sigma = 0`` is exact clairvoyance, ``sigma → ∞`` is
  uninformative);
* :class:`PredictedAlignmentFit` — the
  :class:`~repro.algorithms.clairvoyant.AlignmentBestFit` policy run on
  predicted departures instead of true ones;
* :class:`PredictedDurationClassifiedFirstFit` — duration classes from
  predictions.

The robustness question — how fast does the clairvoyant advantage decay
with prediction error? — is measured by ``benchmarks/bench_predictions
.py`` and `examples/clairvoyant_study.py`'s companion sweep.  Both
policies remain *feasible* regardless of prediction quality (predictions
only influence bin choice, never capacity checks), so bad predictions
degrade cost, not correctness — the usual consistency/robustness framing
of learning-augmented algorithms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import AnyFitAlgorithm, OnlineAlgorithm

__all__ = [
    "DurationPredictor",
    "PredictedAlignmentFit",
    "PredictedDurationClassifiedFirstFit",
]


class DurationPredictor:
    """Noisy duration oracle.

    Predicts ``duration * exp(sigma * Z)`` with ``Z ~ N(0, 1)`` drawn
    once per item (per run), clipped to ``[min_factor, max_factor]``
    times the truth.  Deterministic per ``(seed, item uid)``, so repeated
    queries agree and repeated runs reproduce.

    Parameters
    ----------
    sigma:
        Log-scale noise level; 0 = exact clairvoyance.
    seed:
        Base seed for the per-item noise stream.
    min_factor / max_factor:
        Clip bounds on the multiplicative error.
    """

    def __init__(
        self,
        sigma: float = 0.5,
        seed: int = 0,
        min_factor: float = 0.05,
        max_factor: float = 20.0,
    ) -> None:
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if not 0 < min_factor <= 1.0 <= max_factor:
            raise ConfigurationError(
                f"need 0 < min_factor <= 1 <= max_factor, got "
                f"[{min_factor}, {max_factor}]"
            )
        self.sigma = float(sigma)
        self.seed = int(seed)
        self.min_factor = float(min_factor)
        self.max_factor = float(max_factor)
        self._cache: Dict[int, float] = {}

    def reset(self) -> None:
        """Clear the per-item cache (called by policies at run start)."""
        self._cache = {}

    def predicted_duration(self, item: Item) -> float:
        """The (cached) noisy duration prediction for ``item``."""
        if item.uid not in self._cache:
            if self.sigma == 0.0:
                factor = 1.0
            else:
                rng = np.random.default_rng((self.seed, item.uid))
                factor = float(
                    np.clip(
                        math.exp(self.sigma * rng.standard_normal()),
                        self.min_factor,
                        self.max_factor,
                    )
                )
            self._cache[item.uid] = item.duration * factor
        return self._cache[item.uid]

    def predicted_departure(self, item: Item) -> float:
        """Predicted departure time ``arrival + predicted duration``."""
        return item.arrival + self.predicted_duration(item)


class PredictedAlignmentFit(AnyFitAlgorithm):
    """Alignment Best Fit on predicted departures.

    Among fitting bins, choose the one whose latest *predicted* resident
    departure is closest to the arriving item's *predicted* departure;
    ties toward higher load, then lower index.  With ``sigma = 0`` this
    is exactly :class:`~repro.algorithms.clairvoyant.AlignmentBestFit`.
    """

    name = "predicted_alignment_fit"

    def __init__(self, predictor: Optional[DurationPredictor] = None) -> None:
        super().__init__()
        self.predictor = predictor or DurationPredictor(sigma=0.5)

    def start(self, instance: Instance) -> None:
        super().start(instance)
        self.predictor.reset()

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        target = self.predictor.predicted_departure(item)

        def key(b: Bin) -> tuple:
            latest = max(
                self.predictor.predicted_departure(it) for it in b.active_items()
            )
            return (abs(latest - target), -float(b.load.max()), b.index)

        return min(candidates, key=key)


class PredictedDurationClassifiedFirstFit(OnlineAlgorithm):
    """Duration-classified First Fit on predicted durations.

    The non-Any-Fit class structure of
    :class:`~repro.algorithms.clairvoyant.DurationClassifiedFirstFit`,
    with class membership decided by the predictor.  Misclassified items
    (bad predictions) land in the wrong class and hurt alignment but
    never feasibility.
    """

    name = "predicted_duration_classified_ff"

    def __init__(
        self,
        predictor: Optional[DurationPredictor] = None,
        base: float = 2.0,
    ) -> None:
        if base <= 1.0:
            raise ConfigurationError(f"class base must exceed 1, got {base}")
        self.predictor = predictor or DurationPredictor(sigma=0.5)
        self.base = float(base)
        self._classes: Dict[int, List[Bin]] = {}
        self._class_of_bin: Dict[int, int] = {}
        self._min_duration: float = 1.0

    def start(self, instance: Instance) -> None:
        self.predictor.reset()
        self._classes = {}
        self._class_of_bin = {}
        self._min_duration = instance.min_duration

    def _class_index(self, item: Item) -> int:
        ratio = max(self.predictor.predicted_duration(item) / self._min_duration, 1.0)
        return int(math.floor(math.log(ratio, self.base) + 1e-12))

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        cls = self._class_index(item)
        bucket = self._classes.setdefault(cls, [])
        for b in bucket:
            if b.can_fit(item):
                return b
        fresh = open_new_bin()
        bucket.append(fresh)
        self._class_of_bin[fresh.index] = cls
        return fresh

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            cls = self._class_of_bin.pop(bin_.index, None)
            if cls is not None and cls in self._classes:
                self._classes[cls] = [b for b in self._classes[cls] if b is not bin_]
