"""Algorithm registry: name → factory, for CLIs, sweeps, and experiments.

The Section 7 lineup is exposed as :data:`PAPER_ALGORITHMS` in the order
the paper lists them.  ``make_algorithm`` builds a fresh, unshared
instance per call (algorithms are stateful across a run, so experiments
must never share one object between concurrent simulations).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.errors import ConfigurationError
from .base import OnlineAlgorithm
from .best_fit import BestFit, WorstFit
from .clairvoyant import AlignmentBestFit, DurationClassifiedFirstFit
from .first_fit import FirstFit
from .harmonic import HarmonicFit
from .last_fit import LastFit
from .move_to_front import MoveToFront
from .next_fit import NextFit
from .predictions import DurationPredictor, PredictedAlignmentFit, PredictedDurationClassifiedFirstFit
from .random_fit import RandomFit


def _quantum_aware_mf(**kwargs):
    # imported lazily to avoid an algorithms <-> simulation import cycle
    from ..simulation.billing import QuantumAwareMoveToFront

    return QuantumAwareMoveToFront(**kwargs)

__all__ = [
    "ALGORITHM_FACTORIES",
    "PAPER_ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
]

ALGORITHM_FACTORIES: Dict[str, Callable[..., OnlineAlgorithm]] = {
    "move_to_front": MoveToFront,
    "first_fit": FirstFit,
    "next_fit": NextFit,
    "best_fit": BestFit,
    "best_fit_l1": lambda: BestFit(measure="l1"),
    "best_fit_l2": lambda: BestFit(measure="lp", p=2.0),
    "worst_fit": WorstFit,
    "last_fit": LastFit,
    "random_fit": RandomFit,
    "alignment_best_fit": AlignmentBestFit,
    "duration_classified_first_fit": DurationClassifiedFirstFit,
    "harmonic_fit": HarmonicFit,
    "predicted_alignment_fit": PredictedAlignmentFit,
    "predicted_duration_classified_ff": PredictedDurationClassifiedFirstFit,
    "quantum_aware_move_to_front": _quantum_aware_mf,
}

#: The seven algorithms of the Section 7 experimental study, in the
#: paper's order: MF, FF, NF, then the four additional Any Fit policies.
PAPER_ALGORITHMS: List[str] = [
    "move_to_front",
    "first_fit",
    "next_fit",
    "best_fit",
    "worst_fit",
    "last_fit",
    "random_fit",
]


def available_algorithms() -> List[str]:
    """All registered algorithm names, sorted."""
    return sorted(ALGORITHM_FACTORIES)


def make_algorithm(name: str, **kwargs) -> OnlineAlgorithm:
    """Instantiate a fresh algorithm by registry name.

    Keyword arguments are forwarded to the factory (e.g.
    ``make_algorithm("random_fit", seed=7)``).

    Raises
    ------
    ConfigurationError
        For unknown names, listing the available ones.
    """
    try:
        factory = ALGORITHM_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        ) from None
    return factory(**kwargs) if kwargs else factory()
