"""Next Fit: keep exactly one *current* bin; release it when an item
doesn't fit.

``|L| = 1`` at all times.  When an arriving item does not fit the current
bin, the current bin is **released** — it stays active (its items are
still running and it keeps accruing cost) but Next Fit will never pack
into it again — and a new bin is opened and made current.

The paper proves a competitive ratio of at most ``2μd + 1`` (Theorem 4)
and at least ``2μd`` (Theorem 6), so Next Fit is almost tight, but its
average-case performance degrades for large ``μ`` (Section 7).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bins import Bin
from ..core.instance import Instance
from ..core.items import Item
from .base import AnyFitAlgorithm

__all__ = ["NextFit"]


class NextFit(AnyFitAlgorithm):
    """Next Fit (NF) Any Fit packing algorithm."""

    name = "next_fit"
    fast_kernel = "next_fit"

    def __init__(self) -> None:
        super().__init__()
        #: usage-period decomposition bookkeeping: release time t_i per
        #: bin index (None while the bin is still current), used by the
        #: Theorem 4 analysis instrumentation.
        self.release_times: dict = {}
        #: full release events for the Theorem 4 proof check: each entry
        #: is ``(released_bin_index, time, triggering_item,
        #: resident_items_at_release)`` — the item ``r_i`` that did not
        #: fit the current bin and the set ``R'_i`` of items active in it
        #: at the release instant ``t_i``.
        self.release_log: list = []

    def start(self, instance: Instance) -> None:
        super().start(instance)
        self.release_times = {}
        self.release_log = []

    @property
    def current(self) -> Optional[Bin]:
        """The designated current bin, or ``None`` before the first item."""
        return self._list[0] if self._list else None

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        # |L| == 1, so the only candidate is the current bin.
        return candidates[0]

    def on_new_bin(self, bin_: Bin, item: Item, now: float) -> None:
        # The old current bin (if any) is released: drop it from L.  It
        # remains active in the engine and keeps accruing usage time.
        if self._list:
            released = self._list[0]
            # both structures grow with every bin ever opened (and
            # release_log pins the released bin's resident Items), so a
            # bounded-memory run must switch them off — dispatch never
            # reads either, only the offline Theorem 4 check does
            if self.audit_mode:
                self.release_times[released.index] = now
                self.release_log.append(
                    (released.index, now, item, released.active_items())
                )
        self._list = [bin_]

    def on_closed(self, bin_: Bin, now: float) -> None:
        # A current bin that closes (all items departed) ends its
        # current-period at its close time.
        if self.audit_mode:
            self.release_times.setdefault(bin_.index, now)

    def export_state(self):
        # release_times feeds the Theorem 4 usage-period decomposition
        # and is part of the resumable state; release_log holds live
        # Item/Bin references for the offline proof check only and is
        # deliberately *not* snapshotted (it restarts empty).
        state = super().export_state()
        state["release_times"] = {str(k): v for k, v in self.release_times.items()}
        return state

    def import_state(self, state, bins_by_index) -> None:
        super().import_state(state, bins_by_index)
        self.release_times = {int(k): v for k, v in state["release_times"].items()}
        self.release_log = []
