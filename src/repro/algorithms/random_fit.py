"""Random Fit: pack into a uniformly random fitting bin.

Included in the Section 7 experimental lineup.  Fully reproducible: the
random stream is re-derived from the seed at every :meth:`start`, so
running the same instance twice gives the same packing.
"""

from __future__ import annotations

import operator
from typing import List, Optional

import numpy as np

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import AnyFitAlgorithm

__all__ = ["RandomFit"]


class RandomFit(AnyFitAlgorithm):
    """Random Fit (RF) Any Fit packing algorithm.

    Parameters
    ----------
    seed:
        Seed for the per-run random stream.  Two runs with the same seed
        on the same instance produce identical packings.
    """

    name = "random_fit"
    fast_kernel = "random_fit"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        try:
            # operator.index accepts ints (and numpy integers) but rejects
            # None/floats/strings outright instead of silently truncating
            # or raising a bare TypeError mid-construction.
            self.seed = operator.index(seed)
        except TypeError:
            raise ConfigurationError(
                f"random_fit seed must be an integer, got {seed!r}"
            ) from None
        self._rng: Optional[np.random.Generator] = None

    def start(self, instance: Instance) -> None:
        super().start(instance)
        self._rng = np.random.default_rng(self.seed)

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        assert self._rng is not None, "start() not called"
        return candidates[int(self._rng.integers(len(candidates)))]

    def export_state(self):
        # the bit-generator state dict is plain ints/strings, so the
        # snapshot stays JSON-serialisable; restoring it replays the
        # exact random stream from the snapshot point onward
        state = super().export_state()
        assert self._rng is not None, "start() not called"
        state["rng_state"] = self._rng.bit_generator.state
        return state

    def import_state(self, state, bins_by_index) -> None:
        super().import_state(state, bins_by_index)
        assert self._rng is not None, "start() not called"
        self._rng.bit_generator.state = state["rng_state"]
