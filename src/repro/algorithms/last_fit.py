"""Last Fit: pack into the most recently *opened* bin that fits.

The mirror image of First Fit, included in the Section 7 experimental
lineup.  Note the difference from Move To Front: Last Fit orders bins by
opening time, MF by most recent *use*.
"""

from __future__ import annotations

from typing import List

from ..core.bins import Bin
from ..core.items import Item
from .base import AnyFitAlgorithm

__all__ = ["LastFit"]


class LastFit(AnyFitAlgorithm):
    """Last Fit (LF) Any Fit packing algorithm."""

    name = "last_fit"
    fast_kernel = "last_fit"

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        # L is in opening order (base class appends), so the last
        # candidate is the most recently opened fitting bin.
        return candidates[-1]
