"""Hypothesis strategies for DVBP objects (property-based test inputs).

Importing this module requires `hypothesis <https://hypothesis.readthedocs.io>`_
(the ``test`` extra); the rest of :mod:`repro.verify` — including the CLI
harness — stays importable without it.

Design notes
------------
Values are drawn from *discrete grids* (sizes in multiples of ``1/8``,
times in multiples of ``1/2``) rather than raw floats.  Grids make the
interesting coincidences — simultaneous arrivals, departure/arrival
ties, loads summing exactly to capacity — likely instead of
measure-zero, and shrink to smaller, human-readable counterexamples.
A ``jitter`` flag mixes in off-grid continuous values so the float
tolerance policy is exercised too.

``mu`` is a *ceiling*: generated durations lie in ``[1, mu]``, so the
instance's realised max/min duration ratio is at most the requested
``mu`` (the theorem-bound invariant always uses the realised ratio).
"""

from __future__ import annotations

from typing import Optional, Sequence

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - exercised only without the extra
    raise ImportError(
        "repro.verify.strategies requires hypothesis; install the 'test' "
        "extra (pip install repro[test])"
    ) from exc

from ..adversaries.attacks import ATTACKS
from ..adversaries.base import AttackConfig
from ..algorithms.registry import PAPER_ALGORITHMS
from ..core.instance import Instance
from ..workloads.adversarial import (
    best_fit_trap,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)

__all__ = [
    "DIMENSIONS",
    "dimensions",
    "sizes",
    "durations",
    "arrivals",
    "instances",
    "adversarial_instances",
    "adversary_configs",
    "repacking_configs",
    "policies",
    "trial_seeds",
]

#: The dimension grid the verification subsystem sweeps.
DIMENSIONS: Sequence[int] = (1, 2, 4, 8)

#: Size granularity: item sizes are multiples of 1/8 of capacity.
_SIZE_STEPS = 8
#: Time granularity: arrivals are multiples of 1/2.
_TIME_STEPS = 2


def dimensions() -> st.SearchStrategy[int]:
    """One of the swept dimensions ``{1, 2, 4, 8}``."""
    return st.sampled_from(DIMENSIONS)


def sizes(d: int, jitter: bool = False) -> st.SearchStrategy[list]:
    """A ``d``-dimensional size vector in ``(0, 1]^d`` (unit capacity).

    Grid values ``k/8`` by default; with ``jitter`` a third of the draws
    are continuous in ``[0.01, 1.0]``.
    """
    grid = st.integers(1, _SIZE_STEPS).map(lambda k: k / _SIZE_STEPS)
    if jitter:
        cont = st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False)
        component = st.one_of(grid, grid, cont)
    else:
        component = grid
    return st.lists(component, min_size=d, max_size=d)


def durations(mu: float) -> st.SearchStrategy[float]:
    """A duration in ``[1, mu]`` on an 8-point grid (μ-controlled)."""
    return st.integers(0, 8).map(lambda k: 1.0 + (float(mu) - 1.0) * k / 8.0)


def arrivals(horizon: float = 12.0) -> st.SearchStrategy[float]:
    """An arrival time on the half-integer grid ``{0, 1/2, …, horizon}``."""
    steps = int(horizon * _TIME_STEPS)
    return st.integers(0, steps).map(lambda k: k / _TIME_STEPS)


@st.composite
def instances(
    draw,
    d: Optional[int] = None,
    min_items: int = 1,
    max_items: int = 20,
    mu: Optional[float] = None,
    horizon: float = 12.0,
    jitter: bool = False,
) -> Instance:
    """A valid :class:`~repro.core.instance.Instance` with unit capacity.

    ``d`` defaults to a draw from :data:`DIMENSIONS`, ``mu`` to a draw
    from ``{1, 2, 4, 16}``.  Items are sorted by arrival with ties kept
    in draw order (via ``Instance.from_tuples``), so adversarial
    interleavings at equal times are reachable.
    """
    dd = d if d is not None else draw(dimensions())
    mu_cap = mu if mu is not None else draw(st.sampled_from((1.0, 2.0, 4.0, 16.0)))
    n = draw(st.integers(min_items, max_items))
    triples = []
    for _ in range(n):
        a = draw(arrivals(horizon))
        ell = draw(durations(mu_cap))
        s = draw(sizes(dd, jitter=jitter))
        triples.append((a, a + ell, s))
    return Instance.from_tuples(triples)


@st.composite
def adversarial_instances(draw) -> Instance:
    """One of the paper's lower-bound gadget instances (Thm. 5/6/8, BF trap).

    Parameters are drawn small enough that the harness's oracles stay
    fast; each gadget family exercises the simultaneous-arrival
    interleavings the proofs depend on.
    """
    family = draw(st.sampled_from(("thm5", "thm6", "thm8", "bf_trap")))
    if family == "thm5":
        adv = theorem5_instance(
            d=draw(st.sampled_from((1, 2))),
            k=draw(st.integers(2, 4)),
            mu=float(draw(st.integers(2, 8))),
        )
    elif family == "thm6":
        adv = theorem6_instance(
            d=draw(st.sampled_from((1, 2))),
            k=2 * draw(st.integers(1, 2)),  # Theorem 6 needs an even k
            mu=float(draw(st.integers(2, 6))),
        )
    elif family == "thm8":
        adv = theorem8_instance(
            n=draw(st.integers(4, 16)),
            mu=float(draw(st.integers(2, 8))),
        )
    else:
        adv = best_fit_trap(k=draw(st.integers(2, 4)))
    return adv.instance


@st.composite
def adversary_configs(draw) -> tuple:
    """An ``(attack_name, AttackConfig)`` pair for the adaptive attacks.

    ``rounds`` is drawn small and explicit (2–6) so property tests stay
    fast — the auto-sized constructions that actually reach the bounds
    are covered by the pinned must-exceed scenarios instead.  The
    1-dimensional attacks (``leader_targeting``, ``best_fit_amplifier``)
    are forced to ``d = 1``, matching their constructions.
    """
    name = draw(st.sampled_from(sorted(ATTACKS)))
    if name in ("leader_targeting", "best_fit_amplifier"):
        d = 1
    else:
        d = draw(st.sampled_from((1, 2)))
    config = AttackConfig(
        mu=float(draw(st.sampled_from((1.0, 2.0, 4.0)))) if name != "best_fit_amplifier" else 1.0,
        d=d,
        rounds=draw(st.integers(2, 6)),
        ratio_threshold=float(draw(st.sampled_from((5.0, 50.0)))),
    )
    return name, config


@st.composite
def repacking_configs(draw) -> tuple:
    """A ``(repacker_name, budget)`` pair for the migration-budget engine.

    Budgets are drawn on the grids each accounting mode accepts:
    per-event policies need whole-number move caps (including the
    degenerate 0, which must collapse to the classic engine), while the
    amortized ``budgeted_rebalance`` draws fractional credit rates from
    a small grid so credit-accrual boundary cases (a move becoming
    admissible exactly at an event boundary) stay likely.
    """
    from ..repacking import REPACK_POLICIES

    name = draw(st.sampled_from(sorted(REPACK_POLICIES)))
    if name == "budgeted_rebalance":  # amortized: fractional credit rate
        budget = draw(st.sampled_from((0.0, 0.25, 0.5, 1.0, 2.0)))
    else:  # per-event: whole-number move cap
        budget = float(draw(st.integers(0, 4)))
    return name, budget


def policies() -> st.SearchStrategy[str]:
    """One of the seven Section 7 registry policy names."""
    return st.sampled_from(PAPER_ALGORITHMS)


def trial_seeds() -> st.SearchStrategy[int]:
    """A ``random_fit`` trial seed: small values plus boundary-ish ones.

    Mixes the dense low range (where corpus runs live) with a few large
    seeds so seed-derived RNG streams are pinned across the whole
    ``default_rng`` input domain the engines accept.
    """
    return st.one_of(
        st.integers(0, 16),
        st.sampled_from((12345, 2**31 - 1, 2**63 - 1)),
    )
