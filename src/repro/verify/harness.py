"""The theorem-bound fuzzing harness behind ``repro verify --profile …``.

Drives the whole verification subsystem over a deterministic corpus
(:mod:`repro.verify.generators`): every corpus instance is checked for
the algorithm-free invariants, then replayed through all seven Section 7
policies with the reference differential oracle, the classic-vs-fastpath
twin-engine differential, the classic-vs-streaming bounded-memory
differential, the classic-vs-repacking budget-0 differential (the
migration engine's ``no_repack`` twin must be bit-identical), the
invariant auditor, and the Eq. 1 cost
recomputation; each instance then hosts one live budget-k repacking run
whose move log is replayed through the independent migration-budget
auditor (:func:`repro.verify.oracles.repacking_budget_check`,
alternating the greedy-consolidate and budgeted-rebalance policies),
then the whole policy set is re-run through one batched
:class:`~repro.simulation.batch.BatchRunner` pass which must reproduce
every assignment, bin count, and cost exactly; a stride of (instance,
policy) pairs additionally runs the plain-vs-instrumented engine
differential, and one small batch exercises the serial-vs-worker-vs-batched
sweep equality.  Every profile then runs the adaptive-adversary
must-exceed-bound scenarios (:data:`repro.adversaries.MUST_EXCEED_SCENARIOS`):
each lower-bound attack must certify the required fraction of its
theorem's bound (or drive the unbounded policies past the ratio
threshold) against the live engine, or the run fails.  The run ends
with the mutation smoke-test — if an injected mutant goes *uncaught*
(including the state-blind NullAdversary, which must *fail* the
adversary-bound check), the harness itself is broken, and that is
reported as a violation like any other.

Every engine run is instrumented through one shared
:class:`~repro.observability.stats.StatsCollector`, so the report carries
the oracle path's work counters (events, fit checks, dispatch time) in
the same :class:`~repro.observability.stats.RunStats` currency as the
perf-baseline suite — BENCH trajectory comparisons can therefore track
the verification workload too.

Profiles
--------
``quick``
    220 instances, every policy, instrumented differential every 5th
    pair — the CI gate (seconds to a couple of minutes).
``deep``
    1000 instances, instrumented differential on every pair, plus exact
    tiny-instance optimum cross-checks — the scheduled fuzz job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..adversaries.scenarios import ScenarioOutcome, must_exceed_report
from ..algorithms.best_fit import BestFit, WorstFit
from ..algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from ..core.errors import ConfigurationError, SolverLimitError
from ..observability.stats import RunStats, StatsCollector
from ..optimum.lower_bounds import opt_lower_bound
from ..optimum.opt_cost import optimum_cost, optimum_cost_bounds
from ..simulation.fastpath import FastEngine, available_backends
from ..simulation.runner import run
from .generators import corpus
from .invariants import Violation, audit_instance, audit_run
from .mutation import MutationReport, mutation_smoke_test
from .oracles import (
    compare_with_batch,
    compare_with_fastpath,
    compare_with_reference,
    compare_with_repacking,
    compare_with_streaming,
    cost_check,
    instrumented_equality_check,
    repacking_budget_check,
    resume_equality_check,
    sweep_equality_check,
)

__all__ = ["VerifyProfile", "PROFILES", "VerifyReport", "run_verify"]

_TOL = 1e-9

#: Load-measure kernel variants cycled across the corpus: each instance
#: runs one classic (name, factory) pair against its fast-kernel spec,
#: so the L1/Lp eligibility closure is differential-tested on every
#: corpus shape without multiplying the per-instance work.
_MEASURE_VARIANTS: Tuple[Tuple[str, Callable[[], object], str], ...] = (
    ("best_fit_l1", lambda: BestFit(measure="l1"), "best_fit:l1"),
    ("best_fit_l2", lambda: BestFit(measure="lp", p=2.0), "best_fit:lp:2.0"),
    ("worst_fit_l1", lambda: WorstFit(measure="l1"), "worst_fit:l1"),
    ("worst_fit_lp3", lambda: WorstFit(measure="lp", p=3.0), "worst_fit:lp:3.0"),
)

#: Seeds of the lockstep-trials oracle (small: it runs on a stride of
#: corpus instances, on top of the full per-policy differential set).
_LOCKSTEP_SEEDS = (0, 1, 2, 3)


@dataclass(frozen=True)
class VerifyProfile:
    """Knobs of one harness configuration."""

    name: str
    instances: int
    seed: int
    policies: Tuple[str, ...] = tuple(PAPER_ALGORITHMS)
    #: run the plain-vs-instrumented differential on every k-th
    #: (instance, policy) pair
    instrumented_stride: int = 5
    #: corpus prefix size for the serial-vs-worker sweep equality check
    sweep_batch: int = 6
    #: cross-check the exact optimum on instances with at most this many
    #: items (0 disables; expensive)
    exact_opt_max_items: int = 0


PROFILES = {
    "quick": VerifyProfile(name="quick", instances=220, seed=20230613),
    "deep": VerifyProfile(
        name="deep",
        instances=1000,
        seed=20230613,
        instrumented_stride=1,
        sweep_batch=12,
        exact_opt_max_items=12,
    ),
}


@dataclass
class VerifyReport:
    """Everything one harness run learned."""

    profile: str
    instances_checked: int = 0
    runs: int = 0
    checks: int = 0
    violations: List[Tuple[str, Violation]] = field(default_factory=list)
    adversary_outcomes: Tuple[ScenarioOutcome, ...] = ()
    mutation: Optional[MutationReport] = None
    stats: RunStats = field(default_factory=RunStats)
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff no invariant was violated and every mutant was caught."""
        return not self.violations and (self.mutation is None or self.mutation.all_caught)

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI output)."""
        lines = [
            f"verify profile={self.profile}: {self.instances_checked} instances, "
            f"{self.runs} policy runs, {self.checks} checks "
            f"in {self.wall_time_s:.1f} s",
            f"  work counters: events={self.stats.events}, "
            f"fit_checks={self.stats.fit_checks}, "
            f"candidate_scans={self.stats.candidate_scans}, "
            f"dispatch_time={self.stats.dispatch_time_s:.3f} s",
        ]
        if self.adversary_outcomes:
            passed = sum(1 for o in self.adversary_outcomes if o.passed)
            lines.append(
                f"  adversary bounds: {passed}/{len(self.adversary_outcomes)} "
                "scenarios exceeded their bound"
            )
            worst = min(
                (o for o in self.adversary_outcomes if o.required > 0),
                key=lambda o: o.achieved / o.required,
                default=None,
            )
            if worst is not None:
                lines.append(
                    f"    tightest: {worst.scenario.label} certified "
                    f"{worst.achieved:.3f} vs required {worst.required:.3f}"
                )
        if self.mutation is not None:
            lines.append(
                "  mutation smoke-test: broken-fit "
                f"{'CAUGHT' if self.mutation.capacity_caught else 'MISSED'}, "
                "eager-open "
                f"{'CAUGHT' if self.mutation.any_fit_caught else 'MISSED'}, "
                "stale-residual "
                f"{'CAUGHT' if self.mutation.fastpath_caught else 'MISSED'}, "
                "null-adversary "
                f"{'CAUGHT' if self.mutation.null_adversary_caught else 'MISSED'}, "
                "budget-ignoring "
                f"{'CAUGHT' if self.mutation.repacking_caught else 'MISSED'}"
            )
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            for where, v in self.violations[:20]:
                lines.append(f"    {where}: {v}")
            if len(self.violations) > 20:
                lines.append(f"    ... and {len(self.violations) - 20} more")
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _exact_opt_check(instance, cost_by_policy) -> List[Violation]:
    """Deep-profile cross-check: bracket and bound the *exact* optimum."""
    try:
        opt = optimum_cost(instance, max_nodes_per_segment=50_000)
    except SolverLimitError:
        return []
    lb = opt_lower_bound(instance)
    lo, hi = optimum_cost_bounds(instance)
    out: List[Violation] = []
    if not (lb <= opt + _TOL and lo <= opt + _TOL and opt <= hi + _TOL):
        out.append(Violation(
            "exact-opt",
            f"exact OPT {opt:.6g} outside certified bracket "
            f"[{lo:.6g}, {hi:.6g}] (Lemma 1 LB {lb:.6g})",
        ))
    for policy, cost in cost_by_policy.items():
        if cost + _TOL * max(1.0, cost) < opt:
            out.append(Violation(
                "exact-opt",
                f"{policy} cost {cost:.6g} beats the exact optimum {opt:.6g}",
            ))
    return out


def run_verify(
    profile: str = "quick",
    instances: Optional[int] = None,
    seed: Optional[int] = None,
    collector: Optional[StatsCollector] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Run the verification harness and return its report.

    Parameters
    ----------
    profile:
        ``"quick"`` or ``"deep"`` (see :data:`PROFILES`).
    instances / seed:
        Optional overrides of the profile's corpus size and seed (used
        by tests and for violation replay).
    collector:
        Stats collector every engine run is instrumented through; a
        fresh one is created when omitted.  The report's ``stats`` field
        is its snapshot.
    progress:
        Optional ``print``-like callable for periodic progress lines.
    """
    try:
        prof = PROFILES[profile]
    except KeyError:
        raise ConfigurationError(
            f"unknown verify profile {profile!r}; available: "
            f"{', '.join(sorted(PROFILES))}"
        ) from None
    count = prof.instances if instances is None else int(instances)
    corpus_seed = prof.seed if seed is None else int(seed)
    col = collector if collector is not None else StatsCollector()
    report = VerifyReport(profile=prof.name)
    t0 = perf_counter()

    sweep_prefix = []
    for entry in corpus(count, seed=corpus_seed):
        where = f"corpus[{entry.index}]={entry.recipe}"
        inst = entry.instance
        for v in audit_instance(inst):
            report.violations.append((where, v))
        report.checks += 1
        if len(sweep_prefix) < prof.sweep_batch:
            sweep_prefix.append(inst)

        cost_by_policy = {}
        packing_by_policy = {}
        for p_idx, policy in enumerate(prof.policies):
            kwargs = {"seed": 0} if policy == "random_fit" else {}
            packing = run(make_algorithm(policy, **kwargs), inst, collector=col)
            report.runs += 1
            cost_by_policy[policy] = packing.cost
            packing_by_policy[policy] = packing
            for v in compare_with_reference(packing, policy, seed=0):
                report.violations.append((f"{where}/{policy}", v))
            for v in compare_with_fastpath(packing, policy, seed=0):
                report.violations.append((f"{where}/{policy}", v))
            for v in compare_with_streaming(packing, policy, seed=0):
                report.violations.append((f"{where}/{policy}", v))
            for v in compare_with_repacking(packing, policy, seed=0):
                report.violations.append((f"{where}/{policy}", v))
            for v in audit_run(packing, policy):
                report.violations.append((f"{where}/{policy}", v))
            for v in cost_check(packing):
                report.violations.append((f"{where}/{policy}", v))
            report.checks += 6
            pair = entry.index * len(prof.policies) + p_idx
            if prof.instrumented_stride and pair % prof.instrumented_stride == 0:
                for v in instrumented_equality_check(inst, policy, seed=0):
                    report.violations.append((f"{where}/{policy}", v))
                report.checks += 1

        # one live budget-k repacking run per instance, replayed through
        # the independent migration-budget auditor; policies alternate so
        # both recourse models (per-event cap, amortized credit) are
        # exercised across the corpus
        if entry.index % 2 == 0:
            for v in repacking_budget_check(
                inst, policy="first_fit", repacker="greedy_consolidate",
                budget=2.0, baseline_cost=cost_by_policy.get("first_fit"),
            ):
                report.violations.append((f"{where}/repack-audit", v))
        else:
            for v in repacking_budget_check(
                inst, policy="best_fit", repacker="budgeted_rebalance",
                budget=0.5,
            ):
                report.violations.append((f"{where}/repack-audit", v))
        report.checks += 1

        # one batched pass over the whole policy set: shared context,
        # shared scratch buffers, shared lower bound — must agree exactly
        for v in compare_with_batch(inst, packing_by_policy, seed=0):
            report.violations.append((f"{where}/batch", v))
        report.checks += 1

        # one load-measure kernel variant per instance (cycled): classic
        # BestFit/WorstFit under l1/lp versus the keyed fast kernel
        vname, vfactory, vspec = _MEASURE_VARIANTS[
            entry.index % len(_MEASURE_VARIANTS)
        ]
        vpacking = run(vfactory(), inst, collector=col)
        report.runs += 1
        for v in compare_with_fastpath(vpacking, vspec, seed=0):
            report.violations.append((f"{where}/{vname}", v))
        report.checks += 1

        # trial-lockstep oracle (strided): the vectorized tier's batched
        # random_fit trials must reproduce the sequential numpy replays
        # bit for bit — and seed 0 must match the classic packing above
        if "vectorized" in available_backends() and entry.index % 4 == 0:
            vec = FastEngine(inst, "random_fit", backend="vectorized").run_trials(
                _LOCKSTEP_SEEDS
            )
            ref = FastEngine(inst, "random_fit", backend="numpy").run_trials(
                _LOCKSTEP_SEEDS
            )
            if vec != ref:
                report.violations.append((
                    f"{where}/lockstep",
                    Violation(
                        "lockstep",
                        "vectorized run_trials diverged from sequential "
                        f"numpy replays on seeds {_LOCKSTEP_SEEDS}",
                    ),
                ))
            classic_rf = packing_by_policy.get("random_fit")
            if classic_rf is not None and vec and vec[0] != dict(classic_rf.assignment):
                report.violations.append((
                    f"{where}/lockstep",
                    Violation(
                        "lockstep",
                        "vectorized run_trials seed 0 diverged from the "
                        "classic random_fit packing",
                    ),
                ))
            report.checks += 1

        # numba backend-parity oracle (strided, offset from the lockstep
        # stride): the JIT tier must replay the classic packing bit for
        # bit under the measure-variant spec of this instance, and its
        # batched random_fit trials must match the sequential numpy
        # replays exactly
        if "numba" in available_backends() and entry.index % 4 == 2:
            for v in compare_with_fastpath(
                vpacking, vspec, seed=0, backend="numba"
            ):
                report.violations.append((f"{where}/numba-{vname}", v))
            nmb = FastEngine(inst, "random_fit", backend="numba").run_trials(
                _LOCKSTEP_SEEDS
            )
            ref_nmb = FastEngine(inst, "random_fit", backend="numpy").run_trials(
                _LOCKSTEP_SEEDS
            )
            if nmb != ref_nmb:
                report.violations.append((
                    f"{where}/numba-lockstep",
                    Violation(
                        "lockstep",
                        "numba run_trials diverged from sequential numpy "
                        f"replays on seeds {_LOCKSTEP_SEEDS}",
                    ),
                ))
            report.checks += 1

        if prof.exact_opt_max_items and inst.n <= prof.exact_opt_max_items:
            for v in _exact_opt_check(inst, cost_by_policy):
                report.violations.append((where, v))
            report.checks += 1

        report.instances_checked += 1
        if progress is not None and (entry.index + 1) % 50 == 0:
            progress(
                f"  ... {entry.index + 1}/{count} instances, "
                f"{len(report.violations)} violations"
            )

    for v in sweep_equality_check(sweep_prefix, list(prof.policies[:3])):
        report.violations.append(("sweep-prefix", v))
    report.checks += 1

    # resume determinism: interrupted + resumed == uninterrupted, on
    # all three engines; include random_fit (when present) so per-unit
    # seed derivation is exercised through the checkpoint round-trip
    resume_policies = list(prof.policies[:2])
    if "random_fit" in prof.policies and "random_fit" not in resume_policies:
        resume_policies.append("random_fit")
    for v in resume_equality_check(
        sweep_prefix[:4], resume_policies, engines=("classic", "fast", "batch")
    ):
        report.violations.append(("resume-oracle", v))
    report.checks += 1

    # adaptive-adversary must-exceed-bound scenarios: every profile runs
    # the full grid against the live engine (seed pinned — the induced
    # instances are golden-tested, so any drift here is a regression)
    if progress is not None:
        progress("  ... running adversary must-exceed-bound scenarios")
    report.adversary_outcomes = must_exceed_report(seed=0)
    for outcome in report.adversary_outcomes:
        if not outcome.passed:
            report.violations.append((
                f"adversary/{outcome.scenario.label}",
                Violation("adversary-bound", outcome.message),
            ))
        report.checks += 1

    report.mutation = mutation_smoke_test(seed=corpus_seed)
    if not report.mutation.capacity_caught:
        report.violations.append((
            "mutation",
            Violation("mutation", "broken-fit mutant was NOT caught by the capacity auditor"),
        ))
    if not report.mutation.any_fit_caught:
        report.violations.append((
            "mutation",
            Violation("mutation", "eager-open mutant was NOT caught by the any-fit auditor"),
        ))
    if not report.mutation.fastpath_caught:
        report.violations.append((
            "mutation",
            Violation(
                "mutation",
                "stale-residual fastpath mutant was NOT caught by the "
                "twin-engine differential oracle",
            ),
        ))
    if not report.mutation.null_adversary_caught:
        report.violations.append((
            "mutation",
            Violation(
                "mutation",
                "NullAdversary mutant was NOT rejected by the "
                "must-exceed-bound check",
            ),
        ))
    if not report.mutation.repacking_caught:
        report.violations.append((
            "mutation",
            Violation(
                "mutation",
                "BudgetIgnoringRepacker mutant was NOT caught by the "
                "migration-budget auditor",
            ),
        ))
    report.checks += 1

    report.stats = col.snapshot()
    report.wall_time_s = perf_counter() - t0
    return report
