"""Differential oracles: the engine against independent re-computations.

Each oracle runs the production code path *and* an independent
counterpart and requires the two to agree exactly:

* :func:`differential_check` — the optimised engine versus the
  brute-force :class:`~repro.verify.reference.ReferenceSimulator`
  (bit-identical bin assignments for all seven Section 7 policies);
* :func:`compare_with_fastpath` — the classic engine versus its
  flat-array twin (:class:`~repro.simulation.fastpath.FastEngine`),
  which promises *bit-identical* assignments, not merely equal costs;
* :func:`compare_with_batch` — per-unit packings versus one
  :class:`~repro.simulation.batch.BatchRunner` pass over all policies
  (shared context, shared scratch buffers, shared lower bound), which
  must reproduce every assignment, bin count, and Eq. 1 cost exactly;
* :func:`compare_with_streaming` — the classic engine versus the
  bounded-memory :class:`~repro.streaming.engine.StreamingEngine`
  (incremental merge, tombstone-reclaimed bins), which must reproduce
  every assignment, bin count, and Eq. 1 cost bit for bit;
* :func:`compare_with_repacking` — the classic engine versus the
  migration-budget :class:`~repro.repacking.engine.RepackingEngine`
  running its budget-0 twin (``no_repack``), which performs zero moves
  and must therefore reproduce every assignment, bin count, and Eq. 1
  cost bit for bit — the built-in differential oracle of the
  repacking subsystem;
* :func:`repacking_budget_check` — a live budget-k repacking run per
  instance, replayed through the independent
  :func:`~repro.repacking.audit.audit_repacking` auditor: the
  migration ledger must match the move log move for move, no event may
  exceed its budget, residency segments must tile each item's lifetime,
  capacity must hold under every intermediate load, and the engine's
  cost must equal the first-principles segment recomputation;
* :func:`instrumented_equality_check` — the engine's plain event loop
  versus its instrumented twin (identical packing; run counters that
  agree with ground truth derived from the packing itself);
* :func:`cost_check` — the packing's Eq. 1 cost recomputed from first
  principles as a sum of member-interval union lengths, using only the
  instance and the assignment;
* :func:`sweep_equality_check` — the in-process sweep aggregation versus
  the process-pool worker path (instance serialisation round-trip and
  all), which must produce identical ratio vectors;
* :func:`resume_equality_check` — an *interrupted-and-resumed*
  checkpointed sweep (:func:`repro.orchestration.resumable_sweep`)
  versus the plain uninterrupted sweep, which must produce bit-identical
  unit results on both engines — the core promise of the
  fault-tolerance layer is that recovery never changes results.

Violations are reported with the same :class:`~repro.verify.invariants.Violation`
records as the invariant auditor, so the harness can pool them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..algorithms.registry import make_algorithm
from ..analysis.sweep import sweep_cell
from ..core.instance import Instance
from ..core.intervals import union_length
from ..core.packing import Packing
from ..observability.stats import StatsCollector
from ..core.errors import ConfigurationError
from ..simulation.fastpath import FAST_POLICIES, FastEngine, parse_policy_spec
from ..simulation.parallel import parallel_sweep
from ..simulation.runner import run
from .invariants import Violation
from .reference import ReferenceSimulator

__all__ = [
    "eq1_cost",
    "compare_with_reference",
    "compare_with_fastpath",
    "compare_with_batch",
    "compare_with_streaming",
    "compare_with_repacking",
    "repacking_budget_check",
    "differential_check",
    "instrumented_equality_check",
    "cost_check",
    "sweep_equality_check",
    "resume_equality_check",
]

_TOL = 1e-9


def eq1_cost(instance: Instance, assignment: Mapping[int, int]) -> float:
    """Eq. 1 cost recomputed from first principles.

    ``cost = Σ_i span(R_i)``: for each bin, the measure of the union of
    its members' half-open active intervals.  Uses only the instance and
    the uid → bin map — no engine state, no
    :class:`~repro.core.packing.BinRecord` bookkeeping.
    """
    by_bin: Dict[int, List] = {}
    for it in instance.items:
        by_bin.setdefault(assignment[it.uid], []).append(it.interval)
    return sum(union_length(ivals) for ivals in by_bin.values())


def compare_with_reference(
    packing: Packing, policy: str, seed: int = 0
) -> List[Violation]:
    """Compare an engine-produced ``packing`` against the reference replay.

    ``seed`` parameterises ``random_fit`` (both sides must draw from the
    same seeded stream for the differential to be meaningful).
    """
    instance = packing.instance
    ref = ReferenceSimulator(policy, seed=seed).run(instance)
    out: List[Violation] = []
    if packing.num_bins != ref.num_bins:
        out.append(Violation(
            "differential",
            f"{policy}: engine opened {packing.num_bins} bins, "
            f"reference {ref.num_bins}",
        ))
    if dict(packing.assignment) != ref.assignment:
        diff = [
            uid for uid in ref.assignment
            if packing.assignment.get(uid) != ref.assignment[uid]
        ]
        out.append(Violation(
            "differential",
            f"{policy}: assignments differ on items {diff[:10]}"
            f"{'...' if len(diff) > 10 else ''} "
            f"(engine {[packing.assignment.get(u) for u in diff[:10]]}, "
            f"reference {[ref.assignment[u] for u in diff[:10]]})",
        ))
    ref_cost = eq1_cost(instance, ref.assignment)
    if not out and abs(ref_cost - packing.cost) > _TOL * max(1.0, packing.cost):
        out.append(Violation(
            "differential",
            f"{policy}: engine cost {packing.cost:.9g} != reference "
            f"first-principles cost {ref_cost:.9g}",
        ))
    return out


def compare_with_fastpath(
    packing: Packing,
    policy: str,
    seed: int = 0,
    backend: Optional[str] = None,
    fast_packing: Optional[Packing] = None,
) -> List[Violation]:
    """Compare a classic-engine ``packing`` against the fast-path replay.

    The twin-engine contract is *bit identity*: same bin count, same
    item → bin assignment, same Eq. 1 cost (to tolerance, since the two
    costs are derived from identical assignments).  ``backend`` selects
    the fast kernel backend (default: auto); ``fast_packing`` lets the
    mutation smoke-test inject a deliberately broken fast run instead of
    building a fresh :class:`~repro.simulation.fastpath.FastEngine`.
    """
    if policy not in FAST_POLICIES:
        # Measure-variant specs ("best_fit:l1", "worst_fit:lp:3.0") are
        # fast-eligible too; skip only genuinely kernel-less policies.
        try:
            parse_policy_spec(policy)
        except ConfigurationError:
            return []
    if fast_packing is None:
        fast_packing = FastEngine(
            packing.instance, policy, seed=seed, backend=backend
        ).run()
    out: List[Violation] = []
    if packing.num_bins != fast_packing.num_bins:
        out.append(Violation(
            "fastpath",
            f"{policy}: classic engine opened {packing.num_bins} bins, "
            f"fastpath {fast_packing.num_bins}",
        ))
    if dict(packing.assignment) != dict(fast_packing.assignment):
        fast_assignment = dict(fast_packing.assignment)
        diff = [
            uid for uid in packing.assignment
            if fast_assignment.get(uid) != packing.assignment[uid]
        ]
        out.append(Violation(
            "fastpath",
            f"{policy}: assignments differ on items {diff[:10]}"
            f"{'...' if len(diff) > 10 else ''} "
            f"(classic {[packing.assignment.get(u) for u in diff[:10]]}, "
            f"fastpath {[fast_assignment.get(u) for u in diff[:10]]})",
        ))
    if not out and abs(fast_packing.cost - packing.cost) > _TOL * max(1.0, packing.cost):
        out.append(Violation(
            "fastpath",
            f"{policy}: classic cost {packing.cost:.9g} != fastpath cost "
            f"{fast_packing.cost:.9g}",
        ))
    return out


def compare_with_batch(
    instance: Instance,
    packings_by_policy: Mapping[str, Packing],
    seed: int = 0,
    backend: Optional[str] = None,
) -> List[Violation]:
    """Per-unit packings versus one batched pass over all policies.

    Runs every policy through a single
    :class:`~repro.simulation.batch.BatchRunner` — one shared
    :class:`~repro.simulation.fastpath.ReplayContext`, one re-armed
    engine whose scratch buffers persist across
    :meth:`~repro.simulation.fastpath.FastEngine.reset` calls, one
    Lemma 1 lower bound — and demands *exact* agreement with each
    independently produced packing: same assignment, same bin count,
    same Eq. 1 cost bit for bit (the batched cost replicates
    :meth:`Packing.from_assignment
    <repro.core.packing.Packing.from_assignment>`'s arithmetic, so no
    tolerance is granted), plus the shared lower bound against a fresh
    :func:`~repro.optimum.lower_bounds.height_lower_bound`.

    This is the oracle guarding ``engine="batch"``: any scratch-buffer
    bleed-through between policies, stale context reuse, or cost drift
    shows up as a violation here.
    """
    from ..optimum.lower_bounds import height_lower_bound
    from ..simulation.batch import BatchRunner

    names = list(packings_by_policy)
    entries = [
        (name, {"seed": seed} if name == "random_fit" else None) for name in names
    ]
    runner = BatchRunner(instance, backend=backend)
    results, assignments = runner.run_units(entries, keep_assignments=True)
    out: List[Violation] = []
    expected_lb = height_lower_bound(instance)
    for name, unit, assignment in zip(names, results, assignments):
        packing = packings_by_policy[name]
        if unit.num_bins != packing.num_bins:
            out.append(Violation(
                "batch",
                f"{name}: batched pass opened {unit.num_bins} bins, "
                f"per-unit packing {packing.num_bins}",
            ))
        if assignment != dict(packing.assignment):
            diff = [
                uid for uid in packing.assignment
                if assignment.get(uid) != packing.assignment[uid]
            ]
            out.append(Violation(
                "batch",
                f"{name}: batched assignment differs on items {diff[:10]}"
                f"{'...' if len(diff) > 10 else ''} "
                f"(batched {[assignment.get(u) for u in diff[:10]]}, "
                f"per-unit {[packing.assignment.get(u) for u in diff[:10]]})",
            ))
        if unit.cost != packing.cost:
            out.append(Violation(
                "batch",
                f"{name}: batched cost {unit.cost!r} != per-unit packing "
                f"cost {packing.cost!r} (bit-identity contract)",
            ))
        if unit.lower_bound != expected_lb:
            out.append(Violation(
                "batch",
                f"{name}: batched lower bound {unit.lower_bound!r} != "
                f"height_lower_bound {expected_lb!r}",
            ))
    return out


def compare_with_streaming(
    packing: Packing, policy: str, seed: int = 0
) -> List[Violation]:
    """Compare a classic-engine ``packing`` against the streaming replay.

    The streaming engine consumes the instance's items through the
    incremental merge (departure heap, tombstone-reclaimed bins) instead
    of the up-front event lexsort, and must land on the *same* packing:
    same bin count, same item → bin assignment, and — since
    :func:`~repro.streaming.engine.streaming_run` derives its packing
    from the assignment through the same
    :meth:`~repro.core.packing.Packing.from_assignment` arithmetic — the
    identical Eq. 1 cost bit for bit, so no tolerance is granted.
    Unlike the fastpath oracle this applies to *every* registry policy:
    the streaming engine drives the ordinary algorithm objects.
    """
    from ..streaming import streaming_run

    kwargs = {"seed": seed} if policy == "random_fit" else {}
    stream_packing = streaming_run(make_algorithm(policy, **kwargs), packing.instance)
    out: List[Violation] = []
    if packing.num_bins != stream_packing.num_bins:
        out.append(Violation(
            "streaming",
            f"{policy}: classic engine opened {packing.num_bins} bins, "
            f"streaming {stream_packing.num_bins}",
        ))
    if dict(packing.assignment) != dict(stream_packing.assignment):
        stream_assignment = dict(stream_packing.assignment)
        diff = [
            uid for uid in packing.assignment
            if stream_assignment.get(uid) != packing.assignment[uid]
        ]
        out.append(Violation(
            "streaming",
            f"{policy}: assignments differ on items {diff[:10]}"
            f"{'...' if len(diff) > 10 else ''} "
            f"(classic {[packing.assignment.get(u) for u in diff[:10]]}, "
            f"streaming {[stream_assignment.get(u) for u in diff[:10]]})",
        ))
    if stream_packing.cost != packing.cost:
        out.append(Violation(
            "streaming",
            f"{policy}: streaming cost {stream_packing.cost!r} != classic "
            f"cost {packing.cost!r} (bit-identity contract)",
        ))
    return out


def compare_with_repacking(
    packing: Packing, policy: str, seed: int = 0
) -> List[Violation]:
    """Compare a classic-engine ``packing`` against the budget-0 repack run.

    The repacking engine's ``no_repack`` twin has a migration budget of
    zero: it replays the exact same dispatch loop as the classic engine
    and performs no moves, so it must land on the *same* packing — same
    bin count, same item → bin assignment, and (since a zero-move run
    derives its packing through the identical
    :meth:`~repro.core.packing.Packing.from_assignment` arithmetic) the
    identical Eq. 1 cost bit for bit, so no tolerance is granted.  Any
    divergence means the repacking event loop drifted from the classic
    engine's semantics.  Applies to every registry policy.
    """
    from ..repacking import repacking_run

    kwargs = {"seed": seed} if policy == "random_fit" else {}
    result = repacking_run(make_algorithm(policy, **kwargs), packing.instance)
    repack_packing = result.packing
    out: List[Violation] = []
    if result.num_moves != 0:
        out.append(Violation(
            "repacking",
            f"{policy}: budget-0 no_repack run performed "
            f"{result.num_moves} migrations",
        ))
    if packing.num_bins != repack_packing.num_bins:
        out.append(Violation(
            "repacking",
            f"{policy}: classic engine opened {packing.num_bins} bins, "
            f"budget-0 repacking {repack_packing.num_bins}",
        ))
    if dict(packing.assignment) != dict(repack_packing.assignment):
        repack_assignment = dict(repack_packing.assignment)
        diff = [
            uid for uid in packing.assignment
            if repack_assignment.get(uid) != packing.assignment[uid]
        ]
        out.append(Violation(
            "repacking",
            f"{policy}: assignments differ on items {diff[:10]}"
            f"{'...' if len(diff) > 10 else ''} "
            f"(classic {[packing.assignment.get(u) for u in diff[:10]]}, "
            f"repacking {[repack_assignment.get(u) for u in diff[:10]]})",
        ))
    if repack_packing.cost != packing.cost:
        out.append(Violation(
            "repacking",
            f"{policy}: budget-0 repacking cost {repack_packing.cost!r} != "
            f"classic cost {packing.cost!r} (bit-identity contract)",
        ))
    return out


def repacking_budget_check(
    instance: Instance,
    policy: str = "first_fit",
    repacker: str = "greedy_consolidate",
    budget: float = 2.0,
    seed: int = 0,
    baseline_cost: Optional[float] = None,
) -> List[Violation]:
    """Audit a live budget-k repacking run against the invariant auditor.

    Runs ``policy`` under ``repacker`` with migration budget ``budget``
    and replays the result through
    :func:`~repro.repacking.audit.audit_repacking`, which re-derives
    every invariant from the move log (never trusting the ledger that
    *enforced* the budget): per-event/amortized budget compliance,
    ledger/log agreement, residency segments tiling each item's
    lifetime, capacity under every intermediate load, and the Eq. 1
    cost recomputed from first principles.  When ``baseline_cost`` (the
    no-recourse cost of the same policy) is supplied, the
    ``greedy_consolidate`` never-worse guarantee is also checked: the
    policy only commits strictly-negative-delta full-bin evacuations,
    so its cost can never exceed the budget-0 cost.
    """
    from ..repacking import audit_repacking, repacking_run

    kwargs = {"seed": seed} if policy == "random_fit" else {}
    result = repacking_run(
        make_algorithm(policy, **kwargs), instance,
        repacker=repacker, budget=budget,
    )
    label = f"{policy}/{repacker}:{budget:g}"
    out = [
        Violation("repacking-audit", f"{label}: {problem}")
        for problem in audit_repacking(result)
    ]
    if (
        baseline_cost is not None
        and repacker == "greedy_consolidate"
        and result.cost > baseline_cost + _TOL * max(1.0, baseline_cost)
    ):
        out.append(Violation(
            "repacking-audit",
            f"{label}: cost {result.cost:.9g} exceeds the no-recourse "
            f"baseline {baseline_cost:.9g} — greedy_consolidate only "
            "commits strictly-improving evacuations",
        ))
    return out


def differential_check(
    instance: Instance,
    policy: str,
    seed: int = 0,
    collector: Optional[StatsCollector] = None,
) -> List[Violation]:
    """Engine vs reference simulator on one (instance, policy) pair.

    Convenience wrapper: runs the engine (optionally instrumented via
    ``collector``) and delegates to :func:`compare_with_reference`.
    """
    kwargs = {"seed": seed} if policy == "random_fit" else {}
    packing = run(make_algorithm(policy, **kwargs), instance, collector=collector)
    return compare_with_reference(packing, policy, seed=seed)


def instrumented_equality_check(
    instance: Instance, policy: str, seed: int = 0
) -> List[Violation]:
    """Plain vs instrumented engine loop on one (instance, policy) pair.

    The instrumented twin loop must not change any decision, and its
    counters must match ground truth recomputed from the packing.
    """
    kwargs = {"seed": seed} if policy == "random_fit" else {}
    plain = run(make_algorithm(policy, **kwargs), instance)
    collector = StatsCollector()
    instrumented = run(make_algorithm(policy, **kwargs), instance, collector=collector)
    out: List[Violation] = []
    if dict(plain.assignment) != dict(instrumented.assignment):
        out.append(Violation(
            "instrumented",
            f"{policy}: instrumented engine produced a different assignment",
        ))
    stats = collector.snapshot()
    n = instance.n
    expected = {
        "arrivals": (stats.arrivals, n),
        "departures": (stats.departures, n),
        "events": (stats.events, 2 * n),
        "bins_opened": (stats.bins_opened, instrumented.num_bins),
        "bins_closed": (stats.bins_closed, instrumented.num_bins),
        "peak_open_bins": (stats.peak_open_bins, instrumented.max_concurrent_bins()),
    }
    for name, (got, want) in expected.items():
        if got != want:
            out.append(Violation(
                "instrumented",
                f"{policy}: counter {name}={got} disagrees with packing "
                f"ground truth {want}",
            ))
    if stats.fit_checks < stats.candidate_scans:
        out.append(Violation(
            "instrumented",
            f"{policy}: fit_checks={stats.fit_checks} < "
            f"candidate_scans={stats.candidate_scans}",
        ))
    return out


def cost_check(packing: Packing) -> List[Violation]:
    """Recompute Eq. 1 from the assignment and compare to the packing."""
    recomputed = eq1_cost(packing.instance, packing.assignment)
    if abs(recomputed - packing.cost) > _TOL * max(1.0, abs(packing.cost)):
        return [Violation(
            "cost",
            f"packing cost {packing.cost:.9g} != interval-union "
            f"recomputation {recomputed:.9g}",
        )]
    return []


def sweep_equality_check(
    instances: Sequence[Instance],
    policies: Sequence[str],
) -> List[Violation]:
    """Serial sweep vs the worker code path, on the same batch.

    ``sweep_cell(processes=0)`` runs algorithms in-process on the live
    instances; ``parallel_sweep(processes=0)`` drives the exact worker
    entry point (``simulate_unit``) including the instance dict
    round-trip that real process pools perform, and
    ``parallel_sweep(engine="batch")`` drives the batched worker entry
    point (``simulate_batch_unit``) that groups each instance's whole
    policy fan-out into one :class:`~repro.simulation.batch.BatchRunner`
    pass.  All three ratio vectors must be identical.
    """
    serial = sweep_cell(policies, list(instances))
    worker = parallel_sweep(policies, list(instances), processes=0)
    batched = parallel_sweep(policies, list(instances), processes=0, engine="batch")
    out: List[Violation] = []
    for name in policies:
        worker_ratios = [r.ratio for r in worker[name]]
        if serial.ratios[name] != worker_ratios:
            out.append(Violation(
                "sweep",
                f"{name}: serial ratios {serial.ratios[name]} != worker-path "
                f"ratios {worker_ratios}",
            ))
        batch_ratios = [r.ratio for r in batched[name]]
        if serial.ratios[name] != batch_ratios:
            out.append(Violation(
                "sweep",
                f"{name}: serial ratios {serial.ratios[name]} != batched-path "
                f"ratios {batch_ratios}",
            ))
    return out


def resume_equality_check(
    instances: Sequence[Instance],
    policies: Sequence[str],
    engines: Sequence[str] = ("classic", "fast"),
) -> List[Violation]:
    """Interrupted-and-resumed sweep vs the uninterrupted sweep.

    For each engine: run the batch once uninterrupted, then fabricate an
    interruption — a checkpointed :func:`repro.orchestration.resumable_sweep`
    stopped after roughly half its units (``max_units``), followed by a
    ``resume=True`` completion against the same checkpoint directory.
    Every unit of the merged resumed run must be *bit-identical*
    (``cost``, ``num_bins``, ``lower_bound``) to the uninterrupted one:
    recovery must never change results.  Also checks that the resumed
    phase actually reloaded units from the checkpoint rather than
    silently recomputing everything.
    """
    import tempfile

    from ..observability.stats import StatsCollector as _Collector
    from ..orchestration import resumable_sweep

    batch = list(instances)
    out: List[Violation] = []
    for engine in engines:
        plain = resumable_sweep(policies, batch, processes=0, engine=engine)
        total_units = sum(len(v) for v in plain.values())
        cut = max(1, total_units // 2)
        with tempfile.TemporaryDirectory(prefix="repro-resume-oracle-") as ckpt:
            partial = resumable_sweep(
                policies, batch, processes=0, engine=engine,
                checkpoint_dir=ckpt, flush_every=1, max_units=cut,
            )
            # The batch engine completes whole payloads (one instance x
            # all policies) atomically, so the interrupted phase may
            # overshoot ``cut`` — the resumed phase must reload exactly
            # what phase one actually completed, whatever that was.
            expected_resumed = sum(len(v) for v in partial.values())
            col = _Collector()
            resumed = resumable_sweep(
                policies, batch, processes=0, engine=engine,
                checkpoint_dir=ckpt, resume=True, collector=col,
            )
        if expected_resumed < cut or expected_resumed >= total_units:
            out.append(Violation(
                "resume",
                f"engine={engine}: interrupted phase completed "
                f"{expected_resumed} units (max_units={cut}, total "
                f"{total_units}) — the fabricated interruption did not "
                "leave a genuine partial sweep",
            ))
        if col.units_resumed != expected_resumed:
            out.append(Violation(
                "resume",
                f"engine={engine}: resumed phase reloaded "
                f"{col.units_resumed} units from the checkpoint, expected "
                f"{expected_resumed} — the resume path is not actually "
                "resuming",
            ))
        for name in policies:
            a = [(r.instance_index, r.cost, r.num_bins, r.lower_bound)
                 for r in plain[name]]
            b = [(r.instance_index, r.cost, r.num_bins, r.lower_bound)
                 for r in resumed[name]]
            if a != b:
                out.append(Violation(
                    "resume",
                    f"{name} (engine={engine}): resumed sweep differs from "
                    f"uninterrupted sweep — recovery changed results",
                ))
    return out
