"""Deterministic fuzz corpus: the instance stream the verify harness replays.

The harness (:mod:`repro.verify.harness`) needs many *diverse* instances
— random workloads across dimensions and duration ratios, the paper's
adversarial gadgets, and hand-built edge shapes that stress the exact
behaviours the oracles check (simultaneous events, exact-fit boundaries,
half-open departure/arrival ties).  It also needs the stream to be a pure
function of one integer seed, so a CI fuzz run is reproducible and a
reported violation can be replayed by index.

This module is that stream.  :func:`corpus` cycles a fixed recipe list
(:data:`CORPUS_RECIPES`), giving each drawn instance an independent
``SeedSequence``-spawned RNG (the same collision-free scheme
:mod:`repro.workloads.base` uses for experiment batches).

Hypothesis-driven *search* for failing inputs lives separately in
:mod:`repro.verify.strategies`; this corpus trades search power for
determinism and zero test-time dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.items import Item
from ..workloads.adversarial import (
    best_fit_trap,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)
from ..workloads.correlated import CorrelatedWorkload
from ..workloads.poisson import PoissonWorkload
from ..workloads.uniform import UniformWorkload

__all__ = ["CorpusItem", "CORPUS_RECIPES", "corpus", "corpus_list"]

#: Dimensions the fuzz corpus sweeps (the ISSUE's d grid).
DIMENSIONS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class CorpusItem:
    """One corpus entry: the instance plus provenance for replay."""

    index: int
    recipe: str
    instance: Instance


# ----------------------------------------------------------------------
# edge-shape builders (deterministic given an rng)
# ----------------------------------------------------------------------

def _edge_static_burst(rng: np.random.Generator) -> Instance:
    """All items arrive at t=0 with equal durations: a static VBP slice."""
    d = int(rng.choice(DIMENSIONS))
    n = int(rng.integers(4, 16))
    sizes = rng.integers(1, 9, size=(n, d)) / 8.0
    items = [Item(0.0, 1.0, sizes[i], uid=i) for i in range(n)]
    return Instance(items, name="edge_static_burst")


def _edge_departure_chain(rng: np.random.Generator) -> Instance:
    """Item ``i+1`` arrives exactly when item ``i`` departs.

    Under the half-open ``[a, e)`` rule each arrival must be able to
    reuse the capacity its predecessor just freed — the sharpest test of
    tie-breaking (departures before arrivals at equal times).
    """
    d = int(rng.choice((1, 2, 4)))
    n = int(rng.integers(3, 10))
    size = np.full(d, 1.0)  # each item fills the whole bin
    items = [Item(float(i), float(i + 1), size.copy(), uid=i) for i in range(n)]
    return Instance(items, name="edge_departure_chain")


def _edge_exact_fit(rng: np.random.Generator) -> Instance:
    """Pairs that exactly sum to capacity: fit checks at the boundary."""
    d = int(rng.choice((1, 2)))
    k = int(rng.integers(2, 7))
    items: List[Item] = []
    uid = 0
    for i in range(k):
        a = float(i)
        frac = float(rng.integers(1, 8)) / 8.0
        for s in (frac, 1.0 - frac):
            items.append(Item(a, a + float(rng.integers(1, 4)), np.full(d, s), uid=uid))
            uid += 1
    items.sort(key=lambda it: it.arrival)
    return Instance([it.with_uid(i) for i, it in enumerate(items)], name="edge_exact_fit")


def _edge_single_item(rng: np.random.Generator) -> Instance:
    d = int(rng.choice(DIMENSIONS))
    dur = float(rng.integers(1, 20))
    return Instance([Item(0.0, dur, rng.uniform(0.05, 1.0, size=d), uid=0)],
                    name="edge_single_item")


def _edge_mu_extremes(rng: np.random.Generator) -> Instance:
    """One very long item under a stream of unit-length items (μ large)."""
    d = int(rng.choice((1, 2, 4)))
    mu = float(rng.choice((8.0, 32.0, 128.0)))
    items = [Item(0.0, mu, rng.uniform(0.1, 0.5, size=d), uid=0)]
    n = int(rng.integers(5, 20))
    for i in range(1, n + 1):
        a = float(rng.integers(0, int(mu)))
        items.append(Item(a, a + 1.0, rng.uniform(0.1, 0.9, size=d), uid=i))
    items.sort(key=lambda it: it.arrival)
    return Instance([it.with_uid(i) for i, it in enumerate(items)],
                    name="edge_mu_extremes")


# ----------------------------------------------------------------------
# the recipe list
# ----------------------------------------------------------------------

def _uniform(d: int, mu: int, B: int) -> Callable[[np.random.Generator], Instance]:
    gen = UniformWorkload(d=d, n=30, mu=mu, T=4 * mu + 8, B=B, name=f"uniform_d{d}_mu{mu}")
    return gen.sample


def _poisson(d: int) -> Callable[[np.random.Generator], Instance]:
    gen = PoissonWorkload(d=d, rate=1.5, horizon=20.0, min_items=4, name=f"poisson_d{d}")
    return gen.sample


def _correlated(d: int, rho: float) -> Callable[[np.random.Generator], Instance]:
    gen = CorrelatedWorkload(d=d, n=25, rho=rho, mu=8, name=f"correlated_d{d}")
    return gen.sample


def _gadget(builder, **kwargs) -> Callable[[np.random.Generator], Instance]:
    def build(_rng: np.random.Generator) -> Instance:
        return builder(**kwargs).instance

    return build


#: ``(name, builder)`` pairs; :func:`corpus` cycles this list.  Roughly
#: half random workloads over the d × μ grid, a quarter theorem gadgets,
#: a quarter hand-built edge shapes.
CORPUS_RECIPES: List[Tuple[str, Callable[[np.random.Generator], Instance]]] = [
    ("uniform_d1_mu2", _uniform(1, 2, 10)),
    ("uniform_d1_mu20", _uniform(1, 20, 10)),
    ("uniform_d2_mu5", _uniform(2, 5, 10)),
    ("uniform_d2_mu10_B100", _uniform(2, 10, 100)),
    ("uniform_d4_mu5", _uniform(4, 5, 10)),
    ("uniform_d8_mu3", _uniform(8, 3, 10)),
    ("poisson_d1", _poisson(1)),
    ("poisson_d2", _poisson(2)),
    ("poisson_d4", _poisson(4)),
    ("correlated_d2", _correlated(2, 0.8)),
    ("correlated_d4", _correlated(4, 0.3)),
    ("theorem5_d1_k3", _gadget(theorem5_instance, d=1, k=3, mu=4.0)),
    ("theorem5_d2_k2", _gadget(theorem5_instance, d=2, k=2, mu=6.0)),
    ("theorem6_d1_k4", _gadget(theorem6_instance, d=1, k=4, mu=4.0)),
    ("theorem6_d2_k2", _gadget(theorem6_instance, d=2, k=2, mu=3.0)),
    ("theorem8_n12", _gadget(theorem8_instance, n=12, mu=5.0)),
    ("best_fit_trap_k3", _gadget(best_fit_trap, k=3)),
    ("edge_static_burst", _edge_static_burst),
    ("edge_departure_chain", _edge_departure_chain),
    ("edge_exact_fit", _edge_exact_fit),
    ("edge_single_item", _edge_single_item),
    ("edge_mu_extremes", _edge_mu_extremes),
]


def corpus(count: int, seed: int = 0) -> Iterator[CorpusItem]:
    """Yield ``count`` corpus instances, a pure function of ``seed``.

    Entry ``i`` uses recipe ``i % len(CORPUS_RECIPES)`` with the ``i``-th
    spawned child seed, so any single entry can be regenerated without
    replaying the stream.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    for i in range(count):
        name, build = CORPUS_RECIPES[i % len(CORPUS_RECIPES)]
        instance = build(np.random.default_rng(children[i]))
        yield CorpusItem(index=i, recipe=name, instance=instance)


def corpus_list(count: int, seed: int = 0) -> List[CorpusItem]:
    """Materialised form of :func:`corpus`."""
    return list(corpus(count, seed))
