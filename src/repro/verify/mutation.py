"""Mutation smoke-tests: prove the verification harness has teeth.

A verification suite that never fires is indistinguishable from one that
works.  This module injects *known-broken* behaviour and asserts the
invariant auditor catches it:

* :func:`broken_fit` — a fit predicate with a classic vector-packing bug
  (it only checks dimension 0).  Injected into the reference simulator —
  which, unlike the engine, has no defensive capacity re-check — it
  produces genuinely infeasible multi-dimensional packings that the
  ``capacity`` invariant must flag.
* :class:`EagerOpenFirstFit` — an engine policy that deliberately breaks
  the Any Fit property by opening a fresh bin whenever its (buggy)
  candidate filter hides the fitting bins.  The packing stays feasible,
  so only the ``any-fit`` invariant can catch it.

:func:`mutation_smoke_test` runs both mutants and reports whether each
was caught; the harness treats an *uncaught mutant* as a violation of
the verification subsystem itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..core.bins import Bin
from ..core.instance import Instance
from ..core.items import Item
from ..core.packing import Packing
from ..core.vectors import EPS
from ..simulation.runner import run
from ..workloads.uniform import UniformWorkload
from .invariants import Violation, check_any_fit, check_capacity
from .reference import ReferenceSimulator

__all__ = ["broken_fit", "EagerOpenFirstFit", "MutationReport", "mutation_smoke_test"]


def broken_fit(load: np.ndarray, size: np.ndarray, capacity: np.ndarray) -> bool:
    """A deliberately broken fit predicate: ignores every dimension but 0.

    The archetypal DVBP implementation bug — treating the vector problem
    as scalar.  For ``d = 1`` it is correct, which is exactly why the
    smoke test must run it on a ``d >= 2`` instance.
    """
    return bool(load[0] + size[0] <= capacity[0] + EPS * max(capacity[0], 1.0))


class EagerOpenFirstFit:
    """First Fit with a broken candidate filter: every other arrival
    pretends no open bin fits and opens a fresh bin.

    Implements the :class:`~repro.algorithms.base.OnlineAlgorithm`
    contract directly (not via ``AnyFitAlgorithm``, whose template is
    precisely what enforces the property being broken here).
    """

    name = "eager_open_first_fit"

    def __init__(self) -> None:
        self._open: List[Bin] = []
        self._arrivals = 0

    def bind_collector(self, collector) -> None:  # engine API compatibility
        pass

    def start(self, instance: Instance) -> None:
        self._open = []
        self._arrivals = 0

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        self._arrivals += 1
        if self._arrivals % 2 == 0:  # the bug: skip the candidate scan
            fresh = open_new_bin()
            self._open.append(fresh)
            return fresh
        for b in self._open:
            if b.can_fit(item):
                return b
        fresh = open_new_bin()
        self._open.append(fresh)
        return fresh

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            self._open = [b for b in self._open if b is not bin_]


@dataclass(frozen=True)
class MutationReport:
    """Outcome of the smoke test: what each mutant triggered."""

    capacity_caught: bool
    any_fit_caught: bool
    capacity_violations: List[Violation]
    any_fit_violations: List[Violation]

    @property
    def all_caught(self) -> bool:
        """True iff every injected mutant was flagged by the auditor."""
        return self.capacity_caught and self.any_fit_caught


def mutation_smoke_test(seed: int = 0) -> MutationReport:
    """Run both mutants on small random instances and audit the results."""
    # mutant 1: broken fit predicate in the reference simulator, d >= 2
    # (sizes near capacity so dimension-1 overflows are guaranteed)
    inst = UniformWorkload(d=2, n=40, mu=5, T=30, B=4, name="mutation").sample_seeded(seed)
    ref = ReferenceSimulator("first_fit", fit=broken_fit).run(inst)
    broken_packing = Packing.from_assignment(inst, ref.assignment, algorithm="broken_fit")
    capacity_violations = check_capacity(broken_packing)

    # mutant 2: feasible but non-Any-Fit engine policy
    inst2 = UniformWorkload(d=2, n=40, mu=5, T=30, B=10, name="mutation").sample_seeded(seed + 1)
    eager_packing = run(EagerOpenFirstFit(), inst2)
    any_fit_violations = check_any_fit(eager_packing)

    return MutationReport(
        capacity_caught=bool(capacity_violations),
        any_fit_caught=bool(any_fit_violations),
        capacity_violations=capacity_violations,
        any_fit_violations=any_fit_violations,
    )
