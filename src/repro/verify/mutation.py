"""Mutation smoke-tests: prove the verification harness has teeth.

A verification suite that never fires is indistinguishable from one that
works.  This module injects *known-broken* behaviour and asserts the
invariant auditor catches it:

* :func:`broken_fit` — a fit predicate with a classic vector-packing bug
  (it only checks dimension 0).  Injected into the reference simulator —
  which, unlike the engine, has no defensive capacity re-check — it
  produces genuinely infeasible multi-dimensional packings that the
  ``capacity`` invariant must flag.
* :class:`EagerOpenFirstFit` — an engine policy that deliberately breaks
  the Any Fit property by opening a fresh bin whenever its (buggy)
  candidate filter hides the fitting bins.  The packing stays feasible,
  so only the ``any-fit`` invariant can catch it.
* :class:`StaleResidualFastEngine` — the fast-path engine with the
  archetypal flat-array bug: the residual-capacity row is left stale
  after a departure (capacity is never reclaimed), so the fast replay
  silently opens extra bins.  Classic and fastpath each stay
  self-consistent, so only the classic-vs-fastpath differential oracle
  (:func:`~repro.verify.oracles.compare_with_fastpath`) can catch it.
* :class:`BudgetIgnoringRepacker` — a repack policy that relocates items
  through the repacking engine's *unchecked* move primitive, silently
  skipping the :class:`~repro.repacking.ledger.MigrationLedger` that
  enforces the migration budget ``k``.  The packing stays feasible and
  the cost bookkeeping stays exact, so only the budget auditor
  (:func:`~repro.repacking.audit.audit_migration_budget`) — which
  replays the engine's raw move log rather than trusting the ledger —
  can catch the over-budget event and the ledger/log disagreement.
* the :class:`~repro.adversaries.attacks.NullAdversary` — a state-blind
  "attack" that emits random arrivals while ignoring the engine view.
  Run through the same must-exceed-bound scenario check as the real
  attacks, it must FAIL to reach its bound; if it *passes*, the
  adversary-bound check is vacuous (any stream would satisfy it).

:func:`mutation_smoke_test` runs all mutants and reports whether each
was caught; the harness treats an *uncaught mutant* as a violation of
the verification subsystem itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from ..algorithms.registry import make_algorithm
from ..core.bins import Bin
from ..core.events import EventKind
from ..core.instance import Instance
from ..core.items import Item
from ..core.packing import Packing
from ..core.vectors import EPS
from ..adversaries.scenarios import null_adversary_outcome
from ..repacking import audit_migration_budget, repacking_run
from ..repacking.ledger import MoveRecord
from ..repacking.policies import RepackPolicy, _evacuation_plan
from ..simulation.fastpath import FastEngine
from ..simulation.runner import run
from ..workloads.uniform import UniformWorkload
from .invariants import Violation, check_any_fit, check_capacity
from .oracles import compare_with_fastpath
from .reference import ReferenceSimulator

__all__ = [
    "broken_fit",
    "EagerOpenFirstFit",
    "StaleResidualFastEngine",
    "BudgetIgnoringRepacker",
    "MutationReport",
    "mutation_smoke_test",
]


def broken_fit(load: np.ndarray, size: np.ndarray, capacity: np.ndarray) -> bool:
    """A deliberately broken fit predicate: ignores every dimension but 0.

    The archetypal DVBP implementation bug — treating the vector problem
    as scalar.  For ``d = 1`` it is correct, which is exactly why the
    smoke test must run it on a ``d >= 2`` instance.
    """
    return bool(load[0] + size[0] <= capacity[0] + EPS * max(capacity[0], 1.0))


class EagerOpenFirstFit:
    """First Fit with a broken candidate filter: every other arrival
    pretends no open bin fits and opens a fresh bin.

    Implements the :class:`~repro.algorithms.base.OnlineAlgorithm`
    contract directly (not via ``AnyFitAlgorithm``, whose template is
    precisely what enforces the property being broken here).
    """

    name = "eager_open_first_fit"

    def __init__(self) -> None:
        self._open: List[Bin] = []
        self._arrivals = 0

    def bind_collector(self, collector) -> None:  # engine API compatibility
        pass

    def start(self, instance: Instance) -> None:
        self._open = []
        self._arrivals = 0

    def dispatch(self, item: Item, now: float, open_new_bin: Callable[[], Bin]) -> Bin:
        self._arrivals += 1
        if self._arrivals % 2 == 0:  # the bug: skip the candidate scan
            fresh = open_new_bin()
            self._open.append(fresh)
            return fresh
        for b in self._open:
            if b.can_fit(item):
                return b
        fresh = open_new_bin()
        self._open.append(fresh)
        return fresh

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            self._open = [b for b in self._open if b is not bin_]


class StaleResidualFastEngine(FastEngine):
    """Fast engine with a deliberately stale residual-capacity matrix.

    Flips the :class:`~repro.simulation.fastpath.FastEngine` mutation
    hook so a departure from a still-occupied bin skips the row re-sum:
    freed capacity is never reclaimed, loads only ratchet up, and the
    replay opens bins the classic engine would not.  Every individual
    packing it produces is still *feasible* (loads are over-, never
    under-estimated), which is exactly why only the twin-engine
    differential can catch this class of bug.
    """

    _stale_residual_bug = True


class BudgetIgnoringRepacker(RepackPolicy):
    """A repack policy that silently bypasses migration-budget enforcement.

    ``GreedyConsolidate``'s evil twin: after a departure it evacuates the
    first whole bin whose residents all fit elsewhere — but it executes
    the plan through the engine's *unchecked*
    :meth:`~repro.repacking.engine.RepackingEngine._apply_move` primitive
    instead of :meth:`~repro.repacking.engine.RepackContext.move`, so the
    :class:`~repro.repacking.ledger.MigrationLedger` never sees the
    moves.  It only commits plans longer than one move, guaranteeing a
    budget-1 run exceeds its per-event cap.  The engine's raw move log
    still records every relocation, which is exactly the trail the
    budget auditor replays to catch this class of bug.
    """

    name = "budget_ignoring"
    mode = "per_event"
    default_budget = 1.0

    def after_event(self, ctx, kind, now: float) -> None:
        if kind is not EventKind.DEPARTURE:
            return
        engine = ctx._engine
        bins = ctx.open_bins()
        if len(bins) < 2:
            return
        for source in bins:
            targets = [b for b in bins if b is not source]
            plan = _evacuation_plan(source, targets, now)
            if not plan or len(plan) < 2:
                continue
            for item, dst in plan:
                src = ctx.bin_of(item)
                record = MoveRecord(
                    event_index=engine._event_index,
                    time=now,
                    uid=item.uid,
                    src=src.index,
                    dst=dst.index,
                    cost_delta=0.0,
                )
                # the bug: straight to the unchecked primitive, skipping
                # ledger admission entirely
                engine._apply_move(item, src, dst, now, record)
            return


@dataclass(frozen=True)
class MutationReport:
    """Outcome of the smoke test: what each mutant triggered.

    The fastpath fields default to "caught with no violations" so
    pre-fastpath callers constructing reports positionally keep working.
    """

    capacity_caught: bool
    any_fit_caught: bool
    capacity_violations: List[Violation]
    any_fit_violations: List[Violation]
    fastpath_caught: bool = True
    fastpath_violations: List[Violation] = field(default_factory=list)
    null_adversary_caught: bool = True
    null_adversary_violations: List[Violation] = field(default_factory=list)
    repacking_caught: bool = True
    repacking_violations: List[Violation] = field(default_factory=list)

    @property
    def all_caught(self) -> bool:
        """True iff every injected mutant was flagged by the auditor."""
        return (
            self.capacity_caught
            and self.any_fit_caught
            and self.fastpath_caught
            and self.null_adversary_caught
            and self.repacking_caught
        )


def mutation_smoke_test(seed: int = 0) -> MutationReport:
    """Run all mutants on small random instances and audit the results."""
    # mutant 1: broken fit predicate in the reference simulator, d >= 2
    # (sizes near capacity so dimension-1 overflows are guaranteed)
    inst = UniformWorkload(d=2, n=40, mu=5, T=30, B=4, name="mutation").sample_seeded(seed)
    ref = ReferenceSimulator("first_fit", fit=broken_fit).run(inst)
    broken_packing = Packing.from_assignment(inst, ref.assignment, algorithm="broken_fit")
    capacity_violations = check_capacity(broken_packing)

    # mutant 2: feasible but non-Any-Fit engine policy
    inst2 = UniformWorkload(d=2, n=40, mu=5, T=30, B=10, name="mutation").sample_seeded(seed + 1)
    eager_packing = run(EagerOpenFirstFit(), inst2)
    any_fit_violations = check_any_fit(eager_packing)

    # mutant 3: stale residuals in the fast engine — feasible on both
    # sides, divergent assignments; a churny workload (short durations,
    # tight bins) guarantees reclaimed capacity actually gets reused
    inst3 = UniformWorkload(d=2, n=60, mu=6, T=20, B=6, name="mutation").sample_seeded(seed + 2)
    classic_packing = run("first_fit", inst3)
    stale_packing = StaleResidualFastEngine(inst3, "first_fit").run()
    fastpath_violations = compare_with_fastpath(
        classic_packing, "first_fit", fast_packing=stale_packing
    )

    # mutant 5: a repack policy that bypasses the migration ledger — a
    # hand-built instance where evacuating one bin takes exactly two
    # moves (at t=30 the heavy anchor departs bin 0, freeing room for
    # bin 1's two residents), so a budget-1 run must exceed its cap
    inst5 = Instance.from_tuples(
        [
            (0.0, 40.0, 0.3),   # anchors bin 0 open to the end
            (1.0, 30.0, 0.7),   # fills bin 0 until t=30
            (2.0, 35.0, 0.2),   # overflow -> bin 1
            (3.0, 36.0, 0.2),   # joins bin 1
            (4.0, 5.0, 0.5),    # early departure opening a repack window
        ],
        name="mutation-repack",
    )
    repack_result = repacking_run(
        make_algorithm("first_fit"), inst5,
        repacker=BudgetIgnoringRepacker(), budget=1.0,
    )
    repacking_violations = [
        Violation("repacking-audit", problem)
        for problem in audit_migration_budget(repack_result)
    ]

    # mutant 4: the state-blind NullAdversary judged by the same
    # must-exceed-bound check as the real attacks — "caught" means the
    # check rejected it (its certified ratio fell short of the bound)
    null_outcome = null_adversary_outcome(seed=seed)
    null_violations: List[Violation] = []
    if null_outcome.passed:
        null_violations.append(Violation(
            "adversary-bound",
            "NullAdversary PASSED the must-exceed-bound check "
            f"({null_outcome.message}) — the check is vacuous",
        ))

    return MutationReport(
        capacity_caught=bool(capacity_violations),
        any_fit_caught=bool(any_fit_violations),
        capacity_violations=capacity_violations,
        any_fit_violations=any_fit_violations,
        fastpath_caught=bool(fastpath_violations),
        fastpath_violations=fastpath_violations,
        null_adversary_caught=not null_outcome.passed,
        null_adversary_violations=null_violations,
        repacking_caught=bool(repacking_violations),
        repacking_violations=repacking_violations,
    )
