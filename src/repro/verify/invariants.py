"""The invariant auditor: executable statements of the paper's guarantees.

Every check takes a finished run (or an instance) and returns a list of
:class:`Violation` records — empty means the invariant held.  The
catalogue (see docs/verification.md for the theorem citations):

``capacity``
    Per-dimension bin load never exceeds capacity at any event instant
    (feasibility, Section 2.1).  Checked by an independent replay of the
    assignment — not by trusting :class:`~repro.core.bins.Bin` state.
``half-open``
    Active intervals are ``[a, e)``: an item departing at ``t`` frees
    its capacity *before* an arrival at ``t`` is placed, and a bin's
    usage period is exactly the hull of its members' intervals.
``no-reuse``
    A bin that empties closes and never receives another item: the union
    of a bin's member intervals has a single connected component.
``any-fit``
    A new bin is opened only when no currently open candidate bin fits
    the arriving item (the defining Any Fit property, Algorithm 1) — for
    policies whose candidate list is *all* open bins.
``theorem-bound``
    ``cost(ALG) ≤ UB(μ, d) · LB(R)`` for the theorem-bound policies,
    where ``UB`` is the Table 1 upper bound (Thm. 2 for Move To Front,
    Thm. 3 for First Fit, Thm. 4 for Next Fit) and ``LB`` the Lemma 1
    lower bound on OPT.  The proofs bound the algorithm's cost against
    the Lemma 1 quantities themselves, so this per-instance form is
    sound (see :mod:`repro.analysis.proofs`).
``cost-dominance``
    ``cost(ALG) ≥ LB(R) ≥ span(R)`` — no algorithm beats the optimum.
``opt-ordering``
    ``span(R) ≤ LB(R) ≤ UB_offline(R)`` and Lemma 1(i) dominates (ii)
    and (iii), where ``UB_offline`` is the certified FFD bracket from
    :func:`repro.optimum.opt_cost.optimum_cost_bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.theory import upper_bound
from ..core.events import EventKind, event_stream
from ..core.instance import Instance
from ..core.packing import Packing
from ..core.vectors import EPS
from ..optimum.lower_bounds import (
    height_lower_bound,
    opt_lower_bound,
    span_lower_bound,
    utilization_lower_bound,
)
from ..optimum.opt_cost import optimum_cost_bounds

__all__ = [
    "Violation",
    "FULL_LIST_POLICIES",
    "THEOREM_BOUND_POLICIES",
    "check_capacity",
    "check_half_open",
    "check_any_fit",
    "check_theorem_bound",
    "check_opt_ordering",
    "audit_run",
    "audit_instance",
]

#: Relative tolerance for cost/bound comparisons (floats summed over
#: thousands of events).
_TOL = 1e-9

#: Policies whose candidate list is all open bins, making the Any Fit
#: property checkable from the final packing alone.  Next Fit prunes its
#: list (|L| = 1) and the harmonic/clairvoyant extensions partition it.
FULL_LIST_POLICIES = frozenset(
    {"move_to_front", "first_fit", "best_fit", "worst_fit", "last_fit", "random_fit"}
)

#: Table 1 rows with a finite upper bound, i.e. policies for which the
#: ``theorem-bound`` invariant applies.
THEOREM_BOUND_POLICIES = frozenset({"move_to_front", "first_fit", "next_fit"})


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, and a human-readable diagnosis."""

    check: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.message}"


def _slack(capacity: np.ndarray) -> np.ndarray:
    return capacity + EPS * np.maximum(capacity, 1.0)


# ----------------------------------------------------------------------
# per-run checks
# ----------------------------------------------------------------------

def check_capacity(packing: Packing) -> List[Violation]:
    """Feasibility: replay the assignment; per-dimension load ≤ capacity.

    Loads are recomputed from the instance and the assignment alone at
    every arrival instant (between arrivals a bin's load only falls), so
    the check is independent of all engine bookkeeping.
    """
    inst = packing.instance
    out: List[Violation] = []
    missing = [it.uid for it in inst.items if it.uid not in packing.assignment]
    if missing:
        return [Violation("capacity", f"items without a bin assignment: {missing}")]
    slack = _slack(inst.capacity)
    by_bin: Dict[int, List] = {}
    for it in inst.items:
        by_bin.setdefault(packing.assignment[it.uid], []).append(it)
    for index, items in sorted(by_bin.items()):
        starts = np.array([it.arrival for it in items])
        ends = np.array([it.departure for it in items])
        sizes = np.stack([it.size for it in items])
        for t in sorted({it.arrival for it in items}):
            load = sizes[(starts <= t) & (t < ends)].sum(axis=0)
            if np.any(load > slack):
                out.append(Violation(
                    "capacity",
                    f"bin {index} over capacity at t={t}: load {load.tolist()} "
                    f"> capacity {inst.capacity.tolist()}",
                ))
    return out


def check_half_open(packing: Packing) -> List[Violation]:
    """Half-open semantics and the no-reuse bin lifecycle.

    Each bin's recorded usage period must be the hull of its member
    intervals, and the union of those intervals must be contiguous (a
    bin that went empty would have closed for good — finding a gap means
    the engine reused a closed bin).
    """
    inst = packing.instance
    by_uid = {it.uid: it for it in inst.items}
    out: List[Violation] = []
    for rec in packing.bins:
        items = [by_uid[uid] for uid in rec.item_uids]
        hull = (min(it.arrival for it in items), max(it.departure for it in items))
        if abs(hull[0] - rec.opened_at) > _TOL or abs(hull[1] - rec.closed_at) > _TOL:
            out.append(Violation(
                "half-open",
                f"bin {rec.index} usage period [{rec.opened_at}, {rec.closed_at}) "
                f"is not the member hull [{hull[0]}, {hull[1]})",
            ))
        # contiguity: sweep member intervals in arrival order; a strict
        # gap before the last departure means the bin emptied and was
        # reused after closing
        frontier = None
        for it in sorted(items, key=lambda i: i.arrival):
            if frontier is not None and it.arrival > frontier + _TOL:
                out.append(Violation(
                    "no-reuse",
                    f"bin {rec.index} was empty on [{frontier}, {it.arrival}) "
                    f"but received item {it.uid} afterwards",
                ))
                break
            frontier = it.departure if frontier is None else max(frontier, it.departure)
    return out


def check_any_fit(packing: Packing) -> List[Violation]:
    """The defining Any Fit property, by chronological replay.

    Valid only for :data:`FULL_LIST_POLICIES`; the caller gates on the
    policy name.  Whenever an item is the first of its bin, no open bin
    may have fit it (with the engine's own fit tolerance, under the
    half-open event order: departures at ``t`` free capacity first).
    """
    inst = packing.instance
    slack = _slack(inst.capacity)
    loads: Dict[int, np.ndarray] = {}
    # residents per bin in pack order: recomputing the load from them on
    # departure reproduces the engine's float summation exactly, so a
    # boundary-exact fit cannot flip verdict on accumulated drift
    residents: Dict[int, Dict[int, np.ndarray]] = {}
    out: List[Violation] = []
    for ev in event_stream(inst):
        index = packing.assignment[ev.item.uid]
        if ev.kind is EventKind.DEPARTURE:
            del residents[index][ev.item.uid]
            if residents[index]:
                load = np.zeros(inst.d)
                for size in residents[index].values():
                    load += size
                loads[index] = load
            else:
                del residents[index], loads[index]
            continue
        if index not in loads:
            for other, load in loads.items():
                if np.all(load + ev.item.size <= slack):
                    out.append(Violation(
                        "any-fit",
                        f"item {ev.item.uid} opened bin {index} at t={ev.time} "
                        f"although open bin {other} (load {load.tolist()}) fit it",
                    ))
            loads[index] = np.zeros(inst.d)
            residents[index] = {}
        loads[index] = loads[index] + ev.item.size
        residents[index][ev.item.uid] = ev.item.size
    return out


def check_theorem_bound(packing: Packing, policy: str) -> List[Violation]:
    """Upper bounds of Theorems 2/3/4 plus universal cost dominance."""
    inst = packing.instance
    lb = opt_lower_bound(inst)
    cost = packing.cost
    out: List[Violation] = []
    tol = _TOL * max(1.0, cost)
    if cost + tol < lb:
        out.append(Violation(
            "cost-dominance",
            f"{policy} cost {cost:.6g} is below the OPT lower bound {lb:.6g}",
        ))
    if cost + tol < span_lower_bound(inst):
        out.append(Violation(
            "cost-dominance",
            f"{policy} cost {cost:.6g} is below span {inst.span:.6g}",
        ))
    if policy in THEOREM_BOUND_POLICIES:
        bound = upper_bound(policy, max(inst.mu, 1.0), inst.d) * lb
        if cost > bound + _TOL * max(1.0, bound):
            out.append(Violation(
                "theorem-bound",
                f"{policy} cost {cost:.6g} exceeds its theorem bound "
                f"{bound:.6g} (UB(mu={inst.mu:g}, d={inst.d}) x LB={lb:.6g})",
            ))
    return out


# ----------------------------------------------------------------------
# per-instance checks
# ----------------------------------------------------------------------

def check_opt_ordering(instance: Instance) -> List[Violation]:
    """Lemma 1 dominance and the offline bracket ordering.

    ``span ≤ LB``, ``util ≤ LB`` (bound (i) dominates (ii) and (iii)),
    and ``LB ≤ UB_offline`` where the upper end of the certified bracket
    comes from a feasible per-segment FFD repacking.
    """
    height = height_lower_bound(instance)
    util = utilization_lower_bound(instance)
    span = span_lower_bound(instance)
    lb = opt_lower_bound(instance)
    _, offline_ub = optimum_cost_bounds(instance)
    out: List[Violation] = []

    def expect(name: str, lhs: float, rhs: float) -> None:
        if lhs > rhs + _TOL * max(1.0, abs(rhs)):
            out.append(Violation(
                "opt-ordering", f"{name}: {lhs:.6g} > {rhs:.6g}"
            ))

    expect("span <= height (Lemma 1(i) dominates (iii))", span, height)
    expect("util <= height (Lemma 1(i) dominates (ii))", util, height)
    expect("span <= opt_lower", span, lb)
    expect("opt_lower <= offline FFD upper bound", lb, offline_ub)
    return out


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------

def audit_run(packing: Packing, policy: Optional[str] = None) -> List[Violation]:
    """All per-run invariants applicable to ``packing``.

    ``policy`` defaults to the packing's recorded algorithm name; the
    Any Fit and theorem-bound checks are gated on it.
    """
    name = policy if policy is not None else packing.algorithm
    out = check_capacity(packing)
    out += check_half_open(packing)
    if name in FULL_LIST_POLICIES:
        out += check_any_fit(packing)
    out += check_theorem_bound(packing, name)
    return out


def audit_instance(instance: Instance) -> List[Violation]:
    """All per-instance (algorithm-free) invariants."""
    return check_opt_ordering(instance)
