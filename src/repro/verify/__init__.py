"""repro.verify — differential & property-based verification subsystem.

Turns the paper's theorems into executable checks: a brute-force
reference simulator every registry policy is replayed against
(:mod:`~repro.verify.reference`), an invariant auditor asserting
feasibility, half-open semantics, the Any Fit property, and the
Theorem 2/3/4 upper bounds per run (:mod:`~repro.verify.invariants`),
first-principles cost and sweep-path differentials
(:mod:`~repro.verify.oracles`), a deterministic fuzz corpus
(:mod:`~repro.verify.generators`), mutation smoke-tests proving the
auditor has teeth (:mod:`~repro.verify.mutation`), and the profile-driven
harness behind ``repro verify --profile quick|deep``
(:mod:`~repro.verify.harness`).

Hypothesis strategies for property-based tests live in
:mod:`repro.verify.strategies`; import that module explicitly (it
requires the ``test`` extra, everything else here does not).
"""

from .generators import CORPUS_RECIPES, CorpusItem, corpus, corpus_list
from .harness import PROFILES, VerifyProfile, VerifyReport, run_verify
from .invariants import (
    FULL_LIST_POLICIES,
    THEOREM_BOUND_POLICIES,
    Violation,
    audit_instance,
    audit_run,
    check_any_fit,
    check_capacity,
    check_half_open,
    check_opt_ordering,
    check_theorem_bound,
)
from .mutation import (
    BudgetIgnoringRepacker,
    MutationReport,
    StaleResidualFastEngine,
    broken_fit,
    mutation_smoke_test,
)
from .oracles import (
    compare_with_batch,
    compare_with_fastpath,
    compare_with_reference,
    compare_with_repacking,
    compare_with_streaming,
    cost_check,
    differential_check,
    eq1_cost,
    instrumented_equality_check,
    repacking_budget_check,
    resume_equality_check,
    sweep_equality_check,
)
from .reference import REFERENCE_POLICIES, ReferenceResult, ReferenceSimulator

__all__ = [
    "CORPUS_RECIPES",
    "CorpusItem",
    "corpus",
    "corpus_list",
    "PROFILES",
    "VerifyProfile",
    "VerifyReport",
    "run_verify",
    "FULL_LIST_POLICIES",
    "THEOREM_BOUND_POLICIES",
    "Violation",
    "audit_instance",
    "audit_run",
    "check_any_fit",
    "check_capacity",
    "check_half_open",
    "check_opt_ordering",
    "check_theorem_bound",
    "BudgetIgnoringRepacker",
    "MutationReport",
    "StaleResidualFastEngine",
    "broken_fit",
    "mutation_smoke_test",
    "compare_with_batch",
    "compare_with_fastpath",
    "compare_with_reference",
    "compare_with_repacking",
    "compare_with_streaming",
    "cost_check",
    "differential_check",
    "eq1_cost",
    "instrumented_equality_check",
    "repacking_budget_check",
    "resume_equality_check",
    "sweep_equality_check",
    "REFERENCE_POLICIES",
    "ReferenceResult",
    "ReferenceSimulator",
]
