"""Independent brute-force reference simulator (the differential oracle).

The production engine (:mod:`repro.simulation.engine`) is optimised: it
shares a vectorised fit check across all Any Fit policies, recycles
algorithm objects, and (when instrumented) runs a twin event loop.  Every
one of those optimisations is a place a refactor can silently change
behaviour.  This module re-implements the paper's Algorithm 1 *from the
text alone* — plain Python loops, no :class:`~repro.core.bins.Bin`, no
:class:`~repro.algorithms.base.AnyFitAlgorithm`, no shared dispatch code —
so that :func:`repro.verify.oracles.differential_check` can replay any
instance through both implementations and require bit-identical
assignments.

The seven Section 7 policies are each restated here in their simplest
possible form (a dozen lines per policy).  Where the production code has
a deliberate behavioural subtlety, the reference reproduces it from the
*specification*, not from the code:

* event order is ``(time, departures-before-arrivals, seq)`` with arrival
  ``seq`` = position in the instance and departure ``seq`` = uid — the
  half-open ``[a, e)`` semantics of Section 2.1;
* a bin closes the moment its last resident departs and is never reused;
* the fit tolerance is the library-wide :data:`~repro.core.vectors.EPS`
  policy (shared constant; everything else is independent);
* loads are accumulated exactly like the engine does (add on pack,
  recompute from residents on departure) so Best/Worst Fit tie-breaking
  on float-equal load measures cannot diverge spuriously.

A custom ``fit`` predicate can be injected — that is the hook the
mutation smoke-test (:mod:`repro.verify.mutation`) uses to prove the
invariant auditor actually catches broken packings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import EPS

__all__ = ["ReferenceResult", "ReferenceSimulator", "reference_fit", "REFERENCE_POLICIES"]

FitPredicate = Callable[[np.ndarray, np.ndarray, np.ndarray], bool]


def reference_fit(load: np.ndarray, size: np.ndarray, capacity: np.ndarray) -> bool:
    """Scalar per-dimension fit check (the spec of ``fits``/``fits_batch``).

    Written as an explicit loop on purpose: it shares no code with the
    vectorised hot path it oracles.
    """
    for j in range(len(capacity)):
        if load[j] + size[j] > capacity[j] + EPS * max(capacity[j], 1.0):
            return False
    return True


class _RefBin:
    """Minimal open-bin state for the reference replay."""

    __slots__ = ("index", "load", "residents", "members")

    def __init__(self, index: int, d: int) -> None:
        self.index = index
        self.load = np.zeros(d)
        self.residents: Dict[int, Item] = {}  # uid -> item, in pack order
        self.members: List[int] = []  # every uid ever packed here

    def pack(self, item: Item) -> None:
        self.load = self.load + item.size
        self.residents[item.uid] = item
        self.members.append(item.uid)

    def remove(self, item: Item) -> bool:
        del self.residents[item.uid]
        # recompute from residents (same order as the engine's Bin) so
        # float drift cannot make load comparisons diverge from it
        load = np.zeros(len(self.load))
        for it in self.residents.values():
            load += it.size
        self.load = load
        return not self.residents


def _max_load(bin_: _RefBin) -> float:
    return float(max(bin_.load)) if len(bin_.load) else 0.0


#: Registry names this reference simulator can replay, mapped to a short
#: statement of the selection rule it implements.
REFERENCE_POLICIES: Dict[str, str] = {
    "move_to_front": "most recently used fitting bin; receiver moves to list front",
    "first_fit": "earliest-opened fitting bin",
    "next_fit": "the single current bin; release it when the item does not fit",
    "best_fit": "fitting bin with highest max-load (ties: earliest opened)",
    "worst_fit": "fitting bin with lowest max-load (ties: earliest opened)",
    "last_fit": "most recently opened fitting bin",
    "random_fit": "uniformly random fitting bin (seeded numpy Generator)",
}


@dataclass(frozen=True)
class ReferenceResult:
    """Outcome of one reference replay.

    ``assignment`` maps item uid to bin index (bins numbered in opening
    order, like the engine); ``num_bins`` is the total opened.
    """

    assignment: Dict[int, int]
    num_bins: int
    policy: str


class ReferenceSimulator:
    """Replay an instance under one policy, naively.

    Parameters
    ----------
    policy:
        One of :data:`REFERENCE_POLICIES`.
    seed:
        Random stream seed (only consulted by ``random_fit``; must match
        the production algorithm's seed for differential equality).
    fit:
        Fit predicate ``(load, size, capacity) -> bool``; defaults to
        :func:`reference_fit`.  Inject a broken one to produce known-bad
        packings for mutation testing.
    """

    def __init__(self, policy: str, seed: int = 0, fit: Optional[FitPredicate] = None) -> None:
        if policy not in REFERENCE_POLICIES:
            raise ConfigurationError(
                f"reference simulator does not model {policy!r}; "
                f"supported: {', '.join(sorted(REFERENCE_POLICIES))}"
            )
        self.policy = policy
        self.seed = int(seed)
        self.fit = fit if fit is not None else reference_fit

    # ------------------------------------------------------------------
    def run(self, instance: Instance) -> ReferenceResult:
        """Replay ``instance`` and return the resulting assignment."""
        cap = instance.capacity
        d = instance.d
        fit = self.fit
        policy = self.policy
        rng = np.random.default_rng(self.seed) if policy == "random_fit" else None

        bins: List[_RefBin] = []  # every bin ever opened, by index
        open_order: List[_RefBin] = []  # open bins, in opening order
        recency: List[_RefBin] = []  # open bins, most recently used first (MF)
        current: Optional[_RefBin] = None  # NF's single candidate
        bin_of: Dict[int, _RefBin] = {}
        assignment: Dict[int, int] = {}

        # Independent event ordering: (time, departures first, seq) where
        # arrival seq is the instance position and departure seq the uid.
        events: List[Tuple[float, int, int, Item]] = []
        for pos, item in enumerate(instance.items):
            events.append((item.arrival, 1, pos, item))
            events.append((item.departure, 0, item.uid, item))
        events.sort(key=lambda ev: (ev[0], ev[1], ev[2]))

        for _time, kind, _seq, item in events:
            if kind == 0:  # departure
                bin_ = bin_of.pop(item.uid)
                if bin_.remove(item):  # closed: forget it everywhere
                    open_order.remove(bin_)
                    if policy == "move_to_front":
                        recency.remove(bin_)
                    if current is bin_:
                        current = None
                continue

            # arrival: build the policy's candidate list and select
            if policy == "next_fit":
                candidates = [current] if current is not None and fit(
                    current.load, item.size, cap
                ) else []
            elif policy == "move_to_front":
                candidates = [b for b in recency if fit(b.load, item.size, cap)]
            else:
                candidates = [b for b in open_order if fit(b.load, item.size, cap)]

            if not candidates:
                chosen = _RefBin(len(bins), d)
                bins.append(chosen)
                open_order.append(chosen)
                if policy == "move_to_front":
                    recency.insert(0, chosen)
                if policy == "next_fit":
                    current = chosen  # the old current (if any) is released
            elif policy in ("first_fit", "next_fit", "move_to_front"):
                chosen = candidates[0]
            elif policy == "last_fit":
                chosen = candidates[-1]
            elif policy == "best_fit":
                chosen = candidates[0]
                for b in candidates[1:]:
                    if _max_load(b) > _max_load(chosen):
                        chosen = b
            elif policy == "worst_fit":
                chosen = candidates[0]
                for b in candidates[1:]:
                    if _max_load(b) < _max_load(chosen):
                        chosen = b
            else:  # random_fit
                chosen = candidates[int(rng.integers(len(candidates)))]

            chosen.pack(item)
            bin_of[item.uid] = chosen
            assignment[item.uid] = chosen.index
            if policy == "move_to_front" and recency[0] is not chosen:
                recency.remove(chosen)
                recency.insert(0, chosen)

        return ReferenceResult(assignment=assignment, num_bins=len(bins), policy=policy)
