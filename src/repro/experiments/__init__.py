"""Experiments: one module per paper table/figure (see DESIGN.md §3)."""

from .config import FULL, QUICK, SMOKE, ExperimentConfig
from .driver import ARTIFACTS, Artifact, run_experiments
from .figure4 import Figure4Result, figure4_csv, render_figure4, run_figure4
from .figures123 import figures123_artifact, run_figure1, run_figure2, run_figure3
from .table1 import (
    Table1Row,
    render_table1,
    render_table1_bounds,
    run_table1,
)
from .table2 import render_table2, table2_artifact

__all__ = [
    "ARTIFACTS",
    "Artifact",
    "ExperimentConfig",
    "FULL",
    "Figure4Result",
    "figure4_csv",
    "figures123_artifact",
    "QUICK",
    "SMOKE",
    "Table1Row",
    "render_figure4",
    "render_table1",
    "render_table1_bounds",
    "render_table2",
    "run_experiments",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table1",
    "table2_artifact",
]
