"""Experiments: one module per paper table/figure (see DESIGN.md §3)."""

from .config import FULL, QUICK, SMOKE, ExperimentConfig
from .figure4 import Figure4Result, figure4_csv, render_figure4, run_figure4
from .figures123 import run_figure1, run_figure2, run_figure3
from .table1 import (
    Table1Row,
    render_table1,
    render_table1_bounds,
    run_table1,
)
from .table2 import render_table2

__all__ = [
    "ExperimentConfig",
    "FULL",
    "Figure4Result",
    "figure4_csv",
    "QUICK",
    "SMOKE",
    "Table1Row",
    "render_figure4",
    "render_table1",
    "render_table1_bounds",
    "render_table2",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_table1",
]
