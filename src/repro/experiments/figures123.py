"""Figures 1-3: the paper's illustrative diagrams, regenerated from runs.

* **Figure 1** — Move To Front usage periods decomposed into leading
  (thick) and non-leading (thin) intervals, with the span indicated.
  We run an instrumented MF simulation and render the decomposition,
  checking the structural invariant (leading intervals partition the
  span) that Claim 1 rests on.
* **Figure 2** — First Fit usage periods decomposed into ``P_i``/``Q_i``
  per Section 4.
* **Figure 3** — bin-load snapshots of an Any Fit execution on the
  Theorem 5 instance at its three phases: during ``[0, 1)`` (a), just
  after ``R1`` arrives (b), and during ``[1, μ+1)`` (c).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.first_fit import FirstFit
from ..algorithms.move_to_front import MoveToFront
from ..algorithms.registry import make_algorithm
from ..analysis.report import format_interval_diagram, format_table
from ..core.instance import Instance
from ..core.intervals import Interval, intervals_partition
from ..simulation.engine import Engine
from ..simulation.instrumentation import LeaderTracker, LoadSnapshotter, UsagePeriodTracker
from ..workloads.adversarial import theorem5_instance
from ..workloads.uniform import UniformWorkload

__all__ = ["run_figure1", "run_figure2", "run_figure3", "figures123_artifact"]


def figures123_artifact(config: object = None, **_: object) -> str:
    """Adapter for the :mod:`repro.experiments.driver` registry.

    Regenerates all three diagrams in one text block.  Accepts (and
    ignores) the driver's config and sweep knobs — these figures are
    deterministic single runs with nothing to scale or checkpoint.
    """
    return "\n\n".join([run_figure1(), run_figure2(), run_figure3()])


def _default_instance(seed: int = 7) -> Instance:
    """A small, readable instance for the interval diagrams."""
    gen = UniformWorkload(d=2, n=12, mu=6, T=20, B=10)
    return gen.sample_seeded(seed)


def run_figure1(instance: Optional[Instance] = None) -> str:
    """Regenerate Figure 1 (MF leading/non-leading decomposition).

    Returns the ASCII diagram plus a line confirming the partition
    invariant of Claim 1.
    """
    inst = instance or _default_instance()
    tracker = LeaderTracker()
    Engine(inst, MoveToFront(), observers=[tracker]).run()
    leading = tracker.leading_intervals()
    non_leading = tracker.non_leading_intervals()
    horizon = inst.horizon.end

    rows: Dict[str, List[Tuple[float, float, str]]] = {}
    for index in sorted(set(leading) | set(non_leading)):
        entries: List[Tuple[float, float, str]] = []
        for iv in leading.get(index, []):
            entries.append((iv.start, iv.end, "leading"))
        for iv in non_leading.get(index, []):
            entries.append((iv.start, iv.end, "non-leading"))
        rows[f"bin {index}"] = entries

    all_leading = [iv for ivs in leading.values() for iv in ivs]
    partition_ok = intervals_partition(
        all_leading, Interval(inst.horizon.start, inst.horizon.start + inst.span)
    ) if inst.span == inst.horizon.length else None

    diagram = format_interval_diagram(rows, horizon, markers={"leading": "=", "non-leading": "-"})
    lines = [
        "Figure 1: Move To Front usage periods (leading '=', non-leading '-')",
        diagram,
        f"span(R) = {inst.span:g}",
    ]
    if partition_ok is not None:
        lines.append(
            "Claim 1 check - leading intervals partition the span: "
            + ("OK" if partition_ok else "VIOLATED")
        )
    return "\n".join(lines)


def run_figure2(instance: Optional[Instance] = None) -> str:
    """Regenerate Figure 2 (First Fit ``P_i``/``Q_i`` decomposition)."""
    inst = instance or _default_instance()
    tracker = UsagePeriodTracker()
    Engine(inst, FirstFit(), observers=[tracker]).run()
    horizon = inst.horizon.end

    rows: Dict[str, List[Tuple[float, float, str]]] = {}
    q_total = 0.0
    for index, (p, q) in enumerate(tracker.decomposition()):
        entries: List[Tuple[float, float, str]] = []
        if not p.empty:
            entries.append((p.start, p.end, "P_i"))
        if not q.empty:
            entries.append((q.start, q.end, "Q_i"))
            q_total += q.length
        rows[f"bin {index}"] = entries

    diagram = format_interval_diagram(rows, horizon, markers={"P_i": "-", "Q_i": "="})
    return "\n".join(
        [
            "Figure 2: First Fit usage periods (P_i '-', Q_i '=')",
            diagram,
            f"span(R) = {inst.span:g}; Claim 4 check - sum of Q_i = "
            f"{q_total:g} (should equal span when the activity is one component)",
        ]
    )


def run_figure3(d: int = 2, k: int = 3, mu: float = 4.0, algorithm: str = "first_fit") -> str:
    """Regenerate Figure 3 (Any Fit execution on the Theorem 5 instance).

    Renders per-bin load vectors at the three phases: (a) in ``[0, 1)``
    after all of ``R0`` is packed, (b) just after ``R1`` arrives, and
    (c) in ``[1, μ+1)`` after ``R0`` departs.
    """
    adv = theorem5_instance(d=d, k=k, mu=mu)
    inst = adv.instance
    r1_arrival = 1.0 - 1e-3
    t_a = 0.5
    t_b = (r1_arrival + 1.0) / 2.0  # between R1 arrival and R0 departure
    t_c = 1.0 + mu / 2.0
    snap = LoadSnapshotter([t_a, t_b, t_c])
    Engine(inst, make_algorithm(algorithm), observers=[snap]).run()

    blocks: List[str] = [
        f"Figure 3: {algorithm} on the Theorem 5 instance "
        f"(d={d}, k={k}, mu={mu:g}); expected: dk = {d*k} bins stay "
        f"active through [1, mu+1)"
    ]
    for label, t in (("(a) t in [0,1)", t_a), ("(b) R1 just arrived", t_b), ("(c) t in [1, mu+1)", t_c)):
        loads = snap.snapshots[t]
        headers = ["bin"] + [f"dim {j}" for j in range(d)]
        rows = [[i] + [float(v) for v in loads[i]] for i in sorted(loads)]
        blocks.append(format_table(headers, rows, title=f"{label}  (t = {t:g}, "
                      f"{len(loads)} open bins)"))
    return "\n\n".join(blocks)
