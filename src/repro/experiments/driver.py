"""One fault-tolerant driver for all paper artifacts: ``repro experiments``.

The :data:`ARTIFACTS` registry maps artifact names to adapters with one
shared signature, so the CLI (and tests) can run any subset of the
paper's tables and figures through a single code path with uniform
fault-tolerance semantics:

* **Per-artifact resume** — with an ``out_dir`` and ``resume=True``, an
  artifact whose rendered output file already exists is skipped
  entirely.  Cheap artifacts just re-run; this matters for a multi-hour
  ``figure4 --scale full`` sandwiched between quick ones.
* **Intra-artifact resume** — checkpointable artifacts (currently
  ``figure4``) additionally thread ``checkpoint_dir``/``resume`` down
  to :func:`repro.orchestration.resumable_sweep`, each under its own
  ``<checkpoint_dir>/<artifact>`` subdirectory, so even the interrupted
  artifact loses at most one flush interval.
* **Per-artifact retry** — every artifact runs under
  :func:`repro.orchestration.faults.call_with_retry`, so a transient
  failure (full disk, OOM-killed child) retries with backoff instead of
  abandoning the artifacts queued behind it.

Outputs are written atomically (temp file + rename), so a partially
rendered artifact can never be mistaken for a completed one by a later
``resume=True`` pass.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..observability.stats import StatsCollector
from ..orchestration.checkpoint import _atomic_write
from ..orchestration.faults import RetryPolicy, call_with_retry
from .config import ExperimentConfig, QUICK
from .figure4 import render_figure4, run_figure4
from .figures123 import figures123_artifact
from .table1 import render_table1, render_table1_bounds, run_table1
from .table2 import table2_artifact

__all__ = ["Artifact", "ARTIFACTS", "run_experiments"]


@dataclass(frozen=True)
class Artifact:
    """One registry entry: a paper artifact the driver can regenerate.

    ``runner`` takes ``(config, **knobs)`` and returns the rendered
    text; ``checkpointable`` marks artifacts that honour the
    ``checkpoint_dir``/``resume``/``retries``/``unit_timeout`` knobs
    internally (the others accept and ignore them).
    """

    name: str
    description: str
    runner: Callable[..., str]
    checkpointable: bool = False


def _table1_artifact(config: ExperimentConfig = QUICK, **_: object) -> str:
    # modest k range: the driver's default scale is "quick"
    rows = run_table1(ks=(2, 4, 8))
    return render_table1_bounds() + "\n\n" + render_table1(rows)


def _figure4_artifact(
    config: ExperimentConfig = QUICK,
    processes: int = 0,
    engine: str = "classic",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    **_: object,
) -> str:
    result = run_figure4(
        config=config, processes=processes, engine=engine,
        checkpoint_dir=checkpoint_dir, resume=resume,
        retries=retries, unit_timeout=unit_timeout,
    )
    return render_figure4(result)


#: Every artifact ``repro experiments`` can regenerate, in run order.
ARTIFACTS: Dict[str, Artifact] = {
    "table1": Artifact(
        name="table1",
        description="measured CR lower bounds on the adversarial families",
        runner=_table1_artifact,
    ),
    "table2": Artifact(
        name="table2",
        description="experimental parameter table",
        runner=table2_artifact,
    ),
    "figures123": Artifact(
        name="figures123",
        description="Figures 1-3 diagrams regenerated from instrumented runs",
        runner=figures123_artifact,
    ),
    "figure4": Artifact(
        name="figure4",
        description="average-case performance sweep (checkpointable)",
        runner=_figure4_artifact,
        checkpointable=True,
    ),
}


def run_experiments(
    names: Optional[Sequence[str]] = None,
    config: ExperimentConfig = QUICK,
    processes: int = 0,
    engine: str = "classic",
    out_dir: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
    collector: Optional[StatsCollector] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, str]:
    """Run the named artifacts (default: all, in registry order).

    Returns ``{artifact_name: rendered_text}``.  Skipped artifacts
    (``resume=True`` and their ``<out_dir>/<name>.txt`` already exists)
    map to the existing file's contents, so the return value is complete
    either way.  Unknown names raise ``KeyError`` before anything runs.
    """
    selected: List[Artifact] = []
    for name in names if names else list(ARTIFACTS):
        if name not in ARTIFACTS:
            raise KeyError(
                f"unknown artifact {name!r}; known: {', '.join(ARTIFACTS)}"
            )
        selected.append(ARTIFACTS[name])

    say = progress if progress is not None else (lambda _msg: None)
    policy = RetryPolicy(retries=int(retries))
    out: Dict[str, str] = {}
    for artifact in selected:
        path = (
            os.path.join(out_dir, f"{artifact.name}.txt")
            if out_dir is not None
            else None
        )
        if resume and path is not None and os.path.exists(path):
            say(f"[{artifact.name}] already rendered; skipping (resume)")
            with open(path, "r", encoding="utf-8") as fh:
                out[artifact.name] = fh.read()
            continue
        say(f"[{artifact.name}] running: {artifact.description}")
        sub_ckpt = (
            os.path.join(checkpoint_dir, artifact.name)
            if checkpoint_dir is not None and artifact.checkpointable
            else None
        )
        text = call_with_retry(
            lambda a=artifact, c=sub_ckpt: a.runner(
                config, processes=processes, engine=engine,
                checkpoint_dir=c, resume=resume,
                retries=retries, unit_timeout=unit_timeout,
            ),
            policy,
            label=artifact.name,
            collector=collector,
        )
        out[artifact.name] = text
        if path is not None:
            os.makedirs(out_dir, exist_ok=True)
            _atomic_write(path, text if text.endswith("\n") else text + "\n")
            say(f"[{artifact.name}] wrote {path}")
    return out
