"""Experimental configuration (Table 2) and shared experiment defaults.

The paper's Table 2 parameters drive the Figure 4 sweep:

===========  =================  =========================
Parameter    Description        Value
===========  =================  =========================
d            Num. dimensions    {1, 2, 5}
n            Sequence length    1000
mu           Max. item length   {1, 2, 5, 10, 100, 200}
T            Sequence span      1000
B            Bin size           100
m            Instances/cell     1000
===========  =================  =========================

``FULL`` reproduces the paper exactly; ``QUICK`` shrinks ``n`` and ``m``
for CI-speed runs with the same grid shape (the ranking conclusions are
already stable at the quick scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..core.errors import ConfigurationError

__all__ = ["ExperimentConfig", "FULL", "QUICK", "SMOKE", "TABLE2_ROWS"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of the Section 7 experimental study.

    ``d_values``/``mu_values`` form the panel grid of Figure 4; the rest
    are the per-instance generator parameters plus the number of random
    instances per cell (``m``) and the master seed.
    """

    d_values: Tuple[int, ...] = (1, 2, 5)
    mu_values: Tuple[int, ...] = (1, 2, 5, 10, 100, 200)
    n: int = 1000
    T: int = 1000
    B: int = 100
    m: int = 1000
    seed: int = 20230419  # the paper's arXiv date, for the record

    def __post_init__(self) -> None:
        if not self.d_values or not self.mu_values:
            raise ConfigurationError("d_values and mu_values must be non-empty")
        if any(d < 1 for d in self.d_values):
            raise ConfigurationError(f"all d must be >= 1, got {self.d_values}")
        if any(mu < 1 for mu in self.mu_values):
            raise ConfigurationError(f"all mu must be >= 1, got {self.mu_values}")
        if max(self.mu_values) >= self.T:
            raise ConfigurationError(
                f"T={self.T} must exceed the largest mu={max(self.mu_values)}"
            )
        if self.n < 1 or self.m < 1 or self.B < 1:
            raise ConfigurationError("n, m, B must all be >= 1")

    def scaled(self, n: int = None, m: int = None) -> "ExperimentConfig":
        """A copy with a different instance size / batch count."""
        return ExperimentConfig(
            d_values=self.d_values,
            mu_values=self.mu_values,
            n=n if n is not None else self.n,
            T=self.T,
            B=self.B,
            m=m if m is not None else self.m,
            seed=self.seed,
        )


#: The paper's exact Table 2 configuration.
FULL = ExperimentConfig()

#: Same grid, smaller batches: ~100x faster, same qualitative ranking.
QUICK = ExperimentConfig(n=200, m=30)

#: Minimal config for smoke tests and pytest-benchmark runs.
SMOKE = ExperimentConfig(d_values=(1, 2), mu_values=(2, 10), n=100, m=5)

#: Rows of Table 2 as (parameter, description, value) for rendering.
TABLE2_ROWS = (
    ("d", "Num. dimensions", "{1, 2, 5}"),
    ("n", "Sequence length", "n = 1000"),
    ("mu", "Max. item length", "{1, 2, 5, 10, 100, 200}"),
    ("T", "Sequence span", "T = 1000"),
    ("B", "Bin size", "B = 100"),
)
