"""Table 1: empirical verification of the competitive-ratio bounds.

For each lower-bound construction (Theorems 5, 6, 8) we run the targeted
algorithms on instances of growing family parameter ``k`` and report

* the measured cost,
* the construction's certified OPT upper bound,
* the measured ratio (certified lower bound on the true CR), and
* the theoretical target the family approaches.

We also report, for MF/FF/NF, the Table 1 *upper* bounds at the
instance's ``(μ, d)`` — measured ratios must stay below them (they do,
with room, since the denominator over-estimates nothing: it upper-bounds
OPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.registry import make_algorithm
from ..analysis.report import format_table
from ..analysis.theory import TABLE1, lower_bound, upper_bound
from ..simulation.runner import run
from ..workloads.adversarial import (
    AdversarialInstance,
    best_fit_trap,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)

__all__ = ["Table1Row", "run_table1", "render_table1", "render_table1_bounds"]


@dataclass(frozen=True)
class Table1Row:
    """One measured row of the Table 1 verification."""

    family: str
    algorithm: str
    k: int
    mu: float
    d: int
    measured_cost: float
    opt_upper: float
    measured_ratio: float
    target_ratio: float
    theory_upper: float  # inf when unbounded / not applicable

    @property
    def fraction_of_target(self) -> float:
        """``measured_ratio / target_ratio`` — approaches 1 as k grows."""
        return self.measured_ratio / self.target_ratio


def _measure(
    adv: AdversarialInstance, algorithm: str, family: str, k: int
) -> Table1Row:
    packing = run(make_algorithm(algorithm), adv.instance)
    inst = adv.instance
    theory_up = (
        upper_bound(algorithm, inst.mu, inst.d) if algorithm in TABLE1 else float("inf")
    )
    return Table1Row(
        family=family,
        algorithm=algorithm,
        k=k,
        mu=inst.mu,
        d=inst.d,
        measured_cost=packing.cost,
        opt_upper=adv.opt_upper,
        measured_ratio=packing.cost / adv.opt_upper,
        target_ratio=adv.target_ratio,
        theory_upper=theory_up,
    )


def run_table1(
    ks: Sequence[int] = (2, 4, 8, 16, 32),
    d_values: Sequence[int] = (1, 2, 3),
    mu: float = 5.0,
    anyfit_algorithms: Sequence[str] = (
        "move_to_front",
        "first_fit",
        "best_fit",
        "worst_fit",
        "last_fit",
    ),
) -> List[Table1Row]:
    """Measure all constructions across ``ks`` and ``d_values``.

    * Theorem 5 instances are run under every algorithm in
      ``anyfit_algorithms`` (the bound is family-wide).
    * Theorem 6 instances are run under Next Fit (``k`` rounded up to
      even).
    * Theorem 8 instances (1-D) are run under Move To Front and Next
      Fit.
    * The Best Fit trap family is run under Best Fit.
    """
    rows: List[Table1Row] = []
    for d in d_values:
        for k in ks:
            adv5 = theorem5_instance(d=d, k=k, mu=mu)
            for algo in anyfit_algorithms:
                rows.append(_measure(adv5, algo, "thm5_anyfit", k))
            k_even = k if k % 2 == 0 else k + 1
            adv6 = theorem6_instance(d=d, k=k_even, mu=mu)
            rows.append(_measure(adv6, "next_fit", "thm6_nextfit", k_even))
    for k in ks:
        adv8 = theorem8_instance(n=k, mu=mu)
        rows.append(_measure(adv8, "move_to_front", "thm8_mtf", k))
        rows.append(_measure(adv8, "next_fit", "thm8_mtf", k))
        trap = best_fit_trap(k=k)
        rows.append(_measure(trap, "best_fit", "bf_trap", k))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render the measured verification rows."""
    headers = [
        "family",
        "algorithm",
        "d",
        "k",
        "mu",
        "cost",
        "OPT<=",
        "ratio>=",
        "target",
        "frac",
    ]
    table = [
        [
            r.family,
            r.algorithm,
            r.d,
            r.k,
            r.mu,
            r.measured_cost,
            r.opt_upper,
            r.measured_ratio,
            r.target_ratio,
            r.fraction_of_target,
        ]
        for r in rows
    ]
    return format_table(headers, table, title="Table 1 verification: measured CR "
                        "lower bounds on adversarial families")


def render_table1_bounds(mu: float = 5.0, d_values: Sequence[int] = (1, 2, 5)) -> str:
    """Render the paper's Table 1 itself (the bound formulas evaluated)."""
    headers = ["algorithm", "d", "lower bound", "upper bound"]
    rows: List[List[object]] = []
    for name, entry in TABLE1.items():
        for d in d_values:
            lo = entry.lower(mu, d)
            up = entry.upper(mu, d)
            rows.append(
                [
                    name,
                    d,
                    "unbounded-family" if lo == float("inf") else f"{lo:.1f}",
                    "inf" if up == float("inf") else f"{up:.1f}",
                ]
            )
    return format_table(
        headers, rows, title=f"Table 1 bound formulas at mu = {mu:g}"
    )
