"""Figure 4: average-case performance of Any Fit algorithms.

For each ``(d, μ)`` cell of the Table 2 grid, generate ``m`` uniform
random instances, run the seven Section 7 algorithms on each, and record
the mean ± std of the performance ratio (cost / Lemma 1(i) lower bound).
The output mirrors the paper's 18-panel figure as one series per
algorithm per ``d`` panel, with ``μ`` on the x-axis.

Expected shape (paper's observations, which the tests assert at QUICK
scale): Move To Front best; First Fit ≈ Best Fit close behind with FF
lower variance; Next Fit degrades as μ grows; Worst Fit worst; Random
and Worst Fit have the highest variance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import PAPER_ALGORITHMS
from ..analysis.report import format_series_chart, format_table
from ..analysis.sweep import SweepCell, sweep_cell
from ..workloads.base import generate_batch
from ..workloads.uniform import UniformWorkload
from .config import ExperimentConfig, QUICK

__all__ = ["Figure4Result", "run_figure4", "render_figure4"]


@dataclass(frozen=True)
class Figure4Result:
    """All cells of the Figure 4 grid.

    ``cells[(d, mu)]`` is the :class:`~repro.analysis.sweep.SweepCell`
    with per-algorithm stats for that panel point.
    """

    config: ExperimentConfig
    algorithms: Tuple[str, ...]
    cells: Mapping[Tuple[int, int], SweepCell]

    def series(self, d: int) -> Dict[str, List[float]]:
        """Mean-ratio series (one per algorithm) over μ for panel ``d``."""
        out: Dict[str, List[float]] = {a: [] for a in self.algorithms}
        for mu in self.config.mu_values:
            cell = self.cells[(d, mu)]
            for a in self.algorithms:
                out[a].append(cell.stats[a].mean)
        return out

    def std_series(self, d: int) -> Dict[str, List[float]]:
        """Std-deviation series (error bars) over μ for panel ``d``."""
        out: Dict[str, List[float]] = {a: [] for a in self.algorithms}
        for mu in self.config.mu_values:
            cell = self.cells[(d, mu)]
            for a in self.algorithms:
                out[a].append(cell.stats[a].std)
        return out

    def winner(self, d: int, mu: int) -> str:
        """Best (lowest mean ratio) algorithm in one cell."""
        return self.cells[(d, mu)].ranking()[0]


def run_figure4(
    config: ExperimentConfig = QUICK,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    processes: int = 0,
    engine: str = "classic",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
) -> Figure4Result:
    """Run the full Figure 4 sweep under ``config``.

    Instances are generated per cell from seeds spawned off
    ``config.seed`` (stable across runs and across algorithm sets, so
    adding an algorithm does not change anyone else's numbers).

    ``processes > 0`` fans each cell's (algorithm, instance) units across
    a process pool — the intended mode for ``--scale full`` (the paper's
    m = 1000); results are identical to the serial path.

    ``checkpoint_dir`` makes the sweep crash-safe: each ``(d, μ)`` cell
    persists into its own ``d{d}-mu{mu}`` subdirectory, so an
    interrupted full-scale run restarted with ``resume=True`` skips
    every completed unit — finished cells load instantly, the
    interrupted cell loses at most one flush interval, and the final
    numbers are bit-identical to an uninterrupted run.  ``retries`` and
    ``unit_timeout`` are the per-unit fault-tolerance knobs of
    :func:`repro.orchestration.resumable_sweep`.
    """
    cells: Dict[Tuple[int, int], SweepCell] = {}
    master = np.random.SeedSequence(config.seed)
    # one child seed per (d, mu) cell, in grid order
    children = master.spawn(len(config.d_values) * len(config.mu_values))
    idx = 0
    for d in config.d_values:
        for mu in config.mu_values:
            gen = UniformWorkload(d=d, n=config.n, mu=mu, T=config.T, B=config.B)
            if engine == "batch":
                # ship compact specs: workers regenerate the instances
                # locally (LRU-cached), bit-identical to generate_batch
                from ..simulation.batch import spec_batch

                instances = spec_batch(gen, config.m, seed=children[idx])
            else:
                instances = generate_batch(gen, config.m, seed=children[idx])
            idx += 1
            cell_dir = (
                os.path.join(checkpoint_dir, f"d{d}-mu{mu}")
                if checkpoint_dir is not None
                else None
            )
            cells[(d, mu)] = sweep_cell(
                algorithms, instances, params={"d": d, "mu": mu},
                processes=processes, engine=engine,
                checkpoint_dir=cell_dir, resume=resume,
                retries=retries, unit_timeout=unit_timeout,
            )
    return Figure4Result(config=config, algorithms=tuple(algorithms), cells=cells)


def figure4_csv(result: Figure4Result) -> str:
    """CSV form of the Figure 4 measurements (one row per cell×algorithm).

    Columns: ``d, mu, algorithm, mean, std, count`` — everything a
    plotting tool needs to redraw the 18 panels.
    """
    lines = ["d,mu,algorithm,mean,std,count"]
    for d in result.config.d_values:
        for mu in result.config.mu_values:
            cell = result.cells[(d, mu)]
            for algo in result.algorithms:
                st = cell.stats[algo]
                lines.append(
                    f"{d},{mu},{algo},{st.mean:.6f},{st.std:.6f},{st.count}"
                )
    return "\n".join(lines) + "\n"


def render_figure4(result: Figure4Result) -> str:
    """Text rendering: one table + ASCII chart per ``d`` panel."""
    blocks: List[str] = []
    for d in result.config.d_values:
        series = result.series(d)
        stds = result.std_series(d)
        headers = ["mu"] + [f"{a} (mean±std)" for a in result.algorithms]
        rows = []
        for j, mu in enumerate(result.config.mu_values):
            row: List[object] = [mu]
            for a in result.algorithms:
                row.append(f"{series[a][j]:.3f}±{stds[a][j]:.3f}")
            rows.append(row)
        blocks.append(
            format_table(headers, rows, title=f"Figure 4 panel: d = {d} "
                         f"(performance ratio vs Lemma 1(i) lower bound)")
        )
        blocks.append(
            format_series_chart(
                list(result.config.mu_values), series, title=f"[chart] d = {d}"
            )
        )
    return "\n\n".join(blocks)
