"""Table 2: the experimental parameter summary."""

from __future__ import annotations

from ..analysis.report import format_table
from .config import TABLE2_ROWS, ExperimentConfig, FULL

__all__ = ["render_table2", "table2_artifact"]


def render_table2(config: ExperimentConfig = FULL) -> str:
    """Render Table 2 for the given configuration.

    For the :data:`~repro.experiments.config.FULL` configuration this is
    the paper's table verbatim; for scaled configurations the actual
    values are shown so experiment logs are self-describing.
    """
    if config is FULL:
        rows = [list(r) for r in TABLE2_ROWS]
    else:
        rows = [
            ["d", "Num. dimensions", "{" + ", ".join(map(str, config.d_values)) + "}"],
            ["n", "Sequence length", f"n = {config.n}"],
            ["mu", "Max. item length", "{" + ", ".join(map(str, config.mu_values)) + "}"],
            ["T", "Sequence span", f"T = {config.T}"],
            ["B", "Bin size", f"B = {config.B}"],
        ]
    rows.append(["m", "Instances per cell", f"m = {config.m}"])
    return format_table(
        ["Parameter", "Description", "Value"],
        rows,
        title="Table 2: experimental parameters",
    )


def table2_artifact(config: ExperimentConfig = FULL, **_: object) -> str:
    """Adapter for the :mod:`repro.experiments.driver` registry.

    Accepts (and ignores) the driver's sweep knobs — this artifact is a
    pure rendering with nothing to checkpoint.
    """
    return render_table2(config)
