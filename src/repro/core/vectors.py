"""Vector helpers for multi-dimensional resource demands.

The paper works with item sizes in :math:`\\mathbb{R}^d_{\\ge 0}` and uses
the :math:`L_\\infty` norm throughout (Proposition 1).  This module wraps
the handful of vector operations the rest of the library needs behind a
small, well-tested API so the packing code never reaches for raw NumPy
idioms inline.

All functions accept anything convertible to a 1-D ``float64`` array and
are safe for ``d = 1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from .errors import InvalidItemError

__all__ = [
    "EPS",
    "as_size_vector",
    "linf",
    "l1",
    "lp",
    "fits",
    "fits_batch",
    "check_proposition1",
    "dominates",
]

#: Relative tolerance used in all capacity comparisons.  The adversarial
#: constructions of Theorems 5/6/8 rely on exact threshold arithmetic
#: (loads like ``1 - eps'``); a small tolerance keeps float rounding from
#: flipping fit decisions the proofs depend on.
EPS: float = 1e-9

VectorLike = Union[Sequence[float], np.ndarray, float, int]


def as_size_vector(value: VectorLike, d: Union[int, None] = None) -> np.ndarray:
    """Coerce ``value`` to a non-negative 1-D ``float64`` size vector.

    Parameters
    ----------
    value:
        A scalar (interpreted as a 1-D size), a sequence, or an ndarray.
    d:
        If given, the required dimensionality; a mismatch raises
        :class:`InvalidItemError`.

    Returns
    -------
    numpy.ndarray
        A fresh (owned) ``float64`` array of shape ``(d,)``.

    Raises
    ------
    InvalidItemError
        If the vector has negative entries, is not 1-D, is empty, or does
        not match ``d``.
    """
    arr = np.atleast_1d(np.asarray(value, dtype=np.float64)).copy()
    if arr.ndim != 1:
        raise InvalidItemError(f"size vector must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise InvalidItemError("size vector must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise InvalidItemError(f"size vector must be finite, got {arr!r}")
    if np.any(arr < 0):
        raise InvalidItemError(f"size vector must be non-negative, got {arr!r}")
    if d is not None and arr.size != d:
        raise InvalidItemError(f"expected dimension {d}, got {arr.size}")
    return arr


def linf(v: np.ndarray) -> float:
    """Return :math:`\\|v\\|_\\infty = \\max_j v_j` for a non-negative vector."""
    return float(np.max(v))


def l1(v: np.ndarray) -> float:
    """Return :math:`\\|v\\|_1 = \\sum_j v_j` for a non-negative vector."""
    return float(np.sum(v))


def lp(v: np.ndarray, p: float) -> float:
    """Return the :math:`L_p` norm of a non-negative vector.

    ``p = inf`` is accepted and routed to :func:`linf`; ``p = 1`` takes
    the same summation path as :func:`l1` (bit-identical, since
    ``x ** 1.0 == x`` exactly in IEEE-754).  Values ``p < 1`` are
    rejected: they do not define a norm, matching the ``p >= 1``
    contract of :func:`repro.algorithms.best_fit.load_measure`.
    """
    if not p >= 1:  # also rejects NaN (and -inf, before the isinf route)
        raise ValueError(f"p must be >= 1 for an L_p norm, got {p}")
    if np.isinf(p):
        return linf(v)
    return float(np.sum(v**p) ** (1.0 / p))


def fits(load: np.ndarray, size: np.ndarray, capacity: np.ndarray) -> bool:
    """Return ``True`` if an item of ``size`` fits a bin at ``load``.

    The check is per-dimension: ``load + size <= capacity`` within a
    relative tolerance of :data:`EPS` (scaled by the capacity so the
    tolerance is meaningful for non-unit capacities, e.g. the B=100
    integer experiments of Section 7).
    """
    return bool(np.all(load + size <= capacity + EPS * np.maximum(capacity, 1.0)))


def fits_batch(loads: np.ndarray, size: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Vectorised fit check over many bins at once.

    Parameters
    ----------
    loads:
        Array of shape ``(m, d)`` — one row per open bin.
    size:
        The arriving item's size, shape ``(d,)``.
    capacity:
        The (common) bin capacity, shape ``(d,)``.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(m,)`` where entry ``i`` is ``True``
        iff the item fits bin ``i``.  This is the hot path of every Any
        Fit algorithm and deliberately avoids Python-level loops.
    """
    if loads.size == 0:
        return np.zeros(0, dtype=bool)
    slack = capacity + EPS * np.maximum(capacity, 1.0)
    return np.all(loads + size[np.newaxis, :] <= slack[np.newaxis, :], axis=1)


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Return ``True`` if ``a >= b`` in every dimension (within tolerance)."""
    return bool(np.all(a + EPS >= b))


def check_proposition1(vectors: Iterable[np.ndarray]) -> bool:
    """Numerically verify Proposition 1(ii) for a collection of vectors.

    Checks ``||sum v_i||_inf <= sum ||v_i||_inf <= d * ||sum v_i||_inf``.
    Used by property tests; returns ``True`` when the sandwich holds
    (within :data:`EPS`), ``False`` otherwise.  An empty collection
    trivially satisfies the proposition.
    """
    vecs = [np.asarray(v, dtype=np.float64) for v in vectors]
    if not vecs:
        return True
    total = np.sum(vecs, axis=0)
    d = total.size
    lhs = linf(total)
    mid = sum(linf(v) for v in vecs)
    rhs = d * lhs
    return lhs <= mid + EPS and mid <= rhs + EPS
