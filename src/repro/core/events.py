"""Event stream construction for the online simulation.

The engine replays an instance as a totally ordered stream of arrival and
departure events.  Ordering rules (all consequences of the half-open
active interval ``[a, e)`` of Section 2.1):

1. events are ordered by time;
2. at equal times, **departures precede arrivals** — an item departing at
   ``t`` has already freed its capacity when an item arriving at ``t`` is
   dispatched;
3. simultaneous arrivals keep the instance's list order (the adversarial
   constructions depend on this interleaving);
4. simultaneous departures are ordered by uid (any fixed order is
   equivalent, since all of them are processed before the next arrival).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .instance import Instance
from .items import DATACLASS_SLOTS, Item

__all__ = ["EventKind", "Event", "event_stream"]


class EventKind(enum.IntEnum):
    """Kind of a simulation event.  Departures sort before arrivals."""

    DEPARTURE = 0
    ARRIVAL = 1


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class Event:
    """A single timestamped event.

    The field order makes the natural dataclass ordering implement the
    module's ordering rules directly: ``(time, kind, seq)`` with
    ``DEPARTURE < ARRIVAL``.
    """

    time: float
    kind: EventKind
    seq: int
    item: Item = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.item is None:
            raise ValueError("Event requires an item")


def event_stream(instance: Instance) -> List[Event]:
    """Build the totally ordered event list for ``instance``.

    Returns ``2n`` events.  Arrival ``seq`` equals the item's position in
    the instance (preserving online arrival order at ties); departure
    ``seq`` is the uid.
    """
    events: List[Event] = []
    for pos, item in enumerate(instance.items):
        events.append(Event(item.arrival, EventKind.ARRIVAL, pos, item))
        events.append(Event(item.departure, EventKind.DEPARTURE, item.uid, item))
    events.sort(key=lambda ev: (ev.time, ev.kind, ev.seq))
    return events


def iter_arrivals(instance: Instance) -> Iterator[Item]:
    """Items in online arrival order (stable at ties)."""
    for ev in event_stream(instance):
        if ev.kind is EventKind.ARRIVAL:
            yield ev.item


__all__.append("iter_arrivals")
