"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`DVBPError` so callers can
catch everything this package raises with a single ``except`` clause while
still distinguishing configuration problems from runtime packing failures.
"""

from __future__ import annotations

__all__ = [
    "DVBPError",
    "InvalidItemError",
    "InvalidInstanceError",
    "CapacityExceededError",
    "PackingAuditError",
    "AlgorithmError",
    "SolverLimitError",
    "ConfigurationError",
    "CheckpointError",
    "UnitFailedError",
    "StreamOrderError",
    "MigrationBudgetError",
]


class DVBPError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidItemError(DVBPError, ValueError):
    """An item violates the problem's validity constraints.

    Raised when an item has a non-positive duration, a negative size in
    some dimension, a size exceeding the bin capacity (so it could never
    be packed), or mismatched dimensionality.
    """


class InvalidInstanceError(DVBPError, ValueError):
    """An instance (list of items) is malformed.

    Raised for empty instances where a non-empty one is required, mixed
    dimensionalities, or inconsistent capacity vectors.
    """


class CapacityExceededError(DVBPError, RuntimeError):
    """An item was packed into a bin that cannot hold it.

    The online engine treats this as a programming error: the Any Fit
    base class checks fit before packing, so user-supplied selection
    rules that return unfit bins trigger this error rather than silently
    producing an infeasible packing.
    """


class PackingAuditError(DVBPError, AssertionError):
    """A completed packing failed its temporal feasibility audit.

    See :func:`repro.core.packing.Packing.validate`, which replays the
    packing over time and checks every bin's load vector against the
    capacity at every event time.
    """


class AlgorithmError(DVBPError, RuntimeError):
    """An online algorithm violated its contract (e.g. Any Fit property)."""


class SolverLimitError(DVBPError, RuntimeError):
    """The exact optimum solver exceeded its configured size/node budget.

    Callers that need a certified value should catch this and fall back
    to the bracket returned by
    :func:`repro.optimum.opt_cost.optimum_cost_bounds`.
    """


class ConfigurationError(DVBPError, ValueError):
    """An experiment or generator was configured with invalid parameters."""


class CheckpointError(DVBPError, RuntimeError):
    """A checkpoint directory cannot be used as requested.

    Raised when a resume targets a checkpoint written by a *different*
    sweep (fingerprint mismatch) or when the store is asked to record a
    unit outside the sweep it was opened for.  Corrupted shards do *not*
    raise — they are dropped with a warning and their units re-run (see
    :mod:`repro.orchestration.checkpoint`).
    """


class StreamOrderError(DVBPError, ValueError):
    """An incremental event stream violated its ordering contract.

    The streaming merge (:mod:`repro.streaming.merge`) requires arrivals
    in non-decreasing time order — that is what lets it interleave the
    departure heap without buffering the whole stream.  An out-of-order
    arrival would silently produce an event order different from the
    classic engine's lexsort, so it fails loudly instead.
    """


class MigrationBudgetError(DVBPError, RuntimeError):
    """A repacking policy tried to move more items than its budget allows.

    The :class:`repro.repacking.MigrationLedger` enforces the migration
    budget as a *hard* invariant: the move that would exceed the
    per-event cap ``k`` (or exhaust the amortized credit) raises before
    any engine state is mutated, so a buggy policy can never smuggle
    extra recourse into a run.  See :mod:`repro.repacking.ledger`.
    """


class UnitFailedError(DVBPError, RuntimeError):
    """A sweep work unit exhausted its retry budget.

    Carries the failing ``(algorithm, instance_index)`` unit key; all
    units completed before the failure have already been flushed to the
    checkpoint (when one is configured), so a rerun with ``resume=True``
    loses nothing.
    """
