"""Bins: capacity-checked servers with load tracking and usage accounting.

A :class:`Bin` is the mutable runtime object the online engine operates
on.  It tracks its current load vector, resident items, open/close times,
and the set of items ever packed into it (needed for the cost audit and
for the usage-period decompositions of the analysis sections).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from .errors import CapacityExceededError
from .intervals import Interval
from .items import Item
from .vectors import fits

__all__ = ["Bin"]


class Bin:
    """A single server/bin with vector capacity.

    Parameters
    ----------
    capacity:
        Per-dimension capacity vector (shared, not copied — treat as
        read-only).
    index:
        Opening-order index assigned by the engine: bin ``i`` is the
        ``i``-th bin opened (0-based).  First Fit's candidate order is
        exactly this index order.
    opened_at:
        Time the bin received its first item.
    """

    __slots__ = (
        "capacity",
        "index",
        "opened_at",
        "closed_at",
        "load",
        "_active",
        "history",
    )

    def __init__(self, capacity: np.ndarray, index: int, opened_at: float) -> None:
        self.capacity = capacity
        self.index = index
        self.opened_at = float(opened_at)
        self.closed_at: Optional[float] = None
        self.load = np.zeros(capacity.size, dtype=np.float64)
        self._active: Dict[int, Item] = {}
        #: every item ever packed here, in packing order (audit trail)
        self.history: List[Item] = []

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of resource dimensions."""
        return int(self.capacity.size)

    @property
    def is_open(self) -> bool:
        """Whether the bin still holds at least one active item."""
        return self.closed_at is None

    @property
    def is_empty(self) -> bool:
        """Whether no items are currently resident."""
        return not self._active

    @property
    def num_active(self) -> int:
        """Number of currently resident items."""
        return len(self._active)

    def active_items(self) -> List[Item]:
        """Currently resident items (insertion order)."""
        return list(self._active.values())

    def active_uids(self) -> Set[int]:
        """Uids of currently resident items."""
        return set(self._active.keys())

    def can_fit(self, item: Item) -> bool:
        """Whether ``item`` fits the residual capacity (per-dimension)."""
        return fits(self.load, item.size, self.capacity)

    @property
    def usage_period(self) -> Interval:
        """The bin's active interval ``[opened_at, closed_at)``.

        For a still-open bin the end is the latest departure among items
        ever packed (the earliest time it *could* close).
        """
        if self.closed_at is not None:
            return Interval(self.opened_at, self.closed_at)
        end = max((it.departure for it in self.history), default=self.opened_at)
        return Interval(self.opened_at, end)

    @property
    def usage_time(self) -> float:
        """Length of :attr:`usage_period` — this bin's cost contribution."""
        return self.usage_period.length

    # ------------------------------------------------------------------
    # mutations (engine-only)
    # ------------------------------------------------------------------
    def pack(self, item: Item) -> None:
        """Place ``item`` into this bin.

        Raises
        ------
        CapacityExceededError
            If the item does not fit.  The Any Fit base class checks fit
            before calling; hitting this indicates a buggy selection rule.
        """
        if not self.can_fit(item):
            raise CapacityExceededError(
                f"item {item.uid} (size {item.size!r}) does not fit bin "
                f"{self.index} at load {self.load!r} / capacity {self.capacity!r}"
            )
        if item.uid in self._active:
            raise CapacityExceededError(
                f"item {item.uid} is already resident in bin {self.index}"
            )
        self.load = self.load + item.size
        self._active[item.uid] = item
        self.history.append(item)

    def remove(self, item: Item, now: float) -> bool:
        """Remove a departing ``item``; close the bin if it empties.

        Returns
        -------
        bool
            ``True`` if this departure closed the bin.
        """
        if item.uid not in self._active:
            raise KeyError(f"item {item.uid} is not resident in bin {self.index}")
        del self._active[item.uid]
        # recompute from residents rather than subtracting, so float error
        # cannot accumulate over long arrival/departure sequences
        self.load = self._active_load()
        if not self._active:
            self.closed_at = float(now)
            return True
        return False

    def _active_load(self) -> np.ndarray:
        total = np.zeros(self.d)
        for it in self._active.values():
            total += it.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.is_open else f"closed@{self.closed_at:g}"
        return (
            f"Bin(#{self.index}, {state}, items={len(self._active)}, "
            f"load={np.array2string(self.load, precision=3)})"
        )
