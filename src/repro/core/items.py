"""Items: the jobs/VM-requests of the MinUsageTime DVBP problem.

An item ``r`` is a triple ``(a(r), e(r), s(r))`` — arrival time, departure
time, and a ``d``-dimensional size vector (Section 2.1).  Items are
immutable; identity is carried by an integer ``uid`` assigned by the
:class:`~repro.core.instance.Instance` that owns them (or explicitly by
the caller), so two items with equal fields but different uids are
distinct jobs.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from .errors import InvalidItemError
from .intervals import Interval
from .vectors import as_size_vector, linf

__all__ = ["Item"]

#: ``slots=True`` drops the per-instance ``__dict__`` of the hot
#: per-event objects (items are allocated n-at-a-time in every sweep and
#: held for the whole replay).  The keyword only exists on Python 3.10+;
#: on 3.9 the classes keep their dict and everything else is identical.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Item:
    """A single online job with multi-dimensional resource demand.

    Parameters
    ----------
    arrival:
        Arrival time ``a(r) >= 0``.
    departure:
        Departure time ``e(r) > a(r)``.  The active interval is the
        half-open ``[arrival, departure)`` — the item has departed *at*
        ``departure``.
    size:
        Resource demand vector ``s(r)``; scalar inputs are promoted to
        1-D.  Sizes must be non-negative and finite.  Whether the size
        fits the bin capacity is validated by the owning instance (items
        themselves are capacity-agnostic).
    uid:
        Stable integer identity.  When items are built through
        :meth:`repro.core.instance.Instance.from_tuples` the uid equals
        the item's position in the arrival order.
    """

    arrival: float
    departure: float
    size: np.ndarray = field(repr=False)
    uid: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", as_size_vector(self.size))
        if not np.isfinite(self.arrival) or not np.isfinite(self.departure):
            raise InvalidItemError(
                f"item {self.uid}: times must be finite "
                f"(arrival={self.arrival}, departure={self.departure})"
            )
        if self.arrival < 0:
            raise InvalidItemError(f"item {self.uid}: arrival must be >= 0, got {self.arrival}")
        if self.departure <= self.arrival:
            raise InvalidItemError(
                f"item {self.uid}: departure {self.departure} must exceed arrival {self.arrival}"
            )
        # freeze the array so the frozen dataclass is actually immutable
        self.size.setflags(write=False)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def d(self) -> int:
        """Number of resource dimensions of this item."""
        return int(self.size.size)

    @property
    def duration(self) -> float:
        """Item duration ``ell(I(r)) = e(r) - a(r)``."""
        return self.departure - self.arrival

    @property
    def interval(self) -> Interval:
        """Active interval ``I(r) = [a(r), e(r))``."""
        return Interval(self.arrival, self.departure)

    @property
    def max_demand(self) -> float:
        """Largest per-dimension demand, ``||s(r)||_inf``."""
        return linf(self.size)

    @property
    def utilization(self) -> float:
        """Time-space utilisation ``u(r) = ||s(r)||_inf * ell(I(r))``.

        This is the quantity summed in the Lemma 1(ii) lower bound.
        """
        return self.max_demand * self.duration

    def active_at(self, t: float) -> bool:
        """Whether the item is active at instant ``t`` (half-open check)."""
        return self.arrival <= t < self.departure

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: Union[float, Sequence[float], np.ndarray]) -> "Item":
        """A copy with the size multiplied per-dimension by ``factor``.

        Used to normalise instances with non-unit bin capacity into the
        unit-capacity form the theory assumes.
        """
        return Item(self.arrival, self.departure, np.asarray(self.size) * np.asarray(factor), self.uid)

    def shifted(self, delta: float) -> "Item":
        """A copy with both times translated by ``delta`` (must stay >= 0)."""
        return Item(self.arrival + delta, self.departure + delta, np.array(self.size), self.uid)

    def with_uid(self, uid: int) -> "Item":
        """A copy carrying a different uid."""
        return Item(self.arrival, self.departure, np.array(self.size), uid)

    def with_departure(self, departure: float) -> "Item":
        """A copy with a different departure time (same arrival/size/uid)."""
        return Item(self.arrival, departure, np.array(self.size), self.uid)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Item):
            return NotImplemented
        return (
            self.uid == other.uid
            and self.arrival == other.arrival
            and self.departure == other.departure
            and np.array_equal(self.size, other.size)
        )

    def __hash__(self) -> int:
        return hash((self.uid, self.arrival, self.departure, self.size.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sz = np.array2string(self.size, precision=4, separator=",")
        return f"Item(uid={self.uid}, [{self.arrival:g},{self.departure:g}), s={sz})"


def make_item(
    arrival: float,
    duration: float,
    size: Union[float, Sequence[float], np.ndarray],
    uid: int = 0,
) -> Item:
    """Convenience constructor from ``(arrival, duration)`` instead of
    ``(arrival, departure)``.

    Raises :class:`InvalidItemError` if ``duration <= 0``.
    """
    if duration <= 0:
        raise InvalidItemError(f"duration must be positive, got {duration}")
    return Item(arrival, arrival + duration, np.asarray(size, dtype=np.float64), uid)


__all__.append("make_item")
