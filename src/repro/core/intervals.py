"""Half-open time intervals and span arithmetic.

The paper measures cost as total bin usage time, computed from unions of
half-open intervals ``[a, e)``.  This module provides a small immutable
:class:`Interval` type plus the union/span utilities the analysis needs:
``span`` of an item list (Section 2.1), usage-period decomposition checks
for Move To Front (Figure 1) and First Fit (Figure 2), and the piecewise-
constant breakpoint machinery used by the exact-optimum integral (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "Interval",
    "union_length",
    "merge_intervals",
    "total_span",
    "intersect",
    "intervals_partition",
    "breakpoints",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    Degenerate intervals with ``end <= start`` are permitted and have zero
    length; they arise naturally as empty trailing decomposition pieces
    (e.g. the possibly-empty final non-leading interval ``Q_{i,n_i}`` in
    the Move To Front analysis).
    """

    start: float
    end: float

    @property
    def length(self) -> float:
        """Length ``max(0, end - start)`` of the interval."""
        return max(0.0, self.end - self.start)

    @property
    def empty(self) -> bool:
        """Whether the interval contains no time instants."""
        return self.end <= self.start

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` lies in ``[start, end)``."""
        return self.start <= t < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two half-open intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection interval."""
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def shift(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start:g}, {self.end:g})"


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/abutting half-open intervals into a disjoint list.

    Empty intervals are dropped.  The result is sorted by start time and
    pairwise disjoint with gaps of positive length between consecutive
    entries.
    """
    nonempty = sorted((iv for iv in intervals if not iv.empty), key=lambda iv: iv.start)
    merged: List[Interval] = []
    for iv in nonempty:
        if merged and iv.start <= merged[-1].end:
            if iv.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, iv.end)
        else:
            merged.append(Interval(iv.start, iv.end))
    return merged


def union_length(intervals: Iterable[Interval]) -> float:
    """Total length of the union of the given intervals.

    This is the ``span`` operator of Section 2.1 applied to an arbitrary
    interval family: ``span(R) = ell(union of I(r))``.
    """
    return sum(iv.length for iv in merge_intervals(intervals))


def total_span(intervals: Iterable[Interval]) -> Interval:
    """Smallest single interval covering all given intervals.

    Returns the degenerate ``[0, 0)`` interval for an empty family.
    """
    items = [iv for iv in intervals if not iv.empty]
    if not items:
        return Interval(0.0, 0.0)
    return Interval(min(iv.start for iv in items), max(iv.end for iv in items))


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Pairwise intersection of two *disjoint, sorted* interval lists."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        iv = a[i].intersection(b[j])
        if not iv.empty:
            out.append(iv)
        if a[i].end <= b[j].end:
            i += 1
        else:
            j += 1
    return out


def intervals_partition(
    pieces: Iterable[Interval], whole: Interval, tol: float = 1e-9
) -> bool:
    """Check that ``pieces`` exactly partition ``whole``.

    Used to verify the structural claims behind Claim 1 (the leading
    intervals of Move To Front partition ``[0, span)``) and the Next Fit
    current-bin decomposition.  The check is numeric: pieces must be
    pairwise disjoint (no overlap beyond ``tol``) and their merged union
    must equal ``whole`` within ``tol``.
    """
    nonempty = sorted((p for p in pieces if not p.empty), key=lambda p: p.start)
    for prev, nxt in zip(nonempty, nonempty[1:]):
        if nxt.start < prev.end - tol:
            return False
    merged = merge_intervals(nonempty)
    if whole.empty:
        return len(merged) == 0
    if len(merged) != 1:
        # allow float-sized gaps
        covered = sum(m.length for m in merged)
        return abs(covered - whole.length) <= tol * max(1.0, whole.length)
    m = merged[0]
    return abs(m.start - whole.start) <= tol and abs(m.end - whole.end) <= tol


def breakpoints(intervals: Iterable[Interval]) -> List[float]:
    """Sorted unique endpoints of the given intervals.

    Between two consecutive breakpoints the set of active intervals is
    constant, which is what makes the optimum integral (Eq. 2) a finite
    sum.  Empty intervals contribute no breakpoints.
    """
    pts = set()
    for iv in intervals:
        if not iv.empty:
            pts.add(iv.start)
            pts.add(iv.end)
    return sorted(pts)
