"""Packing results: the output of running an algorithm on an instance.

A :class:`Packing` records which bin every item went to, each bin's usage
period, and derived metrics (cost per Eq. 1, bins opened, utilisation).
It also carries a full *temporal feasibility audit*
(:meth:`Packing.validate`) that replays the assignment over time and
checks per-dimension capacity at every event instant — the ground truth
every algorithm implementation is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .errors import PackingAuditError
from .instance import Instance
from .intervals import Interval, union_length
from .items import Item
from .vectors import EPS

__all__ = ["BinRecord", "Packing"]


class BinRecord(NamedTuple):
    """Immutable summary of one bin in a finished packing.

    A ``NamedTuple`` rather than a frozen dataclass: a large run opens
    thousands of bins and every engine finishes by materialising one
    record per bin, so construction cost is on the engines' fixed
    overhead path (tuple ``__new__`` is roughly half the cost of a
    frozen dataclass's ``object.__setattr__`` init).

    Attributes
    ----------
    index:
        Opening-order index of the bin.
    opened_at / closed_at:
        Usage period endpoints: the bin was active on
        ``[opened_at, closed_at)``.
    item_uids:
        Uids of all items ever packed into this bin, in packing order.
    """

    index: int
    opened_at: float
    closed_at: float
    item_uids: Tuple[int, ...]

    @property
    def usage_period(self) -> Interval:
        """Active interval of the bin."""
        return Interval(self.opened_at, self.closed_at)

    @property
    def usage_time(self) -> float:
        """Cost contribution of this bin."""
        return self.usage_period.length


@dataclass(frozen=True)
class Packing:
    """A complete assignment of an instance's items to bins.

    Construct via :meth:`from_assignment` (used by the engine) rather
    than directly, so usage periods are derived consistently.
    """

    instance: Instance
    assignment: Mapping[int, int]  # item uid -> bin index
    bins: Tuple[BinRecord, ...]
    algorithm: str = ""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls,
        instance: Instance,
        assignment: Mapping[int, int],
        algorithm: str = "",
    ) -> "Packing":
        """Build a packing (and per-bin usage periods) from an assignment.

        Usage periods are derived from the items: a bin opens at the
        earliest arrival among its items and closes at the latest
        departure.  This matches the engine's accounting because closed
        bins are never reused (Section 2.1) — a property
        :meth:`validate` also re-checks.
        """
        # Single pass with running min/max: equivalent to the obvious
        # group-then-reduce (same comparisons, same first-minimum tie
        # handling), but without one generator pair per bin — this runs
        # once per finished engine replay, on every engine.
        by_bin: Dict[int, list] = {}
        for item in instance.items:
            uid = item.uid
            try:
                index = assignment[uid]
            except KeyError:
                raise PackingAuditError(f"item {uid} has no bin assignment") from None
            rec = by_bin.get(index)
            if rec is None:
                by_bin[index] = [item.arrival, item.departure, [uid]]
            else:
                if item.arrival < rec[0]:
                    rec[0] = item.arrival
                if item.departure > rec[1]:
                    rec[1] = item.departure
                rec[2].append(uid)
        records = [
            BinRecord(index, rec[0], rec[1], tuple(rec[2]))
            for index, rec in sorted(by_bin.items())
        ]
        return cls(
            instance=instance,
            assignment=dict(assignment),
            bins=tuple(records),
            algorithm=algorithm,
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total usage time (Eq. 1): ``sum_i span(R_i)``."""
        return sum(b.usage_time for b in self.bins)

    @property
    def num_bins(self) -> int:
        """Number of bins opened over the whole run."""
        return len(self.bins)

    def bins_open_at(self, t: float) -> int:
        """Number of bins active at instant ``t``."""
        return sum(1 for b in self.bins if b.usage_period.contains(t))

    def max_concurrent_bins(self) -> int:
        """Peak number of simultaneously active bins."""
        times = sorted({b.opened_at for b in self.bins})
        return max((self.bins_open_at(t) for t in times), default=0)

    def average_utilization(self) -> float:
        """Time-space utilisation divided by provisioned time-space.

        ``sum_r u(r) / (d_normalised cost)`` in the normalised instance;
        a number in ``[0, 1]`` measuring how tightly the packing uses the
        bin-time it pays for (1 = every paid bin-second fully used in its
        max dimension).
        """
        if self.cost <= 0:
            return 0.0
        norm = self.instance.normalized()
        return norm.total_utilization() / self.cost

    def items_in_bin(self, index: int) -> List[Item]:
        """Items assigned to bin ``index`` in packing order."""
        record = next((b for b in self.bins if b.index == index), None)
        if record is None:
            raise KeyError(f"no bin with index {index}")
        by_uid = {it.uid: it for it in self.instance.items}
        return [by_uid[uid] for uid in record.item_uids]

    # ------------------------------------------------------------------
    # audit
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Replay the packing over time and check all feasibility invariants.

        Checks, at every event time ``t`` (arrivals inclusive, half-open
        departures exclusive):

        * per-dimension load of every bin is within capacity (+EPS);
        * every item is assigned to exactly one bin whose usage period
          covers the item's active interval;
        * usage periods are exactly the hull of member items (no phantom
          idle time billed, matching Eq. 1).

        Raises
        ------
        PackingAuditError
            On the first violated invariant, with a diagnostic message.
        """
        cap = self.instance.capacity
        slack = cap + EPS * np.maximum(cap, 1.0)
        by_uid = {it.uid: it for it in self.instance.items}

        assigned = set(self.assignment)
        expected = {it.uid for it in self.instance.items}
        if assigned != expected:
            raise PackingAuditError(
                f"assignment covers {len(assigned)} uids, instance has {len(expected)}"
            )

        for record in self.bins:
            items = [by_uid[uid] for uid in record.item_uids]
            if not items:
                raise PackingAuditError(f"bin {record.index} has no items")
            hull_start = min(it.arrival for it in items)
            hull_end = max(it.departure for it in items)
            if abs(hull_start - record.opened_at) > EPS or abs(hull_end - record.closed_at) > EPS:
                raise PackingAuditError(
                    f"bin {record.index} usage period [{record.opened_at}, "
                    f"{record.closed_at}) is not the hull of its items "
                    f"[{hull_start}, {hull_end})"
                )
            for it in items:
                if self.assignment[it.uid] != record.index:
                    raise PackingAuditError(
                        f"item {it.uid} listed in bin {record.index} but assigned "
                        f"to bin {self.assignment[it.uid]}"
                    )
            # capacity check at every arrival instant within this bin
            arrivals = sorted({it.arrival for it in items})
            sizes = np.stack([it.size for it in items])
            starts = np.array([it.arrival for it in items])
            ends = np.array([it.departure for it in items])
            for t in arrivals:
                active = (starts <= t) & (t < ends)
                load = sizes[active].sum(axis=0)
                if np.any(load > slack):
                    raise PackingAuditError(
                        f"bin {record.index} over capacity at t={t}: load {load!r} "
                        f"exceeds capacity {cap!r}"
                    )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Compact metric dict for reports and logs."""
        return {
            "algorithm": self.algorithm,
            "cost": self.cost,
            "num_bins": self.num_bins,
            "span": self.instance.span,
            "max_concurrent_bins": self.max_concurrent_bins(),
            "average_utilization": self.average_utilization(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packing(algorithm={self.algorithm!r}, cost={self.cost:g}, "
            f"bins={self.num_bins})"
        )
