"""Core data model for MinUsageTime Dynamic Vector Bin Packing.

Exports the problem's building blocks: items, instances, bins, packings,
intervals, the event stream, and the vector helpers used throughout the
library.
"""

from .errors import (
    AlgorithmError,
    CapacityExceededError,
    CheckpointError,
    ConfigurationError,
    DVBPError,
    InvalidInstanceError,
    InvalidItemError,
    PackingAuditError,
    SolverLimitError,
    UnitFailedError,
)
from .events import Event, EventKind, event_stream, iter_arrivals
from .instance import Instance
from .intervals import (
    Interval,
    breakpoints,
    intervals_partition,
    merge_intervals,
    total_span,
    union_length,
)
from .items import Item, make_item
from .bins import Bin
from .packing import BinRecord, Packing
from .vectors import EPS, as_size_vector, check_proposition1, fits, fits_batch, l1, linf, lp

__all__ = [
    "AlgorithmError",
    "Bin",
    "BinRecord",
    "CapacityExceededError",
    "CheckpointError",
    "ConfigurationError",
    "DVBPError",
    "EPS",
    "Event",
    "EventKind",
    "Instance",
    "Interval",
    "InvalidInstanceError",
    "InvalidItemError",
    "Item",
    "Packing",
    "PackingAuditError",
    "SolverLimitError",
    "UnitFailedError",
    "as_size_vector",
    "breakpoints",
    "check_proposition1",
    "event_stream",
    "fits",
    "fits_batch",
    "intervals_partition",
    "iter_arrivals",
    "l1",
    "linf",
    "lp",
    "make_item",
    "merge_intervals",
    "total_span",
    "union_length",
]
