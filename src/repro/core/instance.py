"""Problem instances: validated, ordered lists of items plus a capacity.

An :class:`Instance` is the library's unit of work: the online engine
replays its items in arrival order, the optimum machinery integrates over
its breakpoints, and the workload generators all return instances.

Items arrive in the order given (ties in arrival time are broken by list
position, matching the paper's "items arrive in that order" constructions
in Theorems 5/6/8, where the interleaving at time 0 is essential).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .errors import InvalidInstanceError, InvalidItemError
from .intervals import Interval, breakpoints, merge_intervals, union_length
from .items import Item
from .vectors import EPS, as_size_vector

__all__ = ["Instance"]


@dataclass(frozen=True)
class Instance:
    """An ordered DVBP instance.

    Parameters
    ----------
    items:
        Items in arrival order.  The order must be non-decreasing in
        arrival time; within equal arrival times the list order is the
        online arrival order.
    capacity:
        Per-dimension bin capacity vector.  Defaults to ``1`` in every
        dimension (the normalised form of Section 2.1).  The Section 7
        experiments use integer capacity ``B = 100`` per dimension.
    name:
        Optional label used in reports.
    """

    items: Tuple[Item, ...]
    capacity: np.ndarray = field(repr=False)
    name: str = ""

    def __init__(
        self,
        items: Iterable[Item],
        capacity: Union[float, Sequence[float], np.ndarray, None] = None,
        name: str = "",
        _skip_sort_check: bool = False,
    ) -> None:
        items_t = tuple(items)
        if not items_t:
            raise InvalidInstanceError("an instance must contain at least one item")
        d = items_t[0].d
        for it in items_t:
            if it.d != d:
                raise InvalidInstanceError(
                    f"mixed dimensionalities: item {it.uid} has d={it.d}, expected {d}"
                )
        if capacity is None:
            cap = np.ones(d, dtype=np.float64)
        else:
            cap = as_size_vector(capacity)
            if cap.size == 1 and d > 1:
                cap = np.full(d, float(cap[0]))
            if cap.size != d:
                raise InvalidInstanceError(
                    f"capacity dimension {cap.size} does not match item dimension {d}"
                )
            if np.any(cap <= 0):
                raise InvalidInstanceError(f"capacity must be positive, got {cap!r}")
        cap.setflags(write=False)
        for it in items_t:
            if np.any(it.size > cap + EPS * np.maximum(cap, 1.0)):
                raise InvalidItemError(
                    f"item {it.uid} with size {it.size!r} can never fit capacity {cap!r}"
                )
        if not _skip_sort_check:
            for prev, nxt in zip(items_t, items_t[1:]):
                if nxt.arrival < prev.arrival - EPS:
                    raise InvalidInstanceError(
                        "items must be listed in non-decreasing arrival order; "
                        f"item {nxt.uid} (t={nxt.arrival}) follows item "
                        f"{prev.uid} (t={prev.arrival})"
                    )
        uids = [it.uid for it in items_t]
        if len(set(uids)) != len(uids):
            seen = set()
            dup = next(u for u in uids if u in seen or seen.add(u))
            raise InvalidInstanceError(
                f"item uids must be unique; uid {dup} appears more than once"
            )
        object.__setattr__(self, "items", items_t)
        object.__setattr__(self, "capacity", cap)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(
        cls,
        triples: Iterable[Tuple[float, float, Union[float, Sequence[float]]]],
        capacity: Union[float, Sequence[float], None] = None,
        name: str = "",
    ) -> "Instance":
        """Build an instance from ``(arrival, departure, size)`` triples.

        Uids are assigned by position; the triples are sorted by arrival
        (stable, so equal arrivals keep their given order).
        """
        items = [
            Item(a, e, np.asarray(s, dtype=np.float64), uid=i)
            for i, (a, e, s) in enumerate(triples)
        ]
        items.sort(key=lambda it: it.arrival)
        items = [it.with_uid(i) for i, it in enumerate(items)]
        return cls(items, capacity=capacity, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items)

    def __getitem__(self, idx: int) -> Item:
        return self.items[idx]

    @property
    def d(self) -> int:
        """Number of resource dimensions."""
        return self.items[0].d

    @property
    def n(self) -> int:
        """Number of items."""
        return len(self.items)

    # ------------------------------------------------------------------
    # paper quantities (Section 2.1)
    #
    # These are pure functions of the (immutable) item tuple, so they are
    # cached on first access: sweeps touch ``mu``/``span``/``horizon`` for
    # every policy replayed on the same instance, and each would otherwise
    # cost an O(n) pass (or an interval union for ``span``).  Caching is
    # invalidation-free because the dataclass is frozen — the item tuple
    # and capacity can never change after construction, and every
    # transformation (``normalized``/``restricted_to``/...) returns a new
    # Instance with its own empty cache.
    # ------------------------------------------------------------------
    @cached_property
    def min_duration(self) -> float:
        """Shortest item duration (the paper normalises this to 1)."""
        return min(it.duration for it in self.items)

    @cached_property
    def max_duration(self) -> float:
        """Longest item duration."""
        return max(it.duration for it in self.items)

    @cached_property
    def mu(self) -> float:
        """Duration ratio ``mu = max duration / min duration``."""
        return self.max_duration / self.min_duration

    @cached_property
    def span(self) -> float:
        """``span(R)``: total time at least one item is active."""
        return union_length(it.interval for it in self.items)

    @cached_property
    def horizon(self) -> Interval:
        """Smallest interval containing all activity."""
        return Interval(
            min(it.arrival for it in self.items),
            max(it.departure for it in self.items),
        )

    @cached_property
    def total_duration(self) -> float:
        """Sum of item durations ``sum_r ell(I(r))``.

        ``total_duration / (horizon length)`` estimates the mean number of
        concurrently active items — the quantity the fastpath backend
        heuristic keys on.
        """
        return sum(it.duration for it in self.items)

    @cached_property
    def dimension_maxima(self) -> np.ndarray:
        """Per-dimension maximum item demand (read-only length-``d`` vector)."""
        out = np.max(np.stack([it.size for it in self.items]), axis=0)
        out.setflags(write=False)
        return out

    def total_utilization(self) -> float:
        """Sum of time-space utilisations ``sum_r ||s(r)||_inf * ell(I(r))``."""
        return sum(it.utilization for it in self.items)

    def active_at(self, t: float) -> List[Item]:
        """Items active at instant ``t``."""
        return [it for it in self.items if it.active_at(t)]

    def load_at(self, t: float) -> np.ndarray:
        """Aggregate demand vector ``s(R, t)`` of items active at ``t``."""
        total = np.zeros(self.d)
        for it in self.items:
            if it.active_at(t):
                total += it.size
        return total

    def event_times(self) -> List[float]:
        """Sorted unique arrival/departure times (integral breakpoints)."""
        return breakpoints(it.interval for it in self.items)

    def active_components(self) -> List[Interval]:
        """Maximal intervals during which at least one item is active.

        The paper assumes w.l.o.g. a single component; generators in this
        library may produce several, in which case each component is an
        independent sub-problem (Section 2.1).
        """
        return merge_intervals(it.interval for it in self.items)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "Instance":
        """Rescale sizes so the capacity is the all-ones vector.

        Returns ``self`` when already normalised.
        """
        if np.allclose(self.capacity, 1.0):
            return self
        factor = 1.0 / self.capacity
        items = [it.scaled(factor) for it in self.items]
        return Instance(items, capacity=np.ones(self.d), name=self.name, _skip_sort_check=True)

    def restricted_to(self, window: Interval) -> "Instance":
        """Sub-instance of items whose active interval intersects ``window``."""
        kept = [it for it in self.items if it.interval.overlaps(window)]
        if not kept:
            raise InvalidInstanceError(f"no items intersect window {window}")
        return Instance(kept, capacity=np.array(self.capacity), name=self.name, _skip_sort_check=True)

    def concatenated(self, other: "Instance") -> "Instance":
        """Merge two instances over the same capacity (re-sorted, re-uid'd)."""
        if self.d != other.d or not np.allclose(self.capacity, other.capacity):
            raise InvalidInstanceError("cannot concatenate instances with different capacities")
        merged = sorted(list(self.items) + list(other.items), key=lambda it: it.arrival)
        merged = [it.with_uid(i) for i, it in enumerate(merged)]
        return Instance(merged, capacity=np.array(self.capacity), name=self.name)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form suitable for ``json.dump``."""
        return {
            "name": self.name,
            "capacity": self.capacity.tolist(),
            "items": [
                {
                    "uid": it.uid,
                    "arrival": it.arrival,
                    "departure": it.departure,
                    "size": it.size.tolist(),
                }
                for it in self.items
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        items = [
            Item(rec["arrival"], rec["departure"], np.asarray(rec["size"]), rec["uid"])
            for rec in payload["items"]
        ]
        return cls(items, capacity=np.asarray(payload["capacity"]), name=payload.get("name", ""))

    def to_json(self) -> str:
        """JSON string form."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Instance({label} n={self.n}, d={self.d}, mu={self.mu:g}, span={self.span:g})"
