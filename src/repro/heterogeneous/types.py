"""Server types for the heterogeneous-fleet extension.

The paper's model has identical unit bins; real clouds offer a menu of
instance types with different capacities and hourly rates.  A
:class:`ServerType` is a named (capacity vector, cost rate) pair; a
:class:`Fleet` is the menu, with helper queries the policies use
(cheapest feasible type, densest type, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.items import Item
from ..core.vectors import EPS

__all__ = ["ServerType", "Fleet", "DEFAULT_FLEET"]


@dataclass(frozen=True)
class ServerType:
    """One rentable server shape.

    Parameters
    ----------
    name:
        Catalogue label (e.g. ``"m.large"``).
    capacity:
        Per-dimension capacity vector.
    cost_rate:
        Cost per unit of active time.
    """

    name: str
    capacity: Tuple[float, ...]
    cost_rate: float

    def __post_init__(self) -> None:
        if not self.capacity or any(c <= 0 for c in self.capacity):
            raise ConfigurationError(
                f"type {self.name}: capacity must be positive, got {self.capacity}"
            )
        if self.cost_rate <= 0:
            raise ConfigurationError(
                f"type {self.name}: cost_rate must be positive, got {self.cost_rate}"
            )

    @property
    def d(self) -> int:
        """Resource dimensionality."""
        return len(self.capacity)

    @property
    def capacity_array(self) -> np.ndarray:
        """Capacity as an ndarray (fresh copy)."""
        return np.asarray(self.capacity, dtype=np.float64)

    def fits_item(self, item: Item) -> bool:
        """Whether an empty server of this type can hold ``item``."""
        cap = self.capacity_array
        return bool(np.all(item.size <= cap + EPS * np.maximum(cap, 1.0)))

    @property
    def cost_density(self) -> float:
        """Cost rate per unit of max-dimension capacity — a crude
        price-performance score (lower is better value)."""
        return self.cost_rate / max(self.capacity)


class Fleet:
    """A menu of server types over one dimensionality."""

    def __init__(self, types: Sequence[ServerType]) -> None:
        if not types:
            raise ConfigurationError("a fleet needs at least one server type")
        d = types[0].d
        names = set()
        for t in types:
            if t.d != d:
                raise ConfigurationError(
                    f"fleet types disagree on dimensionality: {t.name} has "
                    f"d={t.d}, expected {d}"
                )
            if t.name in names:
                raise ConfigurationError(f"duplicate type name {t.name!r}")
            names.add(t.name)
        self.types: Tuple[ServerType, ...] = tuple(types)
        self.d = d

    def __iter__(self):
        return iter(self.types)

    def __len__(self) -> int:
        return len(self.types)

    def by_name(self, name: str) -> ServerType:
        """Look a type up by name."""
        for t in self.types:
            if t.name == name:
                return t
        raise KeyError(f"no server type named {name!r}")

    def feasible_for(self, item: Item) -> List[ServerType]:
        """Types whose empty server can hold ``item``."""
        return [t for t in self.types if t.fits_item(item)]

    def cheapest_feasible(self, item: Item) -> ServerType:
        """The lowest-rate type that can hold ``item`` (ties: first listed).

        Raises
        ------
        ConfigurationError
            If no type can hold the item (the fleet cannot serve it).
        """
        feasible = self.feasible_for(item)
        if not feasible:
            raise ConfigurationError(
                f"no server type can hold item {item.uid} with size {item.size!r}"
            )
        return min(feasible, key=lambda t: t.cost_rate)

    def best_value_feasible(self, item: Item) -> ServerType:
        """The feasible type with the best cost density."""
        feasible = self.feasible_for(item)
        if not feasible:
            raise ConfigurationError(
                f"no server type can hold item {item.uid} with size {item.size!r}"
            )
        return min(feasible, key=lambda t: t.cost_density)


#: A small 2-D (CPU, memory) menu with realistic economies of scale:
#: bigger boxes are cheaper per unit of capacity.
DEFAULT_FLEET = Fleet(
    [
        ServerType("small", (1.0, 1.0), 1.0),
        ServerType("large", (2.0, 2.0), 1.8),
        ServerType("xlarge", (4.0, 4.0), 3.2),
    ]
)
