"""Online engine and policies for heterogeneous fleets.

The homogeneous engine's contract changes in one place: *opening a bin
requires choosing a type*.  :class:`TypedEngine` mirrors
:class:`repro.simulation.engine.Engine` with typed bins and rate-weighted
cost accounting; :class:`TypedAnyFit` generalises the Any Fit template —
pack into an open bin if any fits, otherwise open a bin of the type the
``opening_rule`` selects, choosing among fitting bins with a pluggable
selection rule (default: Move To Front recency).

The interesting new trade-off: a big cheap-per-unit server improves
*packing* but is wasted when mostly idle; the small expensive-per-unit
server wins for lone long jobs.  ``benchmarks/bench_heterogeneous.py``
measures the opening rules against each other and against the best
single-type fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.bins import Bin
from ..core.errors import AlgorithmError, ConfigurationError, PackingAuditError
from ..core.events import EventKind, event_stream
from ..core.instance import Instance
from ..core.intervals import Interval
from ..core.items import Item
from ..core.vectors import EPS
from .types import Fleet, ServerType

__all__ = ["TypedBinRecord", "TypedPacking", "TypedAnyFit", "TypedEngine", "typed_run"]


@dataclass(frozen=True)
class TypedBinRecord:
    """One typed bin in a finished heterogeneous packing."""

    index: int
    type_name: str
    cost_rate: float
    opened_at: float
    closed_at: float
    item_uids: Tuple[int, ...]

    @property
    def usage_time(self) -> float:
        return max(0.0, self.closed_at - self.opened_at)

    @property
    def cost(self) -> float:
        """Rate-weighted usage cost of this bin."""
        return self.usage_time * self.cost_rate


@dataclass(frozen=True)
class TypedPacking:
    """Result of a heterogeneous run: typed bins + rate-weighted cost."""

    instance: Instance
    fleet: Fleet
    assignment: Dict[int, int]
    bins: Tuple[TypedBinRecord, ...]
    algorithm: str = ""

    @property
    def cost(self) -> float:
        """Total rate-weighted usage cost."""
        return sum(b.cost for b in self.bins)

    @property
    def num_bins(self) -> int:
        return len(self.bins)

    def bins_of_type(self, type_name: str) -> List[TypedBinRecord]:
        """Bins of one server type."""
        return [b for b in self.bins if b.type_name == type_name]

    def validate(self) -> None:
        """Temporal feasibility audit against each bin's own capacity."""
        by_uid = {it.uid: it for it in self.instance.items}
        if set(self.assignment) != set(by_uid):
            raise PackingAuditError("assignment does not cover the instance")
        for rec in self.bins:
            cap = self.fleet.by_name(rec.type_name).capacity_array
            slack = cap + EPS * np.maximum(cap, 1.0)
            items = [by_uid[u] for u in rec.item_uids]
            for t in sorted({it.arrival for it in items}):
                load = sum(
                    (it.size for it in items if it.arrival <= t < it.departure),
                    np.zeros(self.instance.d),
                )
                if np.any(load > slack):
                    raise PackingAuditError(
                        f"typed bin {rec.index} ({rec.type_name}) over capacity "
                        f"at t={t}: {load!r} > {cap!r}"
                    )


class TypedAnyFit:
    """Any Fit over a heterogeneous fleet.

    Parameters
    ----------
    fleet:
        The server-type menu.
    opening_rule:
        ``"cheapest"`` — open the lowest-rate feasible type;
        ``"best_value"`` — open the best cost-density feasible type;
        or a callable ``(fleet, item) -> ServerType``.
    selection:
        How to pick among open fitting bins: ``"recent"`` (Move To Front
        recency), ``"first"`` (opening order), or ``"cheapest_rate"``
        (lowest cost-rate bin, ties by recency).
    """

    def __init__(
        self,
        fleet: Fleet,
        opening_rule: str = "best_value",
        selection: str = "recent",
    ) -> None:
        self.fleet = fleet
        if callable(opening_rule):
            self._open_rule = opening_rule
            self.opening_rule = getattr(opening_rule, "__name__", "custom")
        elif opening_rule == "cheapest":
            self._open_rule = lambda fleet, item: fleet.cheapest_feasible(item)
            self.opening_rule = opening_rule
        elif opening_rule == "best_value":
            self._open_rule = lambda fleet, item: fleet.best_value_feasible(item)
            self.opening_rule = opening_rule
        else:
            raise ConfigurationError(
                f"unknown opening rule {opening_rule!r}; use cheapest/best_value"
            )
        if selection not in ("recent", "first", "cheapest_rate"):
            raise ConfigurationError(
                f"unknown selection {selection!r}; use recent/first/cheapest_rate"
            )
        self.selection = selection
        self.name = f"typed_any_fit({self.opening_rule},{selection})"
        self._list: List[Tuple[Bin, ServerType]] = []

    def start(self, instance: Instance) -> None:
        self._list = []

    # -- engine interface ----------------------------------------------
    def dispatch(
        self,
        item: Item,
        now: float,
        open_new_bin: Callable[[ServerType], Bin],
    ) -> Bin:
        fitting = [(b, t) for b, t in self._list if b.can_fit(item)]
        if fitting:
            chosen_pair = self._select(fitting)
        else:
            stype = self._open_rule(self.fleet, item)
            fresh = open_new_bin(stype)
            chosen_pair = (fresh, stype)
            self._list.insert(0, chosen_pair)
        self._touch(chosen_pair)
        return chosen_pair[0]

    def notify_departure(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            self._list = [(b, t) for b, t in self._list if b is not bin_]

    # -- internals -------------------------------------------------------
    def _select(self, fitting: List[Tuple[Bin, ServerType]]) -> Tuple[Bin, ServerType]:
        if self.selection == "recent":
            return fitting[0]  # list is maintained in recency order
        if self.selection == "first":
            return min(fitting, key=lambda pair: pair[0].index)
        # cheapest_rate: lowest-rate bin; ties by recency (list order)
        return min(fitting, key=lambda pair: pair[1].cost_rate)

    def _touch(self, pair: Tuple[Bin, ServerType]) -> None:
        self._list = [pair] + [p for p in self._list if p[0] is not pair[0]]


class TypedEngine:
    """Replays one instance through one typed policy."""

    def __init__(self, instance: Instance, algorithm: TypedAnyFit) -> None:
        if instance.d != algorithm.fleet.d:
            raise ConfigurationError(
                f"instance d={instance.d} does not match fleet d={algorithm.fleet.d}"
            )
        self.instance = instance
        self.algorithm = algorithm
        self._bins: List[Tuple[Bin, ServerType]] = []
        self._bin_of_item: Dict[int, Bin] = {}
        self._type_of_bin: Dict[int, ServerType] = {}
        self._assignment: Dict[int, int] = {}
        self._close_times: Dict[int, float] = {}
        self._ran = False

    def run(self) -> TypedPacking:
        if self._ran:
            raise AlgorithmError("TypedEngine instances are single-use")
        self._ran = True
        self.algorithm.start(self.instance)

        for event in event_stream(self.instance):
            if event.kind is EventKind.ARRIVAL:
                self._arrival(event.item, event.time)
            else:
                self._departure(event.item, event.time)

        records = []
        for bin_, stype in self._bins:
            closed = self._close_times.get(bin_.index)
            if closed is None:
                closed = max(
                    self.instance.items[self._uid_index(u)].departure
                    for u in (it.uid for it in bin_.history)
                )
            records.append(
                TypedBinRecord(
                    index=bin_.index,
                    type_name=stype.name,
                    cost_rate=stype.cost_rate,
                    opened_at=bin_.opened_at,
                    closed_at=closed,
                    item_uids=tuple(it.uid for it in bin_.history),
                )
            )
        return TypedPacking(
            instance=self.instance,
            fleet=self.algorithm.fleet,
            assignment=dict(self._assignment),
            bins=tuple(records),
            algorithm=self.algorithm.name,
        )

    def _uid_index(self, uid: int) -> int:
        # uids equal positions for generator-produced instances; fall
        # back to a scan otherwise
        items = self.instance.items
        if uid < len(items) and items[uid].uid == uid:
            return uid
        for i, it in enumerate(items):
            if it.uid == uid:
                return i
        raise KeyError(uid)

    def _arrival(self, item: Item, now: float) -> None:
        def open_new_bin(stype: ServerType) -> Bin:
            fresh = Bin(stype.capacity_array, index=len(self._bins), opened_at=now)
            self._bins.append((fresh, stype))
            self._type_of_bin[fresh.index] = stype
            return fresh

        target = self.algorithm.dispatch(item, now, open_new_bin)
        target.pack(item)
        self._bin_of_item[item.uid] = target
        self._assignment[item.uid] = target.index

    def _departure(self, item: Item, now: float) -> None:
        bin_ = self._bin_of_item.pop(item.uid)
        closed = bin_.remove(item, now)
        if closed:
            self._close_times[bin_.index] = now
        self.algorithm.notify_departure(bin_, item, now, closed)


def typed_run(algorithm: TypedAnyFit, instance: Instance, validate: bool = False) -> TypedPacking:
    """Run a typed policy on an instance (convenience wrapper)."""
    packing = TypedEngine(instance, algorithm).run()
    if validate:
        packing.validate()
    return packing
