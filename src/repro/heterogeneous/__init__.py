"""Heterogeneous-fleet extension: server types with capacities and rates.

The paper's model (identical unit bins) extended to a menu of rentable
server types - the "instance type" menu of a real cloud - with
rate-weighted MinUsageTime cost.  See DESIGN.md section 6.
"""

from .engine import TypedAnyFit, TypedBinRecord, TypedEngine, TypedPacking, typed_run
from .types import DEFAULT_FLEET, Fleet, ServerType

__all__ = [
    "DEFAULT_FLEET",
    "Fleet",
    "ServerType",
    "TypedAnyFit",
    "TypedBinRecord",
    "TypedEngine",
    "TypedPacking",
    "typed_run",
]
