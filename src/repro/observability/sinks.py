"""Pluggable trace sinks: where instrumented runs send their records.

A sink receives ``(kind, payload)`` pairs — ``kind`` is a short record
type tag (currently ``"run"`` from the collector and ``"scenario"`` /
``"suite"`` from the bench harness), ``payload`` a JSON-ready mapping.
The engine never formats or buffers; the sink decides what persistence
means:

* :class:`NullSink` — the default; every method is a no-op so the
  disabled-instrumentation path stays zero-cost;
* :class:`MemorySink` — keeps records in a list (tests, notebooks);
* :class:`JsonLinesSink` — appends one JSON object per line to a file,
  the interchange format the bench harness and future dashboards read.

All sinks are context managers; ``close`` is idempotent.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, List, Mapping, Tuple, Union

__all__ = ["TraceSink", "NullSink", "MemorySink", "JsonLinesSink"]


class TraceSink:
    """Abstract sink interface (and no-op base implementation)."""

    def emit(self, kind: str, payload: Mapping[str, Any]) -> None:
        """Receive one record.  ``payload`` must be JSON-serialisable."""

    def close(self) -> None:
        """Flush and release any resources.  Idempotent."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(TraceSink):
    """Discard everything — the default sink.

    Exists as a named class (rather than ``None`` checks sprinkled
    around) so call sites that *require* a sink object can be handed one
    with no behavioural consequences.
    """


class MemorySink(TraceSink):
    """Buffer records in memory; read them back via :attr:`records`."""

    def __init__(self) -> None:
        self.records: List[Tuple[str, Dict[str, Any]]] = []

    def emit(self, kind: str, payload: Mapping[str, Any]) -> None:
        self.records.append((kind, dict(payload)))

    def by_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All payloads of the given record kind, in emission order."""
        return [p for k, p in self.records if k == kind]


class JsonLinesSink(TraceSink):
    """Write one JSON object per record to a file (JSON-lines format).

    Each line is ``{"kind": <kind>, ...payload}``, sorted keys, so files
    diff cleanly and stream-parse with one ``json.loads`` per line.

    Parameters
    ----------
    target:
        A path (opened for append, created if missing) or an existing
        writable text file object (not closed by this sink unless it was
        opened here).
    """

    def __init__(self, target: Union[str, "io.TextIOBase"]) -> None:
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._closed = False

    def emit(self, kind: str, payload: Mapping[str, Any]) -> None:
        if self._closed:
            raise ValueError("emit on a closed JsonLinesSink")
        record = {"kind": kind}
        record.update(payload)
        self._fh.write(json.dumps(record, sort_keys=True, default=float) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns:
            self._fh.close()
