"""The pinned-seed perf-baseline suite behind ``BENCH_core.json``.

This module defines the standardized benchmark every perf PR is judged
against: a grid of uniform workloads (``d ∈ {1, 2, 4}`` × small /
medium / large ``n``) run through all seven Any Fit variants of the
paper's Section 7 study, with wall-time, event throughput, hot-path
counters, and cost ratios recorded per (scenario, algorithm) cell.

Entry points
------------
* ``python -m repro bench`` — the CLI wrapper;
* ``benchmarks/harness.py`` — the repo-root script that writes
  ``BENCH_core.json`` (the perf trajectory file);
* :func:`run_suite` / :func:`run_scenario` — the library API;
* :func:`run_batch_suite` — the batched-sweep comparison (per-unit
  fastpath dispatch vs ``engine="batch"``), nested under the
  ``"batch"`` key of ``BENCH_core.json``;
* :func:`measure_overhead` — the instrumentation-overhead protocol
  (plain engine loop vs. instrumented loop with the default no-op
  sink), used to enforce the documented <= 2% budget.

Reproducibility
---------------
Scenario seeds are pinned (derived deterministically from the suite
base seed), wall-times are the **minimum** over ``repeats`` runs (the
standard low-noise estimator for short benchmarks), and all counter
fields are exactly reproducible — so two harness runs differ only in
the timing fields.  See docs/observability.md for how to read and
update the trajectory file.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from ..optimum.lower_bounds import height_lower_bound
from ..simulation.fastpath import available_backends, fast_simulate
from ..simulation.runner import run
from ..workloads.uniform import UniformWorkload
from .sinks import TraceSink
from .stats import StatsCollector

__all__ = [
    "SCHEMA",
    "FASTPATH_SCHEMA",
    "BASE_SEED",
    "BenchScenario",
    "CORE_SCENARIOS",
    "SMOKE_SCENARIOS",
    "FASTPATH_SCENARIOS",
    "FASTPATH_SMOKE_SCENARIOS",
    "BATCH_SCHEMA",
    "SweepBenchScenario",
    "BATCH_SCENARIOS",
    "BATCH_SMOKE_SCENARIOS",
    "STREAMING_SCHEMA",
    "StreamBenchScenario",
    "STREAMING_SCENARIOS",
    "STREAMING_SMOKE_SCENARIOS",
    "ADVERSARY_SCHEMA",
    "REPACKING_SCHEMA",
    "RepackBenchScenario",
    "REPACKING_SCENARIOS",
    "REPACKING_SMOKE_SCENARIOS",
    "REPACK_FRONTIER_GRID",
    "run_scenario",
    "run_suite",
    "run_fastpath_scenario",
    "run_fastpath_suite",
    "VECTORIZED_SCHEMA",
    "VECTORIZED_TRIALS",
    "VECTORIZED_SMOKE_TRIALS",
    "VECTORIZED_SCENARIO",
    "VECTORIZED_SMOKE_SCENARIO",
    "MEASURE_KERNEL_SPECS",
    "run_vectorized_trials_scenario",
    "run_measure_kernel_cells",
    "run_vectorized_suite",
    "merge_vectorized",
    "NUMBA_SCHEMA",
    "NUMBA_TRIALS",
    "NUMBA_SMOKE_TRIALS",
    "run_numba_suite",
    "merge_numba",
    "run_batch_scenario",
    "run_batch_suite",
    "run_streaming_scenario",
    "run_streaming_suite",
    "run_adversary_suite",
    "run_repacking_scenario",
    "run_repacking_suite",
    "write_bench",
    "merge_fastpath",
    "merge_suite",
    "COMPANION_SUITES",
    "measure_overhead",
    "measure_item_memory",
]

#: Schema tag stamped on every payload; bump on incompatible changes.
SCHEMA = "repro-bench/v1"

#: Schema tag of the twin-engine comparison payload nested under the
#: ``"fastpath"`` key of ``BENCH_core.json``.
FASTPATH_SCHEMA = "repro-bench-fastpath/v1"

#: Schema tag of the batched-sweep comparison payload nested under the
#: ``"batch"`` key of ``BENCH_core.json``.
BATCH_SCHEMA = "repro-bench-batch/v1"

#: Schema tag of the bounded-memory long-stream payload nested under the
#: ``"streaming"`` key of ``BENCH_core.json``.
STREAMING_SCHEMA = "repro-bench-streaming/v1"

#: Schema tag of the adaptive-adversary payload nested under the
#: ``"adversary"`` key of ``BENCH_core.json``.
ADVERSARY_SCHEMA = "repro-bench-adversary/v1"

#: Schema tag of the migration-budget frontier payload nested under the
#: ``"repacking"`` key of ``BENCH_core.json``.
REPACKING_SCHEMA = "repro-bench-repacking/v1"

#: Suite base seed (the paper's arXiv date, matching ExperimentConfig).
BASE_SEED = 20230419


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark cell: a pinned uniform-workload configuration."""

    name: str
    d: int
    n: int
    size: str  # "small" | "medium" | "large" (grouping label)
    mu: int = 10
    T: int = 1000
    B: int = 100
    seed: int = BASE_SEED

    def build_instance(self):
        """Materialise the scenario's (deterministic) instance."""
        gen = UniformWorkload(d=self.d, n=self.n, mu=self.mu, T=self.T, B=self.B,
                              name=self.name)
        return gen.sample_seeded(self.seed)

    def params(self) -> Dict[str, Any]:
        """JSON-ready parameter record."""
        return {"d": self.d, "n": self.n, "mu": self.mu, "T": self.T,
                "B": self.B, "seed": self.seed, "size": self.size}


def _grid(sizes: Dict[str, int], d_values: Sequence[int]) -> List[BenchScenario]:
    out: List[BenchScenario] = []
    for d in d_values:
        for size, n in sizes.items():
            out.append(
                BenchScenario(
                    name=f"uniform-d{d}-{size}",
                    d=d,
                    n=n,
                    size=size,
                    # distinct pinned seed per cell, derived deterministically
                    seed=BASE_SEED + 100_000 * d + n,
                )
            )
    return out


#: The standard suite: 3 dimensions × 3 sizes = 9 scenarios, each run
#: through all seven Any Fit variants.  ``large`` matches the paper's
#: Table 2 sequence length (n = 1000).
CORE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 200, "medium": 600, "large": 1200}, d_values=(1, 2, 4)
)

#: A seconds-fast subset for tests and smoke checks (same schema).
SMOKE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 40, "medium": 80}, d_values=(1, 2)
)

#: The cell used by the overhead protocol (and quoted in docs): the
#: middle of the grid, where per-event work is representative.
MEDIUM_SCENARIO: BenchScenario = next(
    s for s in CORE_SCENARIOS if s.d == 2 and s.size == "medium"
)

#: The twin-engine comparison grid: the three large core cells plus one
#: extra-large high-concurrency sweep cell (``mu = 100`` keeps ~250
#: items resident, so the open list — the classic engine's per-arrival
#: re-stacking cost — is deep).  The xlarge cell is "the largest pinned
#: sweep scenario" the fastpath acceptance speedup is judged on.
FASTPATH_SCENARIOS: List[BenchScenario] = [
    s for s in CORE_SCENARIOS if s.size == "large"
] + [
    BenchScenario(
        name="uniform-d2-xlarge-sweep",
        d=2,
        n=5000,
        size="xlarge",
        mu=100,
        T=1000,
        B=100,
        seed=BASE_SEED + 100_000 * 2 + 5000,
    )
]

#: A seconds-fast fastpath subset for tests and the CI smoke leg.
FASTPATH_SMOKE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 40}, d_values=(1, 2)
)


@dataclass(frozen=True)
class SweepBenchScenario:
    """One batched-sweep benchmark cell: a pinned *multi-instance* sweep.

    Unlike :class:`BenchScenario` (one instance, one algorithm at a
    time) this pins a whole sweep cell — ``m`` instances of one uniform
    workload, fanned out over all seven policies — because the batched
    engine's whole point is amortising per-instance work across that
    fan-out.  Instances derive from ``seed`` exactly as
    :func:`repro.workloads.base.generate_batch` spawns them, so the
    per-unit baseline and the spec-shipped batch path replay identical
    inputs.
    """

    name: str
    d: int
    n: int
    mu: int
    m: int  # instances per cell
    T: int = 1000
    B: int = 100
    seed: int = BASE_SEED
    trials: int = 8  # seeded random_fit trials in the trials sub-bench

    def generator(self) -> UniformWorkload:
        return UniformWorkload(d=self.d, n=self.n, mu=self.mu, T=self.T, B=self.B)

    def build_instances(self):
        """The pinned instance batch (per-unit baseline inputs)."""
        from ..workloads.base import generate_batch

        return generate_batch(self.generator(), self.m, seed=self.seed)

    def build_specs(self):
        """Spec twins of :meth:`build_instances` (batched-path inputs)."""
        from ..simulation.batch import spec_batch

        return spec_batch(self.generator(), self.m, seed=self.seed)

    def params(self) -> Dict[str, Any]:
        """JSON-ready parameter record."""
        return {"d": self.d, "n": self.n, "mu": self.mu, "m": self.m,
                "T": self.T, "B": self.B, "seed": self.seed,
                "trials": self.trials}


def _sweep_grid(
    d_values: Sequence[int], mu_values: Sequence[int], n: int, m: int
) -> List[SweepBenchScenario]:
    return [
        SweepBenchScenario(
            name=f"table2-d{d}-mu{mu}",
            d=d,
            n=n,
            mu=mu,
            m=m,
            seed=BASE_SEED + 1_000_000 * d + mu,
        )
        for d in d_values
        for mu in mu_values
    ]


#: The batched-sweep comparison grid: Table-2-sized cells (n = 1000, the
#: paper's sequence length) across two dimensions and two mean
#: durations.  The ``engine="batch"`` acceptance speedup (>= 3x over
#: per-unit fastpath dispatch) is judged on this grid's totals.
BATCH_SCENARIOS: List[SweepBenchScenario] = _sweep_grid(
    d_values=(1, 2), mu_values=(10, 100), n=1000, m=3
)

#: A seconds-fast batch subset for tests and the CI smoke leg.
BATCH_SMOKE_SCENARIOS: List[SweepBenchScenario] = _sweep_grid(
    d_values=(1, 2), mu_values=(10,), n=120, m=2
)


@dataclass(frozen=True)
class StreamBenchScenario:
    """One bounded-memory streaming cell: a pinned Poisson stream.

    Unlike every other scenario class here, this one never materialises
    an :class:`~repro.core.instance.Instance` — the whole point is that
    the stream is consumed lazily by the
    :class:`~repro.streaming.StreamingEngine`, so memory scales with the
    *peak number of concurrently live items* (≈ ``rate`` × mean
    duration, ~11k for the headline cell) while the stream itself runs
    to millions of items.  The headline cell is a ten-million-event
    (five-million-item) stream dispatched through ``next_fit``, the
    O(1)-per-arrival policy — deep-open-list policies like ``first_fit``
    re-stack the whole open list per arrival and get a shorter cell of
    their own.
    """

    name: str
    policy: str
    d: int
    rate: float
    horizon: float
    seed: int = BASE_SEED

    def workload(self):
        """The pinned Poisson stream source."""
        from ..workloads.poisson import PoissonWorkload

        return PoissonWorkload(d=self.d, rate=self.rate, horizon=self.horizon)

    def params(self) -> Dict[str, Any]:
        """JSON-ready parameter record."""
        return {"policy": self.policy, "d": self.d, "rate": self.rate,
                "horizon": self.horizon, "seed": self.seed}


#: The bounded-memory grid: the ~10M-event next_fit headline plus a
#: ~200k-event first_fit cell (deep open list, representative of the
#: Any Fit scan cost).  Expected item counts are ``rate * horizon``;
#: events are twice that.
STREAMING_SCENARIOS: List[StreamBenchScenario] = [
    StreamBenchScenario(
        name="poisson-d2-rate5000-next_fit",
        policy="next_fit",
        d=2,
        rate=5000.0,
        horizon=1000.0,
        seed=BASE_SEED + 1,
    ),
    StreamBenchScenario(
        name="poisson-d2-rate100-first_fit",
        policy="first_fit",
        d=2,
        rate=100.0,
        horizon=1000.0,
        seed=BASE_SEED + 2,
    ),
]

#: A seconds-fast streaming subset for tests and the CI smoke leg.
STREAMING_SMOKE_SCENARIOS: List[StreamBenchScenario] = [
    StreamBenchScenario(
        name="poisson-d2-rate50-next_fit-smoke",
        policy="next_fit",
        d=2,
        rate=50.0,
        horizon=40.0,
        seed=BASE_SEED + 3,
    ),
    StreamBenchScenario(
        name="poisson-d2-rate50-first_fit-smoke",
        policy="first_fit",
        d=2,
        rate=50.0,
        horizon=40.0,
        seed=BASE_SEED + 4,
    ),
]


@dataclass(frozen=True)
class RepackBenchScenario:
    """One migration-frontier cell: a pinned instance + dispatch policy.

    ``kind`` selects the construction: ``"thm5"``/``"thm6"`` build the
    paper's lower-bound gadgets — the workloads the no-recourse model is
    *provably* bad on, and therefore where bounded repacking must show a
    strict win — and ``"uniform"`` is a churny random workload where the
    improvement is incremental rather than structural.
    """

    name: str
    policy: str
    kind: str  # "thm5" | "thm6" | "uniform"
    d: int = 2
    k: int = 3
    mu: float = 8.0
    n: int = 200
    seed: int = BASE_SEED

    def build(self):
        """Materialise the pinned instance."""
        if self.kind == "thm5":
            from ..workloads.adversarial import theorem5_instance

            return theorem5_instance(d=self.d, k=self.k, mu=self.mu).instance
        if self.kind == "thm6":
            from ..workloads.adversarial import theorem6_instance

            return theorem6_instance(d=self.d, k=self.k, mu=self.mu).instance
        return UniformWorkload(
            d=self.d, n=self.n, mu=self.mu, T=60, B=5, name=self.name
        ).sample_seeded(self.seed)

    def params(self) -> Dict[str, Any]:
        """JSON-ready parameter record."""
        return {"policy": self.policy, "kind": self.kind, "d": self.d,
                "k": self.k, "mu": self.mu, "n": self.n, "seed": self.seed}


#: The (repacker, budget) frontier every repacking scenario sweeps; the
#: budget-0 ``no_repack`` anchor is the no-recourse baseline the other
#: points are measured against.
REPACK_FRONTIER_GRID: List[tuple] = [
    ("no_repack", 0.0),
    ("greedy_consolidate", 1.0),
    ("greedy_consolidate", 2.0),
    ("greedy_consolidate", 4.0),
    ("budgeted_rebalance", 0.25),
    ("budgeted_rebalance", 0.5),
    ("budgeted_rebalance", 1.0),
]

#: The migration-frontier grid: both lower-bound gadget families (where
#: bounded repacking must beat the no-recourse cost strictly) plus a
#: churny uniform cell.
REPACKING_SCENARIOS: List[RepackBenchScenario] = [
    RepackBenchScenario(name="thm5-d2-k3-mu8-first_fit", policy="first_fit",
                        kind="thm5", d=2, k=3, mu=8.0),
    RepackBenchScenario(name="thm6-d2-k4-mu8-next_fit", policy="next_fit",
                        kind="thm6", d=2, k=4, mu=8.0),
    RepackBenchScenario(name="uniform-d2-n200-mu10-first_fit",
                        policy="first_fit", kind="uniform", d=2, n=200,
                        mu=10.0, seed=BASE_SEED + 11),
]

#: A seconds-fast repacking subset for tests and the CI smoke leg.
REPACKING_SMOKE_SCENARIOS: List[RepackBenchScenario] = [
    RepackBenchScenario(name="thm5-d1-k2-mu6-first_fit-smoke",
                        policy="first_fit", kind="thm5", d=1, k=2, mu=6.0),
    RepackBenchScenario(name="thm6-d1-k2-mu6-next_fit-smoke",
                        policy="next_fit", kind="thm6", d=1, k=2, mu=6.0),
    RepackBenchScenario(name="uniform-d2-n60-mu8-first_fit-smoke",
                        policy="first_fit", kind="uniform", d=2, n=60,
                        mu=8.0, seed=BASE_SEED + 12),
]


def run_scenario(
    scenario: BenchScenario,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    sink: Optional[TraceSink] = None,
) -> Dict[str, Any]:
    """Run one scenario through every algorithm; return its JSON record.

    Wall-time per algorithm is the minimum over ``repeats`` instrumented
    runs; counters and costs are taken from the last run (they are
    identical across repeats for the deterministic policies and
    per-seed-stable for Random Fit, which the registry seeds afresh —
    its default seed makes even that deterministic).
    """
    instance = scenario.build_instance()
    lb = height_lower_bound(instance)
    results: Dict[str, Any] = {}
    for name in algorithms:
        best: Optional[Dict[str, Any]] = None
        for _ in range(max(1, repeats)):
            collector = StatsCollector(sink=sink)
            packing = run(make_algorithm(name), instance, collector=collector)
            stats = collector.snapshot()
            cell = {
                "wall_time_s": stats.wall_time_s,
                "dispatch_time_s": stats.dispatch_time_s,
                "events": stats.events,
                "events_per_sec": stats.events_per_sec,
                "cost": packing.cost,
                "cost_ratio": packing.cost / lb,
                "num_bins": packing.num_bins,
                "peak_open_bins": stats.peak_open_bins,
                "candidate_scans": stats.candidate_scans,
                "fit_checks": stats.fit_checks,
            }
            if best is None or cell["wall_time_s"] < best["wall_time_s"]:
                best = cell
        results[name] = best
    record = {
        "name": scenario.name,
        "params": scenario.params(),
        "lower_bound": lb,
        "results": results,
    }
    if sink is not None:
        sink.emit("scenario", record)
    return record


def run_suite(
    scenarios: Sequence[BenchScenario] = tuple(CORE_SCENARIOS),
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    suite: str = "core",
    sink: Optional[TraceSink] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run the whole suite and return the ``BENCH_core.json`` payload.

    ``progress`` is an optional ``callable(str)`` (e.g. ``print``)
    invoked once per finished scenario.
    """
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_scenario(scenario, algorithms, repeats=repeats, sink=sink)
        records.append(record)
        if progress is not None:
            slowest = max(r["wall_time_s"] for r in record["results"].values())
            progress(f"  {scenario.name}: {len(record['results'])} algorithms, "
                     f"slowest {slowest * 1e3:.1f} ms")
    payload = {
        "schema": SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "algorithms": list(algorithms),
        "total_wall_time_s": time.perf_counter() - t0,
        "scenarios": records,
    }
    if sink is not None:
        sink.emit("suite", {k: v for k, v in payload.items() if k != "scenarios"})
    return payload


def run_fastpath_scenario(
    scenario: BenchScenario,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Time classic vs fastpath on one scenario; return its JSON record.

    Per algorithm: the classic engine and every requested fastpath
    backend replay the same pinned instance, wall-time taken as the
    minimum over ``repeats`` uninstrumented runs (pure engine speed, no
    collector).  Every fast packing is checked for assignment equality
    against the classic one — the ``identical`` flag pins the
    twin-engine contract into the perf trajectory file itself.
    """
    backends = tuple(backends) if backends is not None else available_backends()
    instance = scenario.build_instance()
    results: Dict[str, Any] = {}
    for name in algorithms:
        classic_s = float("inf")
        classic = None
        for _ in range(max(1, repeats)):
            algo = make_algorithm(name)
            t0 = time.perf_counter()
            classic = run(algo, instance)
            classic_s = min(classic_s, time.perf_counter() - t0)
        cell: Dict[str, Any] = {
            "classic_s": classic_s,
            "cost": classic.cost,
            "num_bins": classic.num_bins,
        }
        identical = True
        for backend in backends:
            fast_s = float("inf")
            fast = None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                fast = fast_simulate(name, instance, backend=backend)
                fast_s = min(fast_s, time.perf_counter() - t0)
            identical = identical and dict(fast.assignment) == dict(classic.assignment)
            cell[f"fast_{backend}_s"] = fast_s
            cell[f"speedup_{backend}"] = classic_s / fast_s if fast_s > 0 else 0.0
        cell["identical"] = identical
        results[name] = cell

    totals: Dict[str, Any] = {
        "classic_s": sum(c["classic_s"] for c in results.values()),
        "identical": all(c["identical"] for c in results.values()),
    }
    for backend in backends:
        fast_total = sum(c[f"fast_{backend}_s"] for c in results.values())
        totals[f"fast_{backend}_s"] = fast_total
        totals[f"speedup_{backend}"] = (
            totals["classic_s"] / fast_total if fast_total > 0 else 0.0
        )
    return {
        "name": scenario.name,
        "params": scenario.params(),
        "backends": list(backends),
        "results": results,
        "totals": totals,
    }


def run_fastpath_suite(
    scenarios: Sequence[BenchScenario] = tuple(FASTPATH_SCENARIOS),
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
    suite: str = "fastpath",
    progress=None,
) -> Dict[str, Any]:
    """Run the twin-engine comparison suite; return its JSON payload.

    The ``headline`` block repeats the totals of the largest scenario
    (by ``n``) — the number the acceptance gate and the README quote.
    """
    backends = tuple(backends) if backends is not None else available_backends()
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_fastpath_scenario(
            scenario, algorithms, repeats=repeats, backends=backends
        )
        records.append(record)
        if progress is not None:
            speedups = ", ".join(
                f"{b} {record['totals'][f'speedup_{b}']:.1f}x" for b in backends
            )
            progress(
                f"  {scenario.name}: classic {record['totals']['classic_s']:.2f} s, "
                f"speedup {speedups}, identical={record['totals']['identical']}"
            )
    largest = max(records, key=lambda r: r["params"]["n"])
    payload = {
        "schema": FASTPATH_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "backends": list(backends),
        "algorithms": list(algorithms),
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {"scenario": largest["name"], **largest["totals"]},
        "scenarios": records,
    }
    return payload


# ----------------------------------------------------------------------
# the trial-lockstep vectorized suite (nested under fastpath/vectorized)
# ----------------------------------------------------------------------

#: Schema tag of the trial-lockstep comparison payload nested under
#: ``BENCH_core.json``'s ``"fastpath"`` key as ``"vectorized"``.
VECTORIZED_SCHEMA = "repro-bench-fastpath-vectorized/v1"

#: Trial fan-out width of the full vectorized suite: wide enough that
#: per-trial kernel dispatch dominates the sequential baseline (the
#: acceptance gate compares lockstep vs per-trial dispatch at >= 64).
VECTORIZED_TRIALS = 64

#: Seconds-fast width for tests and the CI smoke leg.
VECTORIZED_SMOKE_TRIALS = 8

#: The cell the trial fan-out and measure-kernel comparisons run on.
VECTORIZED_SCENARIO: BenchScenario = next(
    s for s in FASTPATH_SCENARIOS if s.d == 2 and s.size == "large"
)
VECTORIZED_SMOKE_SCENARIO: BenchScenario = next(
    s for s in FASTPATH_SMOKE_SCENARIOS if s.d == 2
)

#: The L1/Lp measure-kernel cells: label -> (fast policy spec,
#: (registry name, constructor kwargs)).
MEASURE_KERNEL_SPECS = (
    ("best_fit_l1", "best_fit:l1", ("best_fit", {"measure": "l1"})),
    ("best_fit_l2", "best_fit:lp:2.0", ("best_fit", {"measure": "lp", "p": 2.0})),
    ("worst_fit_l1", "worst_fit:l1", ("worst_fit", {"measure": "l1"})),
)


def run_vectorized_trials_scenario(
    scenario: BenchScenario,
    n_trials: int = VECTORIZED_TRIALS,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Time an M-trial ``random_fit`` fan-out: lockstep vs per-trial.

    Both timings go through :meth:`BatchRunner.run_trials` — the same
    shared-context dispatch path — differing only in the ``vectorized``
    flag, so the comparison isolates the trial-lockstep kernel from
    per-trial re-dispatch.  The classic baseline is one seeded classic
    run extrapolated to the fan-out width (running the full fan-out
    classically would dominate the whole suite's wall time for no
    information: classic trials are independent and identical in cost).
    The ``identical`` flag requires per-trial cost/bin agreement between
    both dispatch modes *and* bit-identity of the lockstep seed-0
    assignment against the classic engine.
    """
    from ..simulation.batch import BatchRunner
    from ..simulation.fastpath import FastEngine

    instance = scenario.build_instance()
    seeds = list(range(n_trials))
    sequential_s = float("inf")
    seq_units = None
    for _ in range(max(1, repeats)):
        runner = BatchRunner(instance)
        t0 = time.perf_counter()
        seq_units = runner.run_trials(seeds, vectorized=False)
        sequential_s = min(sequential_s, time.perf_counter() - t0)
    vectorized_s = float("inf")
    vec_units = None
    for _ in range(max(1, repeats)):
        runner = BatchRunner(instance)
        t0 = time.perf_counter()
        vec_units = runner.run_trials(seeds, vectorized=True)
        vectorized_s = min(vectorized_s, time.perf_counter() - t0)
    classic_per_trial_s = float("inf")
    classic = None
    for _ in range(max(1, repeats)):
        algo = make_algorithm("random_fit", seed=seeds[0])
        t0 = time.perf_counter()
        classic = run(algo, instance)
        classic_per_trial_s = min(classic_per_trial_s, time.perf_counter() - t0)
    classic_extrapolated_s = classic_per_trial_s * n_trials
    identical = (
        [(u.cost, u.num_bins) for u in seq_units]
        == [(u.cost, u.num_bins) for u in vec_units]
    )
    lock0 = FastEngine(instance, "random_fit", backend="vectorized").run_trials(
        seeds[:1]
    )[0]
    identical = identical and lock0 == dict(classic.assignment)
    return {
        "name": scenario.name,
        "params": scenario.params(),
        "n_trials": n_trials,
        "sequential_s": sequential_s,
        "vectorized_s": vectorized_s,
        "classic_per_trial_s": classic_per_trial_s,
        "classic_extrapolated_s": classic_extrapolated_s,
        "speedup_vs_sequential": (
            sequential_s / vectorized_s if vectorized_s > 0 else 0.0
        ),
        "speedup_vs_classic": (
            classic_extrapolated_s / vectorized_s if vectorized_s > 0 else 0.0
        ),
        "identical": identical,
    }


def run_measure_kernel_cells(
    scenario: BenchScenario, repeats: int = 3
) -> Dict[str, Any]:
    """Time classic vs the numpy fast kernel for the L1/Lp measure cells.

    The measure variants were fast-ineligible before the L1/Lp kernels
    landed; these cells pin their speedup (and bit-identity) into the
    trajectory file the same way the default-measure grid does.
    """
    from ..simulation.fastpath import FastEngine

    instance = scenario.build_instance()
    cells: Dict[str, Any] = {}
    for label, spec, (base, kwargs) in MEASURE_KERNEL_SPECS:
        classic_s = float("inf")
        classic = None
        for _ in range(max(1, repeats)):
            algo = make_algorithm(base, **kwargs)
            t0 = time.perf_counter()
            classic = run(algo, instance)
            classic_s = min(classic_s, time.perf_counter() - t0)
        fast_s = float("inf")
        fast = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fast = FastEngine(instance, spec).run()
            fast_s = min(fast_s, time.perf_counter() - t0)
        cells[label] = {
            "spec": spec,
            "classic_s": classic_s,
            "fast_numpy_s": fast_s,
            "speedup_numpy": classic_s / fast_s if fast_s > 0 else 0.0,
            "cost": classic.cost,
            "num_bins": classic.num_bins,
            "identical": dict(fast.assignment) == dict(classic.assignment),
        }
    return cells


def run_vectorized_suite(
    trials_scenario: Optional[BenchScenario] = None,
    measure_scenario: Optional[BenchScenario] = None,
    n_trials: int = VECTORIZED_TRIALS,
    repeats: int = 3,
    suite: str = "fastpath-vectorized",
    progress=None,
) -> Dict[str, Any]:
    """Run the trial-lockstep + measure-kernel suite; return its payload."""
    trials_scenario = trials_scenario or VECTORIZED_SCENARIO
    measure_scenario = measure_scenario or trials_scenario
    t0 = time.perf_counter()
    trials = run_vectorized_trials_scenario(
        trials_scenario, n_trials=n_trials, repeats=repeats
    )
    if progress is not None:
        progress(
            f"  {trials['name']}: {n_trials} trials, lockstep "
            f"{trials['vectorized_s']:.2f} s vs per-trial "
            f"{trials['sequential_s']:.2f} s "
            f"({trials['speedup_vs_sequential']:.2f}x), "
            f"classic-extrapolated {trials['classic_extrapolated_s']:.1f} s "
            f"({trials['speedup_vs_classic']:.1f}x), "
            f"identical={trials['identical']}"
        )
    measure = run_measure_kernel_cells(measure_scenario, repeats=repeats)
    if progress is not None:
        for label, cell in measure.items():
            progress(
                f"  {measure_scenario.name} {label}: classic "
                f"{cell['classic_s']:.2f} s, fast {cell['fast_numpy_s']:.3f} s "
                f"({cell['speedup_numpy']:.1f}x), "
                f"identical={cell['identical']}"
            )
    identical = trials["identical"] and all(
        c["identical"] for c in measure.values()
    )
    return {
        "schema": VECTORIZED_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "n_trials": n_trials,
        "trials": trials,
        "measure_kernels": measure,
        "headline": {
            "scenario": trials["name"],
            "n_trials": n_trials,
            "speedup_vs_sequential": trials["speedup_vs_sequential"],
            "speedup_vs_classic": trials["speedup_vs_classic"],
            "identical": identical,
        },
        "total_wall_time_s": time.perf_counter() - t0,
    }


def merge_vectorized(
    core_payload: Dict[str, Any], vectorized_payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Nest a vectorized suite payload under ``fastpath.vectorized``.

    The trial-lockstep record rides inside the existing ``"fastpath"``
    block of ``BENCH_core.json`` (creating it when absent) so the
    twin-engine trajectory stays one sub-document.
    """
    merged = dict(core_payload)
    fastpath = dict(merged.get("fastpath") or {})
    fastpath["vectorized"] = vectorized_payload
    merged["fastpath"] = fastpath
    return merged


# ----------------------------------------------------------------------
# the numba JIT suite (nested under fastpath/numba)
# ----------------------------------------------------------------------

#: Schema tag of the JIT-kernel comparison payload nested under
#: ``BENCH_core.json``'s ``"fastpath"`` key as ``"numba"``.
NUMBA_SCHEMA = "repro-bench-fastpath-numba/v1"

#: Trial fan-out width of the numba trial-lockstep cell.
NUMBA_TRIALS = 64

#: Seconds-fast width for tests and the CI smoke leg.
NUMBA_SMOKE_TRIALS = 8


def run_numba_suite(
    scenarios: Optional[Sequence[BenchScenario]] = None,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    n_trials: int = NUMBA_TRIALS,
    repeats: int = 3,
    suite: str = "fastpath-numba",
    progress=None,
) -> Dict[str, Any]:
    """Run the JIT-kernel comparison suite; return its JSON payload.

    When numba is importable the suite first pays the one-off JIT cost
    through an explicit :func:`~repro.simulation.kernels_numba.warmup`
    — recorded separately as ``jit_compile_s``, never folded into the
    per-run timings — then reuses :func:`run_fastpath_scenario` with
    ``backends=("numpy", "numba")`` so every cell carries both the
    classic speedup and the numba-vs-numpy ratio, plus a numba
    trial-lockstep cell mirroring the vectorized one.

    When numba is missing (or disabled via ``REPRO_NUMBA_DISABLE``) the
    payload is an honest stub — ``{"available": false, "reason": ...}``
    — never fabricated timings, so a re-run on a numba-less host leaves
    an auditable record instead of silently skipping the suite.  The
    ``pyfunc_mode`` flag marks runs taken with ``REPRO_NUMBA_PYFUNC``
    (uncompiled kernels; timings are then plumbing checks, not perf).
    """
    from ..simulation import kernels_numba as _knl
    from ..simulation.fastpath import FastEngine

    t0 = time.perf_counter()
    base: Dict[str, Any] = {
        "schema": NUMBA_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if not _knl.kernels_ready():
        base.update(
            available=False,
            reason=_knl.unavailable_reason(),
            total_wall_time_s=time.perf_counter() - t0,
        )
        if progress is not None:
            progress(f"  numba unavailable: {base['reason']}")
        return base
    jit_compile_s = _knl.warmup()
    scenarios = (
        tuple(scenarios) if scenarios is not None else tuple(FASTPATH_SCENARIOS)
    )
    records = []
    for scenario in scenarios:
        record = run_fastpath_scenario(
            scenario, algorithms, repeats=repeats, backends=("numpy", "numba")
        )
        events = 2 * record["params"]["n"]
        for cell in record["results"].values():
            cell["events"] = events
            nmb = cell["fast_numba_s"]
            cell["events_per_sec_numba"] = events / nmb if nmb > 0 else 0.0
            cell["speedup_vs_numpy"] = (
                cell["fast_numpy_s"] / nmb if nmb > 0 else 0.0
            )
        tot = record["totals"]
        tot["speedup_vs_numpy"] = (
            tot["fast_numpy_s"] / tot["fast_numba_s"]
            if tot["fast_numba_s"] > 0
            else 0.0
        )
        tot["events_per_sec_numba"] = (
            events * len(record["results"]) / tot["fast_numba_s"]
            if tot["fast_numba_s"] > 0
            else 0.0
        )
        records.append(record)
        if progress is not None:
            progress(
                f"  {record['name']}: numba {tot['speedup_numba']:.1f}x classic, "
                f"{tot['speedup_vs_numpy']:.1f}x numpy, "
                f"{tot['events_per_sec_numba']:.0f} events/s, "
                f"identical={tot['identical']}"
            )
    largest = max(records, key=lambda r: r["params"]["n"])

    # trial fan-out: one batched replay_trials call vs per-seed numpy runs
    instance = next(
        s for s in scenarios if s.name == largest["name"]
    ).build_instance()
    seeds = list(range(n_trials))
    numba_trials_s = float("inf")
    nmb_units = None
    for _ in range(max(1, repeats)):
        eng = FastEngine(instance, "random_fit", backend="numba")
        t1 = time.perf_counter()
        nmb_units = eng.run_trials(seeds)
        numba_trials_s = min(numba_trials_s, time.perf_counter() - t1)
    numpy_trials_s = float("inf")
    ref_units = None
    for _ in range(max(1, repeats)):
        eng = FastEngine(instance, "random_fit", backend="numpy")
        t1 = time.perf_counter()
        ref_units = eng.run_trials(seeds)
        numpy_trials_s = min(numpy_trials_s, time.perf_counter() - t1)
    trials = {
        "scenario": largest["name"],
        "n_trials": n_trials,
        "numba_s": numba_trials_s,
        "numpy_s": numpy_trials_s,
        "speedup_vs_numpy": (
            numpy_trials_s / numba_trials_s if numba_trials_s > 0 else 0.0
        ),
        "identical": nmb_units == ref_units,
    }
    if progress is not None:
        progress(
            f"  trials x{n_trials}: numba {numba_trials_s:.2f} s vs numpy "
            f"{numpy_trials_s:.2f} s ({trials['speedup_vs_numpy']:.1f}x), "
            f"identical={trials['identical']}"
        )

    base.update(
        available=True,
        pyfunc_mode=_knl.pyfunc_mode(),
        jit_compile_s=jit_compile_s,
        repeats=repeats,
        algorithms=list(algorithms),
        scenarios=records,
        trials=trials,
        headline={
            "scenario": largest["name"],
            "jit_compile_s": jit_compile_s,
            "speedup_numba": largest["totals"]["speedup_numba"],
            "speedup_vs_numpy": largest["totals"]["speedup_vs_numpy"],
            "events_per_sec_numba": largest["totals"]["events_per_sec_numba"],
            "identical": largest["totals"]["identical"]
            and trials["identical"],
        },
        total_wall_time_s=time.perf_counter() - t0,
    )
    return base


def merge_numba(
    core_payload: Dict[str, Any], numba_payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Nest a numba suite payload under ``fastpath.numba``.

    Mirrors :func:`merge_vectorized`: the JIT record rides inside the
    existing ``"fastpath"`` block of ``BENCH_core.json`` (creating it
    when absent) so the twin-engine trajectory stays one sub-document.
    """
    merged = dict(core_payload)
    fastpath = dict(merged.get("fastpath") or {})
    fastpath["numba"] = numba_payload
    merged["fastpath"] = fastpath
    return merged


def _unit_key_tuples(sweep: Dict[str, Any]) -> Dict[str, List[tuple]]:
    """Comparable aggregate tuples of one sweep result mapping."""
    return {
        name: [(r.instance_index, r.cost, r.num_bins, r.lower_bound) for r in units]
        for name, units in sweep.items()
    }


def run_batch_scenario(
    scenario: SweepBenchScenario,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
) -> Dict[str, Any]:
    """Time per-unit fastpath dispatch vs batched dispatch on one cell.

    Both sides drive the real sweep entry points end to end,
    serialisation included: the baseline is
    ``parallel_sweep(processes=0, engine="fast")`` — one worker unit per
    (algorithm, instance), each re-reading the instance dict, rebuilding
    the event index, and recomputing the lower bound — and the batched
    side is ``parallel_sweep(processes=0, engine="batch")`` fed compact
    :class:`~repro.simulation.batch.InstanceSpec` sources (the in-worker
    instance cache is cleared before every repeat, so regeneration cost
    is *included*).  Wall-time is the minimum over ``repeats``; the
    ``identical`` flag records that the two paths produced bit-identical
    aggregates, pinning the contract into the trajectory file.

    A ``trials`` sub-benchmark times ``m`` seeded ``random_fit`` trials
    dispatched as fresh per-unit engines versus one
    :meth:`~repro.simulation.batch.BatchRunner.run_trials` invocation on
    the scenario's first instance.
    """
    from ..simulation.batch import BatchRunner, clear_instance_cache
    from ..simulation.fastpath import FastEngine
    from ..simulation.parallel import parallel_sweep

    instances = scenario.build_instances()
    specs = scenario.build_specs()

    per_unit_s = float("inf")
    per_unit = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        per_unit = parallel_sweep(
            list(algorithms), instances, processes=0, engine="fast"
        )
        per_unit_s = min(per_unit_s, time.perf_counter() - t0)

    batch_s = float("inf")
    batched = None
    for _ in range(max(1, repeats)):
        clear_instance_cache()
        t0 = time.perf_counter()
        batched = parallel_sweep(
            list(algorithms), specs, processes=0, engine="batch"
        )
        batch_s = min(batch_s, time.perf_counter() - t0)

    identical = _unit_key_tuples(per_unit) == _unit_key_tuples(batched)

    # trials sub-bench: M seeded random_fit replays of the first instance
    first = instances[0]
    seeds = list(range(scenario.trials))
    trials_unit_s = float("inf")
    unit_trials = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        unit_trials = [FastEngine(first, "random_fit", seed=s).run() for s in seeds]
        trials_unit_s = min(trials_unit_s, time.perf_counter() - t0)
    trials_batch_s = float("inf")
    batch_trials = None
    for _ in range(max(1, repeats)):
        runner = BatchRunner(first)
        t0 = time.perf_counter()
        batch_trials = runner.run_trials(seeds)
        trials_batch_s = min(trials_batch_s, time.perf_counter() - t0)
    trials_identical = len(batch_trials) == len(unit_trials) and all(
        u.cost == p.cost and u.num_bins == p.num_bins
        for u, p in zip(batch_trials, unit_trials)
    )

    return {
        "name": scenario.name,
        "params": scenario.params(),
        "units": len(algorithms) * scenario.m,
        "per_unit_s": per_unit_s,
        "batch_s": batch_s,
        "speedup": per_unit_s / batch_s if batch_s > 0 else 0.0,
        "identical": identical,
        "trials": {
            "seeds": len(seeds),
            "per_unit_s": trials_unit_s,
            "batch_s": trials_batch_s,
            "speedup": trials_unit_s / trials_batch_s if trials_batch_s > 0 else 0.0,
            "identical": trials_identical,
        },
    }


def run_batch_suite(
    scenarios: Sequence[SweepBenchScenario] = tuple(BATCH_SCENARIOS),
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    suite: str = "batch",
    progress=None,
) -> Dict[str, Any]:
    """Run the batched-sweep comparison suite; return its JSON payload.

    The ``headline`` block aggregates the grid's totals — summed
    per-unit and batched wall-times and the resulting overall speedup
    (the >= 3x acceptance number) — and ``item_memory`` records the
    per-object footprint the ``__slots__`` satellite buys on hot
    per-event objects (:func:`measure_item_memory`).
    """
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_batch_scenario(scenario, algorithms, repeats=repeats)
        records.append(record)
        if progress is not None:
            progress(
                f"  {record['name']}: per-unit {record['per_unit_s'] * 1e3:.1f} ms, "
                f"batch {record['batch_s'] * 1e3:.1f} ms, "
                f"speedup {record['speedup']:.1f}x, "
                f"identical={record['identical']}"
            )
    per_unit_total = sum(r["per_unit_s"] for r in records)
    batch_total = sum(r["batch_s"] for r in records)
    payload = {
        "schema": BATCH_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "algorithms": list(algorithms),
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {
            "per_unit_s": per_unit_total,
            "batch_s": batch_total,
            "speedup": per_unit_total / batch_total if batch_total > 0 else 0.0,
            "identical": all(r["identical"] for r in records),
        },
        "item_memory": measure_item_memory(),
        "scenarios": records,
    }
    return payload


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set size in MiB (0.0 if unknown).

    ``ru_maxrss`` is a high-water mark for the whole process, so on a
    suite of several scenarios only the *first* (largest) cell's number
    is attributable; the suite runner orders scenarios largest-first and
    records the per-scenario delta-free value as-is, documented as a
    process peak.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    rss = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # bytes there, KiB on Linux
        rss /= 1024.0
    return rss / 1024.0


def run_streaming_scenario(
    scenario: StreamBenchScenario,
    repeats: int = 1,
    flush_every: int = 1_000_000,
) -> Dict[str, Any]:
    """Run one bounded-memory stream end to end; return its JSON record.

    A fresh :class:`~repro.streaming.StreamingEngine` consumes the
    scenario's lazily generated Poisson stream with
    ``record_assignment=False`` — *nothing* on this path is O(stream
    length): no instance, no item list, no assignment map.  Wall-time is
    the minimum over ``repeats`` (default 1 — the headline cell runs
    minutes); counters come from the last run and are seed-stable.
    ``peak_rss_mb`` is the process high-water mark after the run, the
    operational "does 10M events fit in memory" number.
    """
    from ..streaming import StreamingEngine

    workload = scenario.workload()
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeats)):
        algo = make_algorithm(scenario.policy)
        engine = StreamingEngine(
            algo, workload.capacity, record_assignment=False,
            flush_every=flush_every,
        )
        t0 = time.perf_counter()
        result = engine.run(workload.stream_seeded(scenario.seed))
        wall = time.perf_counter() - t0
        cell = {
            "wall_time_s": wall,
            "items": result.arrivals,
            "events": result.events,
            "events_per_sec": result.events / wall if wall > 0 else 0.0,
            "cost": result.cost,
            "bins_opened": result.bins_opened,
            "peak_open_bins": result.peak_open_bins,
            "peak_live_items": result.peak_live_items,
            "flushes": result.flushes,
            "peak_rss_mb": _peak_rss_mb(),
        }
        if best is None or cell["wall_time_s"] < best["wall_time_s"]:
            best = cell
    return {"name": scenario.name, "params": scenario.params(), **best}


def run_streaming_suite(
    scenarios: Sequence[StreamBenchScenario] = tuple(STREAMING_SCENARIOS),
    repeats: int = 1,
    suite: str = "streaming",
    progress=None,
) -> Dict[str, Any]:
    """Run the bounded-memory suite; return its JSON payload.

    The ``headline`` block repeats the largest cell (by event count):
    events/sec throughput, the peak live-item count (the memory model's
    O(live) bound made measurable — compare it against ``items`` to see
    the stream was never materialised), and the process peak RSS.
    """
    t0 = time.perf_counter()
    records = []
    # largest first, so the process-peak RSS number is attributable to
    # the headline cell (see _peak_rss_mb)
    ordered = sorted(
        scenarios, key=lambda s: s.rate * s.horizon, reverse=True
    )
    for scenario in ordered:
        record = run_streaming_scenario(scenario, repeats=repeats)
        records.append(record)
        if progress is not None:
            progress(
                f"  {record['name']}: {record['events']} events in "
                f"{record['wall_time_s']:.1f} s "
                f"({record['events_per_sec']:.0f}/s), "
                f"peak live {record['peak_live_items']} of "
                f"{record['items']} items, "
                f"rss {record['peak_rss_mb']:.0f} MiB"
            )
    largest = max(records, key=lambda r: r["events"])
    payload = {
        "schema": STREAMING_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {
            "scenario": largest["name"],
            "events": largest["events"],
            "items": largest["items"],
            "events_per_sec": largest["events_per_sec"],
            "peak_live_items": largest["peak_live_items"],
            "peak_open_bins": largest["peak_open_bins"],
            "peak_rss_mb": largest["peak_rss_mb"],
        },
        "scenarios": records,
    }
    return payload


def run_adversary_suite(
    scenarios=None,
    repeats: int = 1,
    suite: str = "adversary",
    progress=None,
) -> Dict[str, Any]:
    """Time the adaptive-adversary must-exceed scenario grid.

    Each cell records the induced-instance size, the certified ratio and
    the fraction of the theoretical bound it achieved, plus wall time
    (minimum over ``repeats`` — only the timing fields vary between
    runs; the ratios are seed-pinned and exactly reproducible).  The
    ``headline`` block carries the tightest bounded-ratio margin (the
    scenario closest to its required fraction) and the largest amplifier
    ratio — the numbers a perf/correctness trajectory should watch.
    """
    from ..adversaries.scenarios import MUST_EXCEED_SCENARIOS, run_scenario as _run_sc

    if scenarios is None:
        scenarios = MUST_EXCEED_SCENARIOS
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        best = None
        for _ in range(max(1, repeats)):
            s0 = time.perf_counter()
            outcome = _run_sc(scenario, seed=0)
            wall = time.perf_counter() - s0
            if best is None or wall < best["wall_time_s"]:
                res = outcome.result
                finite = res.theoretical_bound != float("inf")
                best = {
                    "name": scenario.label,
                    "attack": scenario.attack,
                    "policy": scenario.policy,
                    "mu": scenario.mu,
                    "d": scenario.d,
                    "items": res.n,
                    "certified_ratio": res.certified_ratio,
                    "required": outcome.required,
                    # None for the unboundedness attacks (JSON has no inf)
                    "theoretical_bound": res.theoretical_bound if finite else None,
                    "fraction_of_bound": res.fraction_of_bound if finite else None,
                    "passed": outcome.passed,
                    "replay_identical": res.replay_identical,
                    "wall_time_s": wall,
                }
        records.append(best)
        if progress is not None:
            progress(
                f"  {best['name']}: ratio {best['certified_ratio']:.3f} "
                f"(required {best['required']:.3f}), {best['items']} items "
                f"in {best['wall_time_s']:.2f} s"
            )
    bounded = [r for r in records if r["theoretical_bound"] is not None]
    unbounded = [r for r in records if r["theoretical_bound"] is None]
    tightest = min(
        bounded, key=lambda r: r["certified_ratio"] / r["required"], default=None
    )
    amplifier = max(
        unbounded, key=lambda r: r["certified_ratio"], default=None
    )
    return {
        "schema": ADVERSARY_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {
            "scenarios": len(records),
            "all_passed": all(r["passed"] for r in records),
            "tightest_scenario": tightest["name"] if tightest else None,
            "tightest_margin": (
                tightest["certified_ratio"] / tightest["required"]
                if tightest else None
            ),
            "max_amplifier_ratio": (
                amplifier["certified_ratio"] if amplifier else None
            ),
        },
        "scenarios": records,
    }


def run_repacking_scenario(
    scenario: RepackBenchScenario, repeats: int = 1
) -> Dict[str, Any]:
    """Sweep one scenario's cost-vs-migration frontier; return its record.

    The whole :data:`REPACK_FRONTIER_GRID` runs through a single
    :class:`~repro.simulation.batch.BatchRunner` pass using the reserved
    ``"_repack"`` entry key (one instance, one shared lower bound, one
    amortised context), so the bench exercises exactly the wiring sweeps
    use.  Two zero-migration yardsticks anchor the frontier from below:
    the offline :func:`~repro.optimum.offline_assignment.greedy_assignment`
    (full hindsight, no moves ever) and the clairvoyant
    :class:`~repro.algorithms.clairvoyant.DurationClassifiedFirstFit`
    (knows durations, still online and no-recourse).  Wall-time is the
    minimum over ``repeats``; every other field is seed-pinned.
    """
    from ..algorithms.clairvoyant import DurationClassifiedFirstFit
    from ..optimum.offline_assignment import greedy_assignment
    from ..simulation.batch import BatchRunner

    instance = scenario.build()
    entries = [
        (scenario.policy, {"_repack": {"policy": repacker, "budget": budget}})
        for repacker, budget in REPACK_FRONTIER_GRID
    ]
    best_wall: Optional[float] = None
    units = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        runner = BatchRunner(instance)
        units = runner.run_units(entries, collect_stats=True)
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    baseline = next(
        u.cost for (rep, _), u in zip(REPACK_FRONTIER_GRID, units)
        if rep == "no_repack"
    )
    frontier = [
        {
            "repacker": repacker,
            "budget": budget,
            "cost": unit.cost,
            "num_bins": unit.num_bins,
            "moves": unit.stats.migrations if unit.stats is not None else None,
            "cost_vs_no_recourse": unit.cost / baseline if baseline > 0 else 1.0,
        }
        for (repacker, budget), unit in zip(REPACK_FRONTIER_GRID, units)
    ]
    best = min(frontier, key=lambda f: f["cost"])
    offline = greedy_assignment(instance)
    clairvoyant = run(DurationClassifiedFirstFit(), instance)
    return {
        "name": scenario.name,
        "params": scenario.params(),
        "items": instance.n,
        "wall_time_s": best_wall,
        "no_recourse_cost": baseline,
        "offline_greedy_cost": offline.cost,
        "clairvoyant_cost": clairvoyant.cost,
        "lower_bound": units[0].lower_bound,
        "frontier": frontier,
        "best": {
            "repacker": best["repacker"],
            "budget": best["budget"],
            "cost": best["cost"],
            "improvement": (
                (baseline - best["cost"]) / baseline if baseline > 0 else 0.0
            ),
        },
    }


def run_repacking_suite(
    scenarios: Sequence[RepackBenchScenario] = tuple(REPACKING_SCENARIOS),
    repeats: int = 1,
    suite: str = "repacking",
    progress=None,
) -> Dict[str, Any]:
    """Run the migration-frontier suite; return its JSON payload.

    The ``headline`` reports whether every lower-bound gadget scenario
    (``thm5``/``thm6``) achieved a *strict* cost improvement under some
    budgeted policy — the structural claim of the repacking subsystem:
    the workloads that force the no-recourse lower bounds stop being
    worst cases once bounded migration is allowed.  ``gadgets_improved``
    is the pass/fail gate the CLI turns into an exit code.
    """
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_repacking_scenario(scenario, repeats=repeats)
        records.append(record)
        if progress is not None:
            best = record["best"]
            progress(
                f"  {record['name']}: no-recourse {record['no_recourse_cost']:.1f} "
                f"-> best {best['cost']:.1f} "
                f"({best['repacker']}:{best['budget']:g}, "
                f"{best['improvement']:.0%} saved), offline "
                f"{record['offline_greedy_cost']:.1f}"
            )
    gadgets = [r for r in records if r["params"]["kind"] in ("thm5", "thm6")]
    gadgets_improved = bool(gadgets) and all(
        r["best"]["cost"] < r["no_recourse_cost"] - 1e-9 for r in gadgets
    )
    biggest = max(records, key=lambda r: r["best"]["improvement"])
    return {
        "schema": REPACKING_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {
            "scenarios": len(records),
            "gadgets_improved": gadgets_improved,
            "biggest_improvement": biggest["best"]["improvement"],
            "biggest_improvement_scenario": biggest["name"],
        },
        "scenarios": records,
    }


def measure_item_memory(count: int = 10_000) -> Dict[str, Any]:
    """Per-object memory of the slotted :class:`~repro.core.items.Item`.

    Allocates ``count`` items and an equally sized batch of a
    structurally identical *dict-backed* twin dataclass under
    ``tracemalloc`` and reports bytes per object for both, plus the
    saving.  On interpreters without dataclass ``slots=True`` support
    (< 3.10, where ``DATACLASS_SLOTS`` degrades to a no-op) the two
    numbers simply come out equal — recorded as a zero saving, never an
    error.
    """
    import tracemalloc
    from dataclasses import dataclass as _dataclass, field as _field

    import numpy as _np

    from ..core.items import Item
    from ..core.vectors import as_size_vector

    @_dataclass(frozen=True)
    class _DictItem:
        # Item minus __slots__: same fields, same per-instance array
        # copy in __post_init__, so the measured delta is purely the
        # object-layout (__dict__) cost.
        arrival: float
        departure: float
        size: Any = _field(repr=False)
        uid: int = 0

        def __post_init__(self) -> None:
            object.__setattr__(self, "size", as_size_vector(self.size))

    size = _np.ones(2)

    def _measure(factory) -> int:
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        objs = [factory(i) for i in range(count)]
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del objs
        return max(0, after - before)

    slotted = _measure(lambda i: Item(uid=i, size=size, arrival=0.0, departure=1.0))
    dict_backed = _measure(
        lambda i: _DictItem(uid=i, size=size, arrival=0.0, departure=1.0)
    )
    return {
        "count": count,
        "slots_bytes_per_item": slotted / count,
        "dict_bytes_per_item": dict_backed / count,
        "savings_bytes_per_item": max(0.0, (dict_backed - slotted) / count),
        "slots_enabled": not hasattr(
            Item(uid=0, size=size, arrival=0.0, departure=1.0), "__dict__"
        ),
    }


def merge_fastpath(core_payload: Dict[str, Any], fastpath_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Attach a fastpath suite payload to a core suite payload.

    ``BENCH_core.json`` stays one file: the core grid at the top level
    (unchanged schema) with the twin-engine comparison nested under
    ``"fastpath"``, so the perf trajectory records both engines side by
    side.  Kept as the historical alias of
    ``merge_suite(core, "fastpath", payload)``.
    """
    return merge_suite(core_payload, "fastpath", fastpath_payload)


#: Every companion suite that nests under the core ``BENCH_core.json``
#: payload.  Core re-runs (CLI and ``benchmarks/harness.py``) carry
#: these keys over from the existing file so re-running one suite never
#: clobbers another's trajectory.
COMPANION_SUITES = ("fastpath", "batch", "streaming", "adversary", "repacking")


def merge_suite(
    core_payload: Dict[str, Any], key: str, payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Attach a companion suite payload under ``key`` of the core payload.

    Generalisation of :func:`merge_fastpath` for the growing family of
    nested suites (:data:`COMPANION_SUITES`): the core grid stays at
    the top level with its unchanged schema, and each companion nests
    under its own key, so re-running one suite never clobbers another's
    trajectory.
    """
    merged = dict(core_payload)
    merged[key] = payload
    return merged


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Write a suite payload as pretty-printed JSON (trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def measure_overhead(
    scenario: Optional[BenchScenario] = None,
    algorithm: str = "move_to_front",
    repeats: int = 5,
) -> Dict[str, Any]:
    """Measure the cost of the instrumented engine loop.

    Runs ``repeats`` *interleaved pairs* of a plain run
    (``collector=None`` — the default every test and experiment uses)
    and an instrumented run with the default no-op sink, on the
    harness's medium scenario, and reports the minimum of each side plus
    the relative overhead.  Interleaving pairs (rather than timing the
    two sides back to back) cancels clock-frequency and cache drift on
    shared machines; the clock is **process CPU time**, not wall time,
    so scheduler preemption on loaded machines does not pollute a
    sub-millisecond difference measurement.  The documented budget is
    2%: perf PRs touching the engine should re-run this.
    """
    scenario = scenario or MEDIUM_SCENARIO
    instance = scenario.build_instance()

    clock = time.process_time
    plain_s = instrumented_s = float("inf")
    for _ in range(max(1, repeats)):
        algo = make_algorithm(algorithm)
        t0 = clock()
        run(algo, instance)
        plain_s = min(plain_s, clock() - t0)

        algo = make_algorithm(algorithm)
        collector = StatsCollector()
        t0 = clock()
        run(algo, instance, collector=collector)
        instrumented_s = min(instrumented_s, clock() - t0)
    return {
        "scenario": scenario.name,
        "algorithm": algorithm,
        "repeats": repeats,
        "plain_s": plain_s,
        "instrumented_s": instrumented_s,
        "overhead_frac": instrumented_s / plain_s - 1.0 if plain_s > 0 else 0.0,
    }
