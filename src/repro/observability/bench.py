"""The pinned-seed perf-baseline suite behind ``BENCH_core.json``.

This module defines the standardized benchmark every perf PR is judged
against: a grid of uniform workloads (``d ∈ {1, 2, 4}`` × small /
medium / large ``n``) run through all seven Any Fit variants of the
paper's Section 7 study, with wall-time, event throughput, hot-path
counters, and cost ratios recorded per (scenario, algorithm) cell.

Entry points
------------
* ``python -m repro bench`` — the CLI wrapper;
* ``benchmarks/harness.py`` — the repo-root script that writes
  ``BENCH_core.json`` (the perf trajectory file);
* :func:`run_suite` / :func:`run_scenario` — the library API;
* :func:`measure_overhead` — the instrumentation-overhead protocol
  (plain engine loop vs. instrumented loop with the default no-op
  sink), used to enforce the documented <= 2% budget.

Reproducibility
---------------
Scenario seeds are pinned (derived deterministically from the suite
base seed), wall-times are the **minimum** over ``repeats`` runs (the
standard low-noise estimator for short benchmarks), and all counter
fields are exactly reproducible — so two harness runs differ only in
the timing fields.  See docs/observability.md for how to read and
update the trajectory file.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..algorithms.registry import PAPER_ALGORITHMS, make_algorithm
from ..optimum.lower_bounds import height_lower_bound
from ..simulation.fastpath import available_backends, fast_simulate
from ..simulation.runner import run
from ..workloads.uniform import UniformWorkload
from .sinks import TraceSink
from .stats import StatsCollector

__all__ = [
    "SCHEMA",
    "FASTPATH_SCHEMA",
    "BASE_SEED",
    "BenchScenario",
    "CORE_SCENARIOS",
    "SMOKE_SCENARIOS",
    "FASTPATH_SCENARIOS",
    "FASTPATH_SMOKE_SCENARIOS",
    "run_scenario",
    "run_suite",
    "run_fastpath_scenario",
    "run_fastpath_suite",
    "write_bench",
    "merge_fastpath",
    "measure_overhead",
]

#: Schema tag stamped on every payload; bump on incompatible changes.
SCHEMA = "repro-bench/v1"

#: Schema tag of the twin-engine comparison payload nested under the
#: ``"fastpath"`` key of ``BENCH_core.json``.
FASTPATH_SCHEMA = "repro-bench-fastpath/v1"

#: Suite base seed (the paper's arXiv date, matching ExperimentConfig).
BASE_SEED = 20230419


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark cell: a pinned uniform-workload configuration."""

    name: str
    d: int
    n: int
    size: str  # "small" | "medium" | "large" (grouping label)
    mu: int = 10
    T: int = 1000
    B: int = 100
    seed: int = BASE_SEED

    def build_instance(self):
        """Materialise the scenario's (deterministic) instance."""
        gen = UniformWorkload(d=self.d, n=self.n, mu=self.mu, T=self.T, B=self.B,
                              name=self.name)
        return gen.sample_seeded(self.seed)

    def params(self) -> Dict[str, Any]:
        """JSON-ready parameter record."""
        return {"d": self.d, "n": self.n, "mu": self.mu, "T": self.T,
                "B": self.B, "seed": self.seed, "size": self.size}


def _grid(sizes: Dict[str, int], d_values: Sequence[int]) -> List[BenchScenario]:
    out: List[BenchScenario] = []
    for d in d_values:
        for size, n in sizes.items():
            out.append(
                BenchScenario(
                    name=f"uniform-d{d}-{size}",
                    d=d,
                    n=n,
                    size=size,
                    # distinct pinned seed per cell, derived deterministically
                    seed=BASE_SEED + 100_000 * d + n,
                )
            )
    return out


#: The standard suite: 3 dimensions × 3 sizes = 9 scenarios, each run
#: through all seven Any Fit variants.  ``large`` matches the paper's
#: Table 2 sequence length (n = 1000).
CORE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 200, "medium": 600, "large": 1200}, d_values=(1, 2, 4)
)

#: A seconds-fast subset for tests and smoke checks (same schema).
SMOKE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 40, "medium": 80}, d_values=(1, 2)
)

#: The cell used by the overhead protocol (and quoted in docs): the
#: middle of the grid, where per-event work is representative.
MEDIUM_SCENARIO: BenchScenario = next(
    s for s in CORE_SCENARIOS if s.d == 2 and s.size == "medium"
)

#: The twin-engine comparison grid: the three large core cells plus one
#: extra-large high-concurrency sweep cell (``mu = 100`` keeps ~250
#: items resident, so the open list — the classic engine's per-arrival
#: re-stacking cost — is deep).  The xlarge cell is "the largest pinned
#: sweep scenario" the fastpath acceptance speedup is judged on.
FASTPATH_SCENARIOS: List[BenchScenario] = [
    s for s in CORE_SCENARIOS if s.size == "large"
] + [
    BenchScenario(
        name="uniform-d2-xlarge-sweep",
        d=2,
        n=5000,
        size="xlarge",
        mu=100,
        T=1000,
        B=100,
        seed=BASE_SEED + 100_000 * 2 + 5000,
    )
]

#: A seconds-fast fastpath subset for tests and the CI smoke leg.
FASTPATH_SMOKE_SCENARIOS: List[BenchScenario] = _grid(
    {"small": 40}, d_values=(1, 2)
)


def run_scenario(
    scenario: BenchScenario,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    sink: Optional[TraceSink] = None,
) -> Dict[str, Any]:
    """Run one scenario through every algorithm; return its JSON record.

    Wall-time per algorithm is the minimum over ``repeats`` instrumented
    runs; counters and costs are taken from the last run (they are
    identical across repeats for the deterministic policies and
    per-seed-stable for Random Fit, which the registry seeds afresh —
    its default seed makes even that deterministic).
    """
    instance = scenario.build_instance()
    lb = height_lower_bound(instance)
    results: Dict[str, Any] = {}
    for name in algorithms:
        best: Optional[Dict[str, Any]] = None
        for _ in range(max(1, repeats)):
            collector = StatsCollector(sink=sink)
            packing = run(make_algorithm(name), instance, collector=collector)
            stats = collector.snapshot()
            cell = {
                "wall_time_s": stats.wall_time_s,
                "dispatch_time_s": stats.dispatch_time_s,
                "events": stats.events,
                "events_per_sec": stats.events_per_sec,
                "cost": packing.cost,
                "cost_ratio": packing.cost / lb,
                "num_bins": packing.num_bins,
                "peak_open_bins": stats.peak_open_bins,
                "candidate_scans": stats.candidate_scans,
                "fit_checks": stats.fit_checks,
            }
            if best is None or cell["wall_time_s"] < best["wall_time_s"]:
                best = cell
        results[name] = best
    record = {
        "name": scenario.name,
        "params": scenario.params(),
        "lower_bound": lb,
        "results": results,
    }
    if sink is not None:
        sink.emit("scenario", record)
    return record


def run_suite(
    scenarios: Sequence[BenchScenario] = tuple(CORE_SCENARIOS),
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    suite: str = "core",
    sink: Optional[TraceSink] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run the whole suite and return the ``BENCH_core.json`` payload.

    ``progress`` is an optional ``callable(str)`` (e.g. ``print``)
    invoked once per finished scenario.
    """
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_scenario(scenario, algorithms, repeats=repeats, sink=sink)
        records.append(record)
        if progress is not None:
            slowest = max(r["wall_time_s"] for r in record["results"].values())
            progress(f"  {scenario.name}: {len(record['results'])} algorithms, "
                     f"slowest {slowest * 1e3:.1f} ms")
    payload = {
        "schema": SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "algorithms": list(algorithms),
        "total_wall_time_s": time.perf_counter() - t0,
        "scenarios": records,
    }
    if sink is not None:
        sink.emit("suite", {k: v for k, v in payload.items() if k != "scenarios"})
    return payload


def run_fastpath_scenario(
    scenario: BenchScenario,
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Time classic vs fastpath on one scenario; return its JSON record.

    Per algorithm: the classic engine and every requested fastpath
    backend replay the same pinned instance, wall-time taken as the
    minimum over ``repeats`` uninstrumented runs (pure engine speed, no
    collector).  Every fast packing is checked for assignment equality
    against the classic one — the ``identical`` flag pins the
    twin-engine contract into the perf trajectory file itself.
    """
    backends = tuple(backends) if backends is not None else available_backends()
    instance = scenario.build_instance()
    results: Dict[str, Any] = {}
    for name in algorithms:
        classic_s = float("inf")
        classic = None
        for _ in range(max(1, repeats)):
            algo = make_algorithm(name)
            t0 = time.perf_counter()
            classic = run(algo, instance)
            classic_s = min(classic_s, time.perf_counter() - t0)
        cell: Dict[str, Any] = {
            "classic_s": classic_s,
            "cost": classic.cost,
            "num_bins": classic.num_bins,
        }
        identical = True
        for backend in backends:
            fast_s = float("inf")
            fast = None
            for _ in range(max(1, repeats)):
                t0 = time.perf_counter()
                fast = fast_simulate(name, instance, backend=backend)
                fast_s = min(fast_s, time.perf_counter() - t0)
            identical = identical and dict(fast.assignment) == dict(classic.assignment)
            cell[f"fast_{backend}_s"] = fast_s
            cell[f"speedup_{backend}"] = classic_s / fast_s if fast_s > 0 else 0.0
        cell["identical"] = identical
        results[name] = cell

    totals: Dict[str, Any] = {
        "classic_s": sum(c["classic_s"] for c in results.values()),
        "identical": all(c["identical"] for c in results.values()),
    }
    for backend in backends:
        fast_total = sum(c[f"fast_{backend}_s"] for c in results.values())
        totals[f"fast_{backend}_s"] = fast_total
        totals[f"speedup_{backend}"] = (
            totals["classic_s"] / fast_total if fast_total > 0 else 0.0
        )
    return {
        "name": scenario.name,
        "params": scenario.params(),
        "backends": list(backends),
        "results": results,
        "totals": totals,
    }


def run_fastpath_suite(
    scenarios: Sequence[BenchScenario] = tuple(FASTPATH_SCENARIOS),
    algorithms: Sequence[str] = tuple(PAPER_ALGORITHMS),
    repeats: int = 3,
    backends: Optional[Sequence[str]] = None,
    suite: str = "fastpath",
    progress=None,
) -> Dict[str, Any]:
    """Run the twin-engine comparison suite; return its JSON payload.

    The ``headline`` block repeats the totals of the largest scenario
    (by ``n``) — the number the acceptance gate and the README quote.
    """
    backends = tuple(backends) if backends is not None else available_backends()
    t0 = time.perf_counter()
    records = []
    for scenario in scenarios:
        record = run_fastpath_scenario(
            scenario, algorithms, repeats=repeats, backends=backends
        )
        records.append(record)
        if progress is not None:
            speedups = ", ".join(
                f"{b} {record['totals'][f'speedup_{b}']:.1f}x" for b in backends
            )
            progress(
                f"  {scenario.name}: classic {record['totals']['classic_s']:.2f} s, "
                f"speedup {speedups}, identical={record['totals']['identical']}"
            )
    largest = max(records, key=lambda r: r["params"]["n"])
    payload = {
        "schema": FASTPATH_SCHEMA,
        "suite": suite,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "backends": list(backends),
        "algorithms": list(algorithms),
        "total_wall_time_s": time.perf_counter() - t0,
        "headline": {"scenario": largest["name"], **largest["totals"]},
        "scenarios": records,
    }
    return payload


def merge_fastpath(core_payload: Dict[str, Any], fastpath_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Attach a fastpath suite payload to a core suite payload.

    ``BENCH_core.json`` stays one file: the core grid at the top level
    (unchanged schema) with the twin-engine comparison nested under
    ``"fastpath"``, so the perf trajectory records both engines side by
    side.
    """
    merged = dict(core_payload)
    merged["fastpath"] = fastpath_payload
    return merged


def write_bench(payload: Dict[str, Any], path: str) -> None:
    """Write a suite payload as pretty-printed JSON (trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def measure_overhead(
    scenario: Optional[BenchScenario] = None,
    algorithm: str = "move_to_front",
    repeats: int = 5,
) -> Dict[str, Any]:
    """Measure the cost of the instrumented engine loop.

    Runs ``repeats`` *interleaved pairs* of a plain run
    (``collector=None`` — the default every test and experiment uses)
    and an instrumented run with the default no-op sink, on the
    harness's medium scenario, and reports the minimum of each side plus
    the relative overhead.  Interleaving pairs (rather than timing the
    two sides back to back) cancels clock-frequency and cache drift on
    shared machines; the clock is **process CPU time**, not wall time,
    so scheduler preemption on loaded machines does not pollute a
    sub-millisecond difference measurement.  The documented budget is
    2%: perf PRs touching the engine should re-run this.
    """
    scenario = scenario or MEDIUM_SCENARIO
    instance = scenario.build_instance()

    clock = time.process_time
    plain_s = instrumented_s = float("inf")
    for _ in range(max(1, repeats)):
        algo = make_algorithm(algorithm)
        t0 = clock()
        run(algo, instance)
        plain_s = min(plain_s, clock() - t0)

        algo = make_algorithm(algorithm)
        collector = StatsCollector()
        t0 = clock()
        run(algo, instance, collector=collector)
        instrumented_s = min(instrumented_s, clock() - t0)
    return {
        "scenario": scenario.name,
        "algorithm": algorithm,
        "repeats": repeats,
        "plain_s": plain_s,
        "instrumented_s": instrumented_s,
        "overhead_frac": instrumented_s / plain_s - 1.0 if plain_s > 0 else 0.0,
    }
