"""Low-overhead counters and wall-clock timers.

These are the primitive instruments of the observability layer: a
:class:`Counter` is a named integer, a :class:`Timer` accumulates
``time.perf_counter`` intervals, and a :class:`MetricsRegistry` groups
either by name so harnesses can snapshot everything at once.

Design constraints (this code sits next to the simulation hot path):

* no locks — the engine is single-threaded per process, and
  cross-process aggregation happens on immutable snapshots;
* plain attribute arithmetic (``c.value += n``) rather than callbacks,
  so an increment costs one attribute store;
* snapshots are plain dicts, ready for JSON.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

__all__ = ["Counter", "Timer", "MetricsRegistry"]


class Counter:
    """A named monotonically growing integer.

    >>> c = Counter("fit_checks")
    >>> c.inc()
    >>> c.inc(4)
    >>> c.value
    5
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """Accumulates wall-clock time over any number of timed sections.

    Use as a context manager (re-entrant use is an error) or drive the
    :meth:`start` / :meth:`stop` pair manually when the timed region
    spans a callback boundary.

    >>> t = Timer("dispatch")
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.count
    1
    >>> t.total_s >= 0.0
    True
    """

    __slots__ = ("name", "total_s", "count", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.count = 0
        self._t0: Optional[float] = None

    def start(self) -> None:
        """Begin a timed section."""
        if self._t0 is not None:
            raise RuntimeError(f"Timer {self.name!r} already started")
        self._t0 = time.perf_counter()

    def stop(self) -> float:
        """End the current section; returns its duration in seconds."""
        if self._t0 is None:
            raise RuntimeError(f"Timer {self.name!r} stopped without start")
        elapsed = time.perf_counter() - self._t0
        self._t0 = None
        self.total_s += elapsed
        self.count += 1
        return elapsed

    def reset(self) -> None:
        """Zero the accumulated time and section count."""
        self.total_s = 0.0
        self.count = 0
        self._t0 = None

    @property
    def mean_s(self) -> float:
        """Average section duration (0.0 before the first section)."""
        return self.total_s / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name!r}, total_s={self.total_s:.6f}, count={self.count})"


class MetricsRegistry:
    """A named collection of counters and timers.

    ``counter(name)`` / ``timer(name)`` create on first use and return
    the same instrument thereafter, so call sites never need set-up
    code.  :meth:`snapshot` renders everything as one flat JSON-ready
    dict (timers contribute ``<name>_s`` and ``<name>_count`` keys).

    >>> reg = MetricsRegistry()
    >>> reg.counter("bins").inc(3)
    >>> reg.snapshot()["bins"]
    3
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter called ``name``."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def timer(self, name: str) -> Timer:
        """Get (or create) the timer called ``name``."""
        try:
            return self._timers[name]
        except KeyError:
            t = self._timers[name] = Timer(name)
            return t

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """All instruments as one flat dict (stable key order)."""
        out: Dict[str, Union[int, float]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._timers):
            t = self._timers[name]
            out[f"{name}_s"] = t.total_s
            out[f"{name}_count"] = t.count
        return out

    def reset(self) -> None:
        """Reset every registered instrument (registrations are kept)."""
        for c in self._counters.values():
            c.reset()
        for t in self._timers.values():
            t.reset()
