"""Runtime observability: counters, timers, per-run stats, trace sinks.

The simulation engine is the hot path of every experiment, yet until
this layer existed the repo had no way to *measure* it — no per-phase
timings, no dispatch counters, no reproducible baseline to judge perf
PRs against.  This package provides that measurement plane:

* :mod:`repro.observability.metrics` — a low-overhead :class:`Counter` /
  :class:`Timer` pair and a :class:`MetricsRegistry` to group them;
* :mod:`repro.observability.stats` — :class:`RunStats` (the structured
  per-run record: events processed, bins opened, fit checks, dispatch
  wall-time, peak open bins, optional RSS) and the mutable
  :class:`StatsCollector` the engine writes into;
* :mod:`repro.observability.sinks` — the pluggable :class:`TraceSink`
  family (:class:`NullSink` no-op default, :class:`MemorySink`,
  JSON-lines :class:`JsonLinesSink`);
* :mod:`repro.observability.bench` — the pinned-seed benchmark suite
  behind ``benchmarks/harness.py`` and ``python -m repro bench``,
  which writes the ``BENCH_core.json`` perf trajectory file.

Instrumentation is strictly opt-in: a ``None`` collector leaves the
engine's event loop byte-for-byte on its original fast path, so tier-1
test timings are unaffected (see docs/observability.md for the measured
overhead protocol).
"""

from .metrics import Counter, MetricsRegistry, Timer
from .sinks import JsonLinesSink, MemorySink, NullSink, TraceSink
from .stats import RunStats, StatsCollector

#: Names served lazily from .bench via module __getattr__ (PEP 562).
#: The bench suite imports the simulation layer, and the simulation
#: engine imports this package for StatsCollector — loading bench
#: eagerly here would close that loop into a circular import.
_BENCH_EXPORTS = (
    "BenchScenario",
    "CORE_SCENARIOS",
    "SMOKE_SCENARIOS",
    "measure_overhead",
    "run_scenario",
    "run_suite",
    "write_bench",
)


def __getattr__(name):
    if name in _BENCH_EXPORTS:
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BenchScenario",
    "CORE_SCENARIOS",
    "Counter",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "RunStats",
    "SMOKE_SCENARIOS",
    "StatsCollector",
    "Timer",
    "TraceSink",
    "measure_overhead",
    "run_scenario",
    "run_suite",
    "write_bench",
]
