"""Per-run statistics: the structured record every instrumented run emits.

:class:`StatsCollector` is the mutable object the engine (and the Any
Fit hot path) write into while a simulation runs; :class:`RunStats` is
the immutable snapshot taken afterwards.  The split keeps the hot path
cheap — plain integer attribute stores, no dataclass churn per event —
while giving everything downstream (sinks, the bench harness, the
parallel sweep aggregation) a frozen, serialisable record.

Counter semantics
-----------------
``events`` / ``arrivals`` / ``departures``
    Events replayed by the engine (``events = arrivals + departures``).
``bins_opened`` / ``bins_closed`` / ``peak_open_bins``
    Bin lifecycle totals plus the peak simultaneously open count.
``candidate_scans`` / ``fit_checks``
    The Any Fit hot path: one *scan* per vectorised
    :func:`~repro.core.vectors.fits_batch` call (i.e. per arrival that
    found a non-empty open list), and one *fit check* per candidate bin
    inspected by that call.  ``fit_checks`` is the size of the work the
    dispatch loop does — the quantity perf PRs on the hot path must
    drive down.
``fastpath_runs``
    How many of the observed runs were executed by the flat-array
    :class:`~repro.simulation.fastpath.FastEngine` rather than the
    classic engine (0 for purely classic collectors).  The fast engine
    reports the same scan/check semantics, so this is the only counter
    telling the twin engines apart.
``fastpath_fallbacks``
    How many runs *requested* the fast engine but were executed by the
    classic engine instead — either because the policy has no fast
    kernel (ineligible) or because the kernel failed and the run
    degraded gracefully.  Deterministic for a fixed (algorithm,
    instance, engine-request) triple.
``fastpath_backend``
    Which kernel backend (``"numpy"``/``"python"``/``"vectorized"``/
    ``"numba"``) executed the observed fastpath runs — ``""`` when no
    fastpath run was observed, ``"mixed"`` when several backends were.
    Recorded so bench and sweep regressions are attributable to a tier
    without re-deriving the chooser's decision; an execution fact, so
    :meth:`RunStats.deterministic_part` zeroes it like
    ``streaming_runs``.
``streaming_runs`` / ``stream_flushes`` / ``peak_live_items``
    The streaming-engine path (:mod:`repro.streaming`): how many runs
    the streaming engine executed, how many periodic cost flushes it
    emitted, and the peak number of simultaneously live items it held
    (the quantity its O(peak-open-items) memory contract is stated in).
    Like the fault-recovery counters below, these describe *how* a run
    was executed — which engine, what flush cadence — not what it
    computed, so all three are zeroed in
    :meth:`RunStats.deterministic_part`: an instrumented-vs-plain or
    streaming-vs-classic differential must stay bit-identical on the
    deterministic part.
``repacking_runs`` / ``migrations``
    The migration-budget path (:mod:`repro.repacking`): how many runs
    the repacking engine executed and how many item relocations it
    performed in total.  ``repacking_runs`` is an execution fact (like
    ``streaming_runs``) and is zeroed in
    :meth:`RunStats.deterministic_part`; ``migrations`` is part of the
    *computation* — a budget-k run with moves is a genuinely different
    packing — and is kept, so the budget-0 differential still asserts
    ``migrations == 0`` implicitly through bit-identity.
``retries`` / ``unit_timeouts`` / ``units_resumed`` / ``pool_restarts``
    Orchestration-side fault-recovery counters (see
    :mod:`repro.orchestration`): work units re-executed after a worker
    fault, units abandoned for exceeding the per-unit timeout, units
    skipped on resume because a checkpoint already held their results,
    and process-pool respawns after a ``BrokenProcessPool`` (or a
    timeout-forced recycle).  These record what happened *to* the sweep,
    not what the sweep computed — they are excluded from
    :meth:`RunStats.deterministic_part` because an interrupted-and-
    resumed run must still aggregate bit-identically to an uninterrupted
    one.
``dispatch_time_s`` / ``wall_time_s``
    Wall-clock spent inside arrival dispatch (policy decision + pack)
    vs. the whole run (event replay + observer fan-out included).
``peak_rss_bytes``
    Optional process peak RSS sampled at run end (``None`` when
    sampling is off or the platform lacks :mod:`resource`).

All counters are deterministic for a fixed (algorithm, instance) pair;
only the two wall-time fields and RSS vary between repeats.  Equality
of the deterministic part is what the cross-process aggregation tests
assert.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Iterable, Mapping, Optional

try:  # POSIX-only; the collector degrades gracefully without it
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = ["RunStats", "StatsCollector"]


def _peak_rss_bytes() -> Optional[int]:
    """Current process peak RSS in bytes, or ``None`` if unavailable.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes using the platform convention.
    """
    if _resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    import sys

    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


@dataclass(frozen=True)
class RunStats:
    """Immutable per-run (or aggregated multi-run) statistics record."""

    algorithm: str = ""
    runs: int = 0
    events: int = 0
    arrivals: int = 0
    departures: int = 0
    bins_opened: int = 0
    bins_closed: int = 0
    peak_open_bins: int = 0
    candidate_scans: int = 0
    fit_checks: int = 0
    fastpath_runs: int = 0
    fastpath_fallbacks: int = 0
    fastpath_backend: str = ""
    streaming_runs: int = 0
    stream_flushes: int = 0
    peak_live_items: int = 0
    repacking_runs: int = 0
    migrations: int = 0
    retries: int = 0
    unit_timeouts: int = 0
    units_resumed: int = 0
    pool_restarts: int = 0
    dispatch_time_s: float = 0.0
    wall_time_s: float = 0.0
    peak_rss_bytes: Optional[int] = None

    @property
    def events_per_sec(self) -> float:
        """Event throughput over the whole run (0.0 for a zero-time run)."""
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def checks_per_scan(self) -> float:
        """Mean open-list length seen by the vectorised fit check."""
        return self.fit_checks / self.candidate_scans if self.candidate_scans else 0.0

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, including the derived throughput fields."""
        out = asdict(self)
        out["events_per_sec"] = self.events_per_sec
        out["checks_per_scan"] = self.checks_per_scan
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunStats":
        """Rebuild from :meth:`to_dict` output (derived fields ignored)."""
        fields = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py39
        return cls(**{k: v for k, v in data.items() if k in fields})

    def to_json(self) -> str:
        """Single-line JSON form (the JSON-lines sink record payload)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunStats":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # -- aggregation ----------------------------------------------------
    @classmethod
    def aggregate(cls, parts: Iterable["RunStats"]) -> "RunStats":
        """Combine records from several runs (or several worker processes).

        Counters and times sum; peaks take the max (each worker's peak is
        a valid lower bound on its own process peak, and peaks are not
        additive across processes); ``algorithm`` is kept when unanimous
        and set to ``"mixed"`` otherwise.
        """
        parts = list(parts)
        if not parts:
            return cls()
        names = {p.algorithm for p in parts}
        backends = {p.fastpath_backend for p in parts if p.fastpath_backend}
        rss = [p.peak_rss_bytes for p in parts if p.peak_rss_bytes is not None]
        return cls(
            algorithm=names.pop() if len(names) == 1 else "mixed",
            runs=sum(p.runs for p in parts),
            events=sum(p.events for p in parts),
            arrivals=sum(p.arrivals for p in parts),
            departures=sum(p.departures for p in parts),
            bins_opened=sum(p.bins_opened for p in parts),
            bins_closed=sum(p.bins_closed for p in parts),
            peak_open_bins=max(p.peak_open_bins for p in parts),
            candidate_scans=sum(p.candidate_scans for p in parts),
            fit_checks=sum(p.fit_checks for p in parts),
            fastpath_runs=sum(p.fastpath_runs for p in parts),
            fastpath_fallbacks=sum(p.fastpath_fallbacks for p in parts),
            fastpath_backend=(
                backends.pop() if len(backends) == 1 else ("mixed" if backends else "")
            ),
            streaming_runs=sum(p.streaming_runs for p in parts),
            stream_flushes=sum(p.stream_flushes for p in parts),
            peak_live_items=max(p.peak_live_items for p in parts),
            repacking_runs=sum(p.repacking_runs for p in parts),
            migrations=sum(p.migrations for p in parts),
            retries=sum(p.retries for p in parts),
            unit_timeouts=sum(p.unit_timeouts for p in parts),
            units_resumed=sum(p.units_resumed for p in parts),
            pool_restarts=sum(p.pool_restarts for p in parts),
            dispatch_time_s=sum(p.dispatch_time_s for p in parts),
            wall_time_s=sum(p.wall_time_s for p in parts),
            peak_rss_bytes=max(rss) if rss else None,
        )

    def deterministic_part(self) -> "RunStats":
        """Copy with the timing/RSS and fault-recovery fields zeroed.

        Two runs of the same (algorithm, instance) pair — serial, across
        processes, or interrupted-and-resumed — must agree exactly on
        this part; tests, the parallel aggregation check, and the
        resume-determinism oracle compare it.  The fault-recovery
        counters (``retries``/``unit_timeouts``/``units_resumed``/
        ``pool_restarts``) describe the *execution history*, not the
        computation, so they are zeroed alongside the timings — and so
        do the streaming-path counters (``streaming_runs``/
        ``stream_flushes``/``peak_live_items``): which engine executed a
        run and how often it flushed are execution facts, and the
        classic engine does not track live items at all, so leaving any
        of them in would break the instrumented-vs-plain and
        streaming-vs-classic bit-identity differentials.
        """
        return replace(
            self,
            fastpath_backend="",
            streaming_runs=0,
            stream_flushes=0,
            peak_live_items=0,
            repacking_runs=0,
            retries=0,
            unit_timeouts=0,
            units_resumed=0,
            pool_restarts=0,
            dispatch_time_s=0.0,
            wall_time_s=0.0,
            peak_rss_bytes=None,
        )


class StatsCollector:
    """Mutable accumulator the engine writes into during a run.

    One collector may observe any number of runs (the bench harness
    reuses one per scenario cell); counters accumulate across runs and
    :meth:`snapshot` freezes the running totals into a
    :class:`RunStats`.  The Any Fit base class increments
    ``candidate_scans`` / ``fit_checks`` directly on this object — plain
    attribute adds, the cheapest hook Python offers.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.observability.sinks.TraceSink`; each
        finished run is emitted as a ``"run"`` record.
    sample_rss:
        When ``True``, record process peak RSS at every run end.
    """

    __slots__ = (
        "sink",
        "sample_rss",
        "algorithm",
        "runs",
        "arrivals",
        "departures",
        "bins_opened",
        "bins_closed",
        "open_bins",
        "peak_open_bins",
        "candidate_scans",
        "fit_checks",
        "fastpath_runs",
        "fastpath_fallbacks",
        "fastpath_backend",
        "streaming_runs",
        "stream_flushes",
        "peak_live_items",
        "repacking_runs",
        "migrations",
        "retries",
        "unit_timeouts",
        "units_resumed",
        "pool_restarts",
        "dispatch_time_s",
        "wall_time_s",
        "peak_rss_bytes",
    )

    def __init__(self, sink=None, sample_rss: bool = False) -> None:
        self.sink = sink
        self.sample_rss = sample_rss
        self.algorithm = ""
        self.runs = 0
        self.arrivals = 0
        self.departures = 0
        self.bins_opened = 0
        self.bins_closed = 0
        self.open_bins = 0
        self.peak_open_bins = 0
        self.candidate_scans = 0
        self.fit_checks = 0
        self.fastpath_runs = 0
        self.fastpath_fallbacks = 0
        self.fastpath_backend = ""
        self.streaming_runs = 0
        self.stream_flushes = 0
        self.peak_live_items = 0
        self.repacking_runs = 0
        self.migrations = 0
        self.retries = 0
        self.unit_timeouts = 0
        self.units_resumed = 0
        self.pool_restarts = 0
        self.dispatch_time_s = 0.0
        self.wall_time_s = 0.0
        self.peak_rss_bytes: Optional[int] = None

    # -- orchestration hooks (sweep-level fault recovery) ---------------
    def record_fault_event(self, kind: str, count: int = 1) -> None:
        """Count one orchestration fault-recovery event.

        ``kind`` is one of ``"retry"``, ``"unit_timeout"``,
        ``"unit_resumed"``, ``"pool_restart"``, ``"fastpath_fallback"``
        — the counter of the same family is bumped by ``count`` and,
        when a sink is attached, a trace event of that kind is emitted.
        Unknown kinds raise :class:`ValueError` (a typo here would
        silently lose fault telemetry otherwise).
        """
        if kind == "retry":
            self.retries += count
        elif kind == "unit_timeout":
            self.unit_timeouts += count
        elif kind == "unit_resumed":
            self.units_resumed += count
        elif kind == "pool_restart":
            self.pool_restarts += count
        elif kind == "fastpath_fallback":
            self.fastpath_fallbacks += count
        else:
            raise ValueError(f"unknown fault event kind {kind!r}")

    # -- engine hooks (called once per event; keep them lean) -----------
    def run_started(self, instance, algorithm) -> None:
        """Reset the per-run open-bin gauge and note the policy name."""
        self.algorithm = getattr(algorithm, "name", type(algorithm).__name__)
        self.open_bins = 0

    def record_arrival(self, elapsed_s: float, opened_new: bool) -> None:
        """One arrival dispatched in ``elapsed_s`` seconds."""
        self.arrivals += 1
        self.dispatch_time_s += elapsed_s
        if opened_new:
            self.bins_opened += 1
            self.open_bins += 1
            if self.open_bins > self.peak_open_bins:
                self.peak_open_bins = self.open_bins

    def record_departure(self, closed: bool) -> None:
        """One departure processed (``closed`` iff it emptied its bin)."""
        self.departures += 1
        if closed:
            self.bins_closed += 1
            self.open_bins -= 1

    def record_run_totals(
        self,
        arrivals: int,
        departures: int,
        bins_opened: int,
        bins_closed: int,
        peak_open_bins: int,
        dispatch_time_s: float,
    ) -> None:
        """Bulk variant of the per-event hooks.

        The engine accumulates per-event state in loop locals and pushes
        the totals once per run through this method — functionally
        identical to calling :meth:`record_arrival` /
        :meth:`record_departure` per event, but without a method call on
        the hot path.
        """
        self.arrivals += arrivals
        self.departures += departures
        self.bins_opened += bins_opened
        self.bins_closed += bins_closed
        if peak_open_bins > self.peak_open_bins:
            self.peak_open_bins = peak_open_bins
        self.dispatch_time_s += dispatch_time_s

    def note_fastpath_backend(self, backend: str) -> None:
        """Record which kernel backend executed a fastpath run.

        The first noted backend is kept; observing a different one later
        degrades the field to ``"mixed"`` (same unanimity rule as
        :meth:`RunStats.aggregate` applies across processes).
        """
        if not backend:
            return
        current = self.fastpath_backend
        if not current:
            self.fastpath_backend = backend
        elif current != backend:
            self.fastpath_backend = "mixed"

    def run_finished(self, wall_time_s: float, context: Optional[Mapping[str, Any]] = None) -> None:
        """Close out one run: totals, optional RSS sample, sink emission."""
        self.runs += 1
        self.wall_time_s += wall_time_s
        if self.sample_rss:
            rss = _peak_rss_bytes()
            if rss is not None:
                self.peak_rss_bytes = max(self.peak_rss_bytes or 0, rss)
        if self.sink is not None:
            record = self.snapshot().to_dict()
            if context:
                record.update(context)
            self.sink.emit("run", record)

    # -- reading --------------------------------------------------------
    def snapshot(self) -> RunStats:
        """Freeze the running totals into an immutable :class:`RunStats`."""
        return RunStats(
            algorithm=self.algorithm,
            runs=self.runs,
            events=self.arrivals + self.departures,
            arrivals=self.arrivals,
            departures=self.departures,
            bins_opened=self.bins_opened,
            bins_closed=self.bins_closed,
            peak_open_bins=self.peak_open_bins,
            candidate_scans=self.candidate_scans,
            fit_checks=self.fit_checks,
            fastpath_runs=self.fastpath_runs,
            fastpath_fallbacks=self.fastpath_fallbacks,
            fastpath_backend=self.fastpath_backend,
            streaming_runs=self.streaming_runs,
            stream_flushes=self.stream_flushes,
            peak_live_items=self.peak_live_items,
            repacking_runs=self.repacking_runs,
            migrations=self.migrations,
            retries=self.retries,
            unit_timeouts=self.unit_timeouts,
            units_resumed=self.units_resumed,
            pool_restarts=self.pool_restarts,
            dispatch_time_s=self.dispatch_time_s,
            wall_time_s=self.wall_time_s,
            peak_rss_bytes=self.peak_rss_bytes,
        )

    def reset(self) -> None:
        """Zero every accumulator (the sink binding is kept)."""
        self.algorithm = ""
        self.runs = 0
        self.arrivals = 0
        self.departures = 0
        self.bins_opened = 0
        self.bins_closed = 0
        self.open_bins = 0
        self.peak_open_bins = 0
        self.candidate_scans = 0
        self.fit_checks = 0
        self.fastpath_runs = 0
        self.fastpath_fallbacks = 0
        self.fastpath_backend = ""
        self.streaming_runs = 0
        self.stream_flushes = 0
        self.peak_live_items = 0
        self.repacking_runs = 0
        self.migrations = 0
        self.retries = 0
        self.unit_timeouts = 0
        self.units_resumed = 0
        self.pool_restarts = 0
        self.dispatch_time_s = 0.0
        self.wall_time_s = 0.0
        self.peak_rss_bytes = None
