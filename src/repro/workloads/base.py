"""Workload generator interface and batch helpers.

All generators are deterministic functions of a ``numpy.random.Generator``
so every experiment is reproducible from a single integer seed.  Batch
generation uses ``SeedSequence.spawn`` to give each instance an
independent, collision-free stream (the recommended NumPy practice for
parallel statistics).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional, Union

import numpy as np

from ..core.instance import Instance
from ..core.items import Item

__all__ = ["WorkloadGenerator", "generate_batch", "iter_batch"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def _as_generator(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class WorkloadGenerator(abc.ABC):
    """A distribution over DVBP instances.

    Subclasses implement :meth:`sample` — one instance from one RNG.
    Generators must be stateless across calls: all randomness comes from
    the passed generator, so the same generator state yields the same
    instance.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Instance:
        """Draw one instance."""

    def sample_seeded(self, seed: SeedLike = None) -> Instance:
        """Draw one instance from an integer seed (convenience)."""
        return self.sample(_as_generator(seed))

    def stream(
        self, rng: np.random.Generator, limit: Optional[int] = None
    ) -> Iterator[Item]:
        """Yield items lazily in non-decreasing arrival order.

        The streaming protocol behind ``repro.streaming``: consumers
        (the streaming engine, the bounded-memory benches) pull items
        one at a time and never see an
        :class:`~repro.core.instance.Instance`.  ``limit`` caps the
        number of items yielded (``None`` = the generator's natural
        length).

        The **default** implementation simply materialises
        :meth:`sample` and yields its items — correct for every
        generator, but *not* bounded-memory.  Generators whose arrival
        process admits a sequential construction (Poisson via
        exponential gaps, uniform via conditional order statistics)
        override this with a true O(1)-state stream; overrides need not
        reproduce :meth:`sample` item for item, only the same arrival
        process family (each override documents its exact law).
        """
        instance = self.sample(rng)
        items = instance.items if limit is None else instance.items[:limit]
        yield from items

    def stream_seeded(
        self, seed: SeedLike = None, limit: Optional[int] = None
    ) -> Iterator[Item]:
        """Seeded convenience twin of :meth:`stream`."""
        return self.stream(_as_generator(seed), limit=limit)

    def describe(self) -> dict:
        """Generator parameters, for experiment manifests.

        The default exposes the public attributes of the dataclass-like
        generator objects used throughout this package.
        """
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and isinstance(v, (int, float, str, bool, tuple))
        }


def iter_batch(
    generator: WorkloadGenerator,
    count: int,
    seed: SeedLike = 0,
) -> Iterator[Instance]:
    """Yield ``count`` independent instances from spawned seed streams."""
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # derive a SeedSequence from the generator for spawning
        ss = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        ss = np.random.SeedSequence(seed)
    for child in ss.spawn(count):
        yield generator.sample(np.random.default_rng(child))


def generate_batch(
    generator: WorkloadGenerator,
    count: int,
    seed: SeedLike = 0,
) -> List[Instance]:
    """Materialised form of :func:`iter_batch`."""
    return list(iter_batch(generator, count, seed))
