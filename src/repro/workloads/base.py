"""Workload generator interface and batch helpers.

All generators are deterministic functions of a ``numpy.random.Generator``
so every experiment is reproducible from a single integer seed.  Batch
generation uses ``SeedSequence.spawn`` to give each instance an
independent, collision-free stream (the recommended NumPy practice for
parallel statistics).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional, Union

import numpy as np

from ..core.instance import Instance

__all__ = ["WorkloadGenerator", "generate_batch", "iter_batch"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def _as_generator(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class WorkloadGenerator(abc.ABC):
    """A distribution over DVBP instances.

    Subclasses implement :meth:`sample` — one instance from one RNG.
    Generators must be stateless across calls: all randomness comes from
    the passed generator, so the same generator state yields the same
    instance.
    """

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Instance:
        """Draw one instance."""

    def sample_seeded(self, seed: SeedLike = None) -> Instance:
        """Draw one instance from an integer seed (convenience)."""
        return self.sample(_as_generator(seed))

    def describe(self) -> dict:
        """Generator parameters, for experiment manifests.

        The default exposes the public attributes of the dataclass-like
        generator objects used throughout this package.
        """
        return {
            k: v
            for k, v in vars(self).items()
            if not k.startswith("_") and isinstance(v, (int, float, str, bool, tuple))
        }


def iter_batch(
    generator: WorkloadGenerator,
    count: int,
    seed: SeedLike = 0,
) -> Iterator[Instance]:
    """Yield ``count`` independent instances from spawned seed streams."""
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # derive a SeedSequence from the generator for spawning
        ss = np.random.SeedSequence(int(seed.integers(2**63)))
    else:
        ss = np.random.SeedSequence(seed)
    for child in ss.spawn(count):
        yield generator.sample(np.random.default_rng(child))


def generate_batch(
    generator: WorkloadGenerator,
    count: int,
    seed: SeedLike = 0,
) -> List[Instance]:
    """Materialised form of :func:`iter_batch`."""
    return list(iter_batch(generator, count, seed))
