"""Poisson-arrival workloads with pluggable duration/size distributions.

A more realistic arrival process than Section 7's uniform scatter: items
arrive as a Poisson process of rate ``rate`` over ``[0, horizon]``.
Durations and sizes come from the samplers in
:mod:`repro.workloads.distributions`, enabling the distribution-
sensitivity ablation of DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import WorkloadGenerator
from .distributions import (
    DirichletSize,
    ExponentialDuration,
    LognormalDuration,
    ParetoDuration,
    UniformDuration,
    UniformIntegerSize,
)

__all__ = ["PoissonWorkload"]

DurationSampler = Union[
    UniformDuration, ExponentialDuration, LognormalDuration, ParetoDuration
]
SizeSampler = Union[UniformIntegerSize, DirichletSize]


@dataclass
class PoissonWorkload(WorkloadGenerator):
    """Poisson arrivals over a horizon with configurable marginals.

    Parameters
    ----------
    d:
        Resource dimensions.
    rate:
        Arrival rate (items per unit time).
    horizon:
        Arrival window length; items arrive on ``[0, horizon]``.
    durations:
        Duration sampler (defaults to the paper-like uniform ``[1, 10]``).
    sizes:
        Size sampler.  ``UniformIntegerSize(B)`` implies capacity ``B``
        per dimension; ``DirichletSize`` implies unit capacity.
    min_items:
        A floor on the item count: if the Poisson draw comes up short the
        generator redraws the count as ``min_items`` (guaranteeing
        non-empty instances for small ``rate * horizon``).
    """

    d: int = 2
    rate: float = 1.0
    horizon: float = 1000.0
    durations: DurationSampler = field(default_factory=UniformDuration)
    sizes: SizeSampler = field(default_factory=UniformIntegerSize)
    min_items: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if self.rate <= 0 or self.horizon <= 0:
            raise ConfigurationError(
                f"rate and horizon must be positive, got rate={self.rate}, "
                f"horizon={self.horizon}"
            )
        if self.min_items < 1:
            raise ConfigurationError(f"min_items must be >= 1, got {self.min_items}")

    @property
    def capacity(self) -> np.ndarray:
        """Implied bin capacity of the size sampler."""
        if isinstance(self.sizes, UniformIntegerSize):
            return np.full(self.d, float(self.sizes.B))
        return np.ones(self.d)

    def sample(self, rng: np.random.Generator) -> Instance:
        n = int(rng.poisson(self.rate * self.horizon))
        if n < self.min_items:
            n = self.min_items
        arrivals = np.sort(rng.uniform(0.0, self.horizon, size=n))
        durations = self.durations.draw(rng, n)
        sizes = self.sizes.draw(rng, n, self.d)
        items = [
            Item(float(arrivals[j]), float(arrivals[j] + durations[j]), sizes[j], uid=j)
            for j in range(n)
        ]
        label = self.name or f"poisson(d={self.d},rate={self.rate:g})"
        return Instance(items, capacity=self.capacity, name=label, _skip_sort_check=True)

    def stream(
        self, rng: np.random.Generator, limit: Optional[int] = None
    ) -> Iterator[Item]:
        """Lazy Poisson stream via exponential inter-arrival gaps.

        A Poisson process of rate ``λ`` *is* a renewal process with
        ``Exp(λ)`` gaps, so accumulating exponential draws walks the
        exact same arrival law as :meth:`sample`'s count-then-sort
        construction — without ever knowing ``n`` up front.  Live state
        is one clock float plus a bounded draw-ahead chunk (gap,
        duration, and size draws are chunked for vectorised RNG
        throughput; the chunk is a constant, not a function of stream
        length).  The stream ends when the clock passes ``horizon`` (or
        after ``limit`` items).

        Draw order differs from :meth:`sample`, so the same seed gives
        the same *distribution* but not the same items; streaming
        replays are reproduced by re-streaming with the same seed.
        ``min_items`` is a materialised-instance guarantee and does not
        apply to streams (an empty stream is a valid stream).
        """
        chunk = 8192
        scale = 1.0 / self.rate
        t = 0.0
        uid = 0
        while True:
            gaps = rng.exponential(scale, size=chunk)
            durations = self.durations.draw(rng, chunk)
            sizes = self.sizes.draw(rng, chunk, self.d)
            for j in range(chunk):
                t += gaps[j]
                if t > self.horizon or (limit is not None and uid >= limit):
                    return
                yield Item(float(t), float(t + durations[j]), sizes[j], uid=uid)
                uid += 1
