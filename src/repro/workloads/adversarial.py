"""Adversarial instance families realising the paper's lower bounds.

Each constructor returns an :class:`AdversarialInstance`: the instance
itself plus the construction's *certified* quantities — an upper bound on
``OPT`` (from the explicit packing in the proof) and a lower bound on the
cost any targeted algorithm incurs — so experiments can report measured
ratios against the theoretical targets without solving for OPT.

Families:

* :func:`theorem5_instance` — forces **any** Any Fit algorithm to a cost
  ratio approaching ``(μ+1)d`` as ``k → ∞`` (Theorem 5, Figure 3);
* :func:`theorem6_instance` — forces **Next Fit** to ``2μd`` (Theorem 6);
* :func:`theorem8_instance` — forces **Move To Front** to ``2μ`` in one
  dimension (Theorem 8; the same family also lower-bounds Next Fit);
* :func:`best_fit_trap` — a family on which Best Fit's (and, in fact,
  every Any Fit algorithm's) measured ratio grows linearly in the family
  parameter ``k``.  Theorem 7 (citing Li-Tang-Cai) states Best Fit's CR
  is unbounded; the original construction is not reproduced in this
  paper, so this library ships a self-contained "lure" family whose
  ratio grows as ``Θ(k)`` (with ``μ = Θ(k³)``) — enough to demonstrate
  the qualitative failure mode experimentally, though weaker than the
  cited theorem (see the docstring of :func:`best_fit_trap`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item

__all__ = [
    "AdversarialInstance",
    "theorem5_instance",
    "theorem6_instance",
    "theorem8_instance",
    "best_fit_trap",
]


@dataclass(frozen=True)
class AdversarialInstance:
    """An adversarial instance with its proof-certified cost bounds.

    Attributes
    ----------
    instance:
        The item sequence.
    opt_upper:
        Upper bound on ``OPT`` from the explicit offline packing in the
        proof (so ``measured_cost / opt_upper`` lower-bounds the true
        competitive ratio on this instance).
    algorithm_cost_lower:
        The cost the targeted algorithm is proven to incur (at least).
    target_ratio:
        The asymptotic (``k → ∞``) competitive-ratio lower bound the
        family establishes.
    targets:
        Registry names of algorithms the construction targets ("*" means
        every Any Fit algorithm).
    description:
        Human-readable provenance.
    """

    instance: Instance
    opt_upper: float
    algorithm_cost_lower: float
    target_ratio: float
    targets: tuple
    description: str

    @property
    def certified_ratio(self) -> float:
        """``algorithm_cost_lower / opt_upper`` — the ratio this finite
        instance certifies (approaches :attr:`target_ratio` as the family
        parameter grows)."""
        return self.algorithm_cost_lower / self.opt_upper


def _interleave_groups(d: int, k: int, odd_size_fn, even_size: np.ndarray) -> List[np.ndarray]:
    """Sizes of items ``1..2dk`` in arrival order per the Theorem 5/6 labelling.

    Odd item ``2m-1`` belongs to group ``i = ceil(m/k)`` and gets
    ``odd_size_fn(i)``; even items get ``even_size``.
    """
    sizes: List[np.ndarray] = []
    for m in range(1, d * k + 1):
        group = (m - 1) // k + 1  # == ceil(m/k)
        sizes.append(odd_size_fn(group))
        sizes.append(even_size.copy())
    return sizes


def theorem5_instance(d: int, k: int, mu: float, delta: float = 1e-3) -> AdversarialInstance:
    """The Theorem 5 construction: CR of any Any Fit algorithm ≥ (μ+1)d.

    Sequence ``R0`` of ``2dk`` items arrives at time 0 with interval
    ``[0, 1)``; sequence ``R1`` of ``dk`` items of size ``ε'·1`` arrives
    just before ``R0`` departs (at ``1 - delta``) and stays for ``μ``.
    Any Any Fit algorithm opens ``dk`` bins on ``R0`` and is then forced
    to scatter ``R1`` one item per bin, keeping all ``dk`` bins active
    for the long horizon; OPT packs all small items into one long bin
    plus ``k`` short bins.

    Parameters satisfy the proof's constraints: ``ε = 1/(d²k + d + 2)``
    gives ``d²εk < 1`` and ``ε(1+d) < 1``; ``ε' = ε/3`` gives
    ``ε > ε'`` and ``dε > 2ε'``.
    """
    if d < 1 or k < 1:
        raise ConfigurationError(f"need d >= 1 and k >= 1, got d={d}, k={k}")
    if mu < 1:
        raise ConfigurationError(f"need mu >= 1, got {mu}")
    if not 0 < delta < 0.5:
        raise ConfigurationError(f"delta must be in (0, 0.5), got {delta}")

    eps = 1.0 / (d * d * k + d + 2)
    eps_p = eps / 3.0

    def odd_size(group: int) -> np.ndarray:
        v = np.full(d, eps)
        v[group - 1] = 1.0 - d * eps
        return v

    even = np.full(d, d * eps - eps_p)
    sizes_r0 = _interleave_groups(d, k, odd_size, even)

    items: List[Item] = []
    uid = 0
    for s in sizes_r0:
        items.append(Item(0.0, 1.0, s, uid))
        uid += 1
    r1_arrival = 1.0 - delta
    for _ in range(d * k):
        items.append(Item(r1_arrival, r1_arrival + mu, np.full(d, eps_p), uid))
        uid += 1

    inst = Instance(items, name=f"thm5(d={d},k={k},mu={mu:g})")
    opt_upper = k + (mu + 1.0 - delta)
    cost_lower = d * k * (mu + 1.0 - delta)
    return AdversarialInstance(
        instance=inst,
        opt_upper=opt_upper,
        algorithm_cost_lower=cost_lower,
        target_ratio=(mu + 1.0) * d,
        targets=("*",),
        description=(
            f"Theorem 5 family (d={d}, k={k}, mu={mu:g}): any Any Fit "
            f"algorithm pays >= dk(mu+1) while OPT <= k + mu + 1"
        ),
    )


def theorem6_instance(d: int, k: int, mu: float) -> AdversarialInstance:
    """The Theorem 6 construction: CR of Next Fit ≥ 2μd.

    ``2dk`` items arrive at time 0: even-indexed items (size ``ε'·1``)
    live for ``μ``; odd-indexed items (size ``1/2 - dε`` in their group's
    dimension, ``ε`` elsewhere) live for 1.  Next Fit pairs each odd item
    with an even item and releases a bin per odd item (beyond the first
    of each phase), ending with ``1 + (k-1)d`` bins that each hold a
    long-lived small item; OPT uses one long bin plus ``k/2`` short ones.

    ``k`` must be even and ≥ 2.  Parameters: ``ε' = 1/(dk+1)`` gives
    ``ε'dk < 1``; ``ε = ε'/(4d)`` gives ``ε' > 2dε``.
    """
    if k < 2 or k % 2 != 0:
        raise ConfigurationError(f"k must be an even integer >= 2, got {k}")
    if d < 1:
        raise ConfigurationError(f"need d >= 1, got {d}")
    if mu < 1:
        raise ConfigurationError(f"need mu >= 1, got {mu}")

    eps_p = 1.0 / (d * k + 1)
    eps = eps_p / (4.0 * d)

    def odd_size(group: int) -> np.ndarray:
        v = np.full(d, eps)
        v[group - 1] = 0.5 - d * eps
        return v

    even = np.full(d, eps_p)
    sizes = _interleave_groups(d, k, odd_size, even)

    items: List[Item] = []
    for uid, s in enumerate(sizes):
        is_even_label = uid % 2 == 1  # items are labelled 1..2dk; label uid+1
        departure = mu if is_even_label else 1.0
        items.append(Item(0.0, departure, s, uid))

    inst = Instance(items, name=f"thm6(d={d},k={k},mu={mu:g})")
    opt_upper = mu + k / 2.0
    cost_lower = (1 + (k - 1) * d) * mu
    return AdversarialInstance(
        instance=inst,
        opt_upper=opt_upper,
        algorithm_cost_lower=cost_lower,
        target_ratio=2.0 * mu * d,
        targets=("next_fit",),
        description=(
            f"Theorem 6 family (d={d}, k={k}, mu={mu:g}): Next Fit pays "
            f">= (1+(k-1)d)mu while OPT <= mu + k/2"
        ),
    )


def theorem8_instance(n: int, mu: float) -> AdversarialInstance:
    """The Theorem 8 construction: CR of Move To Front ≥ 2μ (d = 1).

    ``4n`` items arrive at time 0: odd-indexed items of size 1/2 live
    for 1; even-indexed items of size ``1/(2n)`` live for ``μ``.  Move
    To Front pairs each odd item with the following even item in a fresh
    bin (the fresh bin is always the leader), opening ``2n`` bins that
    each stay active for ``μ``; OPT packs the ``2n`` small items into one
    bin and pairs the size-1/2 items into ``n`` bins.

    The same sequence also forces Next Fit to the same cost, giving the
    ``2μ`` 1-D lower bound for NF cited from prior work.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if mu < 1:
        raise ConfigurationError(f"need mu >= 1, got {mu}")

    items: List[Item] = []
    for j in range(1, 4 * n + 1):
        if j % 2 == 1:
            items.append(Item(0.0, 1.0, np.array([0.5]), j - 1))
        else:
            items.append(Item(0.0, mu, np.array([1.0 / (2 * n)]), j - 1))

    inst = Instance(items, name=f"thm8(n={n},mu={mu:g})")
    opt_upper = mu + n
    cost_lower = 2 * n * mu
    return AdversarialInstance(
        instance=inst,
        opt_upper=opt_upper,
        algorithm_cost_lower=cost_lower,
        target_ratio=2.0 * mu,
        targets=("move_to_front", "next_fit"),
        description=(
            f"Theorem 8 family (n={n}, mu={mu:g}): Move To Front pays "
            f"2n*mu while OPT <= mu + n"
        ),
    )


def best_fit_trap(k: int, long_duration: float = 0.0) -> AdversarialInstance:
    """A lure family with measured ratio ``Θ(k)`` for every Any Fit policy.

    Phase ``i`` (at time ``3i``): a half-size *filler* ``F_i`` (duration
    1) forces a fresh bin; a tiny long *anchor* ``a_i`` (size ``1/(4k)``)
    joins the filler's bin because every older bin is blocked; after the
    filler departs, a large *guard* ``g_i`` (size ``1 - 1.5/(4k)``)
    enters the anchor's bin and blocks it until all phases end.  The
    algorithm ends with ``k`` bins, each pinned open by a lone anchor
    until the long horizon ``T_end``; OPT packs all anchors together.

    With ``long_duration = M`` (default ``k³``), any Any Fit algorithm
    pays ``≈ kM`` while ``OPT ≤ M + O(k²)``, a measured ratio ``Θ(k)``.
    Note ``μ = Θ(k³)`` grows with the family — this is a qualitative
    demonstration of Best Fit's failure mode (long-lived dust scattered
    across bins), not a reproduction of the stronger Li-Tang-Cai
    unboundedness construction, which this paper cites but does not
    include.
    """
    if k < 1:
        raise ConfigurationError(f"need k >= 1, got {k}")
    M = float(long_duration) if long_duration > 0 else float(k**3)
    s = 1.0 / (4.0 * k)
    g = 1.0 - 1.5 * s
    t_end_phases = 3.0 * k
    T_end = t_end_phases + M

    items: List[Item] = []
    uid = 0
    for i in range(k):
        t = 3.0 * i
        items.append(Item(t, t + 1.0, np.array([0.5]), uid))  # filler F_i
        uid += 1
        items.append(Item(t, T_end, np.array([s]), uid))  # anchor a_i
        uid += 1
    for i in range(k):
        t = 3.0 * i + 2.0
        items.append(Item(t, t_end_phases, np.array([g]), uid))  # guard g_i
        uid += 1

    inst = Instance(
        sorted(items, key=lambda it: it.arrival),
        name=f"bf_trap(k={k})",
        _skip_sort_check=True,
    )
    # OPT: anchors together (one bin, length T_end); fillers reused
    # (k unit periods); each guard alone (they cannot pair).
    guards_cost = sum(t_end_phases - (3.0 * i + 2.0) for i in range(k))
    opt_upper = T_end + k + guards_cost
    cost_lower = sum(T_end - 3.0 * i for i in range(k))
    return AdversarialInstance(
        instance=inst,
        opt_upper=opt_upper,
        algorithm_cost_lower=cost_lower,
        target_ratio=float(k),
        targets=("best_fit", "*"),
        description=(
            f"Best Fit lure family (k={k}, M={M:g}): every Any Fit policy "
            f"pays ~kM while OPT <= M + O(k^2)"
        ),
    )
