"""Workload generators: the paper's uniform setup, adversarial families,
and realistic extensions (Poisson, correlated, cloud traces)."""

from .adversarial import (
    AdversarialInstance,
    best_fit_trap,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)
from .base import WorkloadGenerator, generate_batch, iter_batch
from .composite import MixtureWorkload, SpikeWorkload
from .correlated import CorrelatedWorkload
from .describe import InstanceProfile, describe_instance, render_description
from .distributions import (
    DirichletSize,
    ExponentialDuration,
    LognormalDuration,
    ParetoDuration,
    UniformDuration,
    UniformIntegerSize,
)
from .poisson import PoissonWorkload
from .trace import DEFAULT_VM_CATALOGUE, CloudTraceWorkload, VMType
from .uniform import UniformWorkload

__all__ = [
    "AdversarialInstance",
    "CloudTraceWorkload",
    "CorrelatedWorkload",
    "DEFAULT_VM_CATALOGUE",
    "DirichletSize",
    "InstanceProfile",
    "describe_instance",
    "render_description",
    "ExponentialDuration",
    "LognormalDuration",
    "MixtureWorkload",
    "SpikeWorkload",
    "ParetoDuration",
    "PoissonWorkload",
    "UniformDuration",
    "UniformIntegerSize",
    "UniformWorkload",
    "VMType",
    "WorkloadGenerator",
    "best_fit_trap",
    "generate_batch",
    "iter_batch",
    "theorem5_instance",
    "theorem6_instance",
    "theorem8_instance",
]
