"""Reusable samplers for durations and sizes.

The extension studies (DESIGN.md §6) vary the workload distribution away
from Section 7's uniform setup; this module collects the samplers so
generators stay declarative.  Every sampler is a small object with a
``draw(rng, size) -> ndarray`` method and a readable ``repr``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "UniformDuration",
    "ExponentialDuration",
    "LognormalDuration",
    "ParetoDuration",
    "UniformIntegerSize",
    "DirichletSize",
]


@dataclass(frozen=True)
class UniformDuration:
    """Integral durations uniform on ``[low, high]`` (the paper's choice)."""

    low: float = 1.0
    high: float = 10.0
    integral: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.integral:
            return rng.integers(int(self.low), int(self.high) + 1, size=size).astype(np.float64)
        return rng.uniform(self.low, self.high, size=size)


@dataclass(frozen=True)
class ExponentialDuration:
    """Exponential durations with the given mean, clipped to ``[floor, cap]``.

    The clip keeps ``μ`` finite and controlled, which the MinUsageTime
    bounds require.
    """

    mean: float = 10.0
    floor: float = 1.0
    cap: float = 1000.0

    def __post_init__(self) -> None:
        if not 0 < self.floor <= self.cap:
            raise ConfigurationError(f"need 0 < floor <= cap, got [{self.floor}, {self.cap}]")
        if self.mean <= 0:
            raise ConfigurationError(f"mean must be positive, got {self.mean}")

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.clip(rng.exponential(self.mean, size=size), self.floor, self.cap)


@dataclass(frozen=True)
class LognormalDuration:
    """Lognormal durations (heavy-ish tail), clipped to ``[floor, cap]``.

    Parameterised by the underlying normal's ``mu``/``sigma`` — the
    standard model for VM lifetimes in cloud-trace studies.
    """

    log_mean: float = 1.5
    log_sigma: float = 1.0
    floor: float = 1.0
    cap: float = 1000.0

    def __post_init__(self) -> None:
        if self.log_sigma <= 0:
            raise ConfigurationError(f"log_sigma must be positive, got {self.log_sigma}")
        if not 0 < self.floor <= self.cap:
            raise ConfigurationError(f"need 0 < floor <= cap, got [{self.floor}, {self.cap}]")

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.clip(rng.lognormal(self.log_mean, self.log_sigma, size=size), self.floor, self.cap)


@dataclass(frozen=True)
class ParetoDuration:
    """Pareto (power-law) durations: ``floor * (1 + Pareto(alpha))``, capped.

    ``alpha <= 1`` gives an infinite-mean tail before capping — the
    stress case for alignment-sensitive algorithms like Next Fit.
    """

    alpha: float = 1.5
    floor: float = 1.0
    cap: float = 1000.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if not 0 < self.floor <= self.cap:
            raise ConfigurationError(f"need 0 < floor <= cap, got [{self.floor}, {self.cap}]")

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.clip(self.floor * (1.0 + rng.pareto(self.alpha, size=size)), self.floor, self.cap)


@dataclass(frozen=True)
class UniformIntegerSize:
    """Sizes uniform on ``{1, ..., B}`` per dimension (the paper's choice)."""

    B: int = 100

    def __post_init__(self) -> None:
        if self.B < 1:
            raise ConfigurationError(f"B must be >= 1, got {self.B}")

    def draw(self, rng: np.random.Generator, n: int, d: int) -> np.ndarray:
        return rng.integers(1, self.B + 1, size=(n, d)).astype(np.float64)


@dataclass(frozen=True)
class DirichletSize:
    """Sizes with a Dirichlet-shaped demand profile scaled by a magnitude.

    Each item draws a magnitude uniform on ``[min_mag, max_mag]`` (as a
    fraction of capacity) and splits it across dimensions by a Dirichlet
    sample, then rescales so the max dimension equals the magnitude —
    modelling items with one dominant resource and smaller others.
    """

    concentration: float = 1.0
    min_mag: float = 0.05
    max_mag: float = 1.0

    def __post_init__(self) -> None:
        if self.concentration <= 0:
            raise ConfigurationError(f"concentration must be positive, got {self.concentration}")
        if not 0 < self.min_mag <= self.max_mag <= 1.0:
            raise ConfigurationError(
                f"need 0 < min_mag <= max_mag <= 1, got [{self.min_mag}, {self.max_mag}]"
            )

    def draw(self, rng: np.random.Generator, n: int, d: int) -> np.ndarray:
        mags = rng.uniform(self.min_mag, self.max_mag, size=n)
        weights = rng.dirichlet(np.full(d, self.concentration), size=n)
        peak = weights.max(axis=1, keepdims=True)
        profiles = weights / peak  # max dimension == 1
        return profiles * mags[:, np.newaxis]
