"""Composite workloads: mixtures and overlays of other generators.

Real traffic is rarely one clean distribution — a cloud cluster sees a
base of long-lived services plus bursts of batch jobs.  This module
builds such scenarios compositionally:

* :class:`MixtureWorkload` — each instance is the *union* of one sample
  from every component generator (all active over the same horizon),
  e.g. a service baseline overlaid with batch spikes;
* :class:`SpikeWorkload` — a convenience wrapper adding flash-crowd
  spikes (many near-simultaneous arrivals) on top of a base generator,
  the stress pattern that punishes alignment-blind policies.

All components must agree on dimensionality and (after normalisation)
capacity; the composite normalises every component to unit capacity so
heterogeneous ``B`` values compose safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import WorkloadGenerator

__all__ = ["MixtureWorkload", "SpikeWorkload"]


@dataclass
class MixtureWorkload(WorkloadGenerator):
    """Union of one sample from each component generator.

    Parameters
    ----------
    components:
        The component generators.  Every sampled instance is normalised
        to unit capacity before merging, so components may use different
        ``B`` scales.
    name:
        Label stamped on generated instances.
    """

    components: Tuple[WorkloadGenerator, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("MixtureWorkload needs at least one component")

    def sample(self, rng: np.random.Generator) -> Instance:
        parts: List[Instance] = []
        for gen in self.components:
            parts.append(gen.sample(rng).normalized())
        d = parts[0].d
        for p in parts:
            if p.d != d:
                raise ConfigurationError(
                    f"mixture components disagree on d: {p.d} vs {d}"
                )
        items: List[Item] = []
        for part in parts:
            items.extend(part.items)
        items.sort(key=lambda it: it.arrival)
        items = [it.with_uid(i) for i, it in enumerate(items)]
        label = self.name or f"mixture({len(parts)} components)"
        return Instance(items, capacity=np.ones(d), name=label, _skip_sort_check=True)


@dataclass
class SpikeWorkload(WorkloadGenerator):
    """A base workload plus flash-crowd spikes.

    At each of ``num_spikes`` uniformly random instants, ``spike_size``
    items of identical shape ``spike_demand`` arrive simultaneously with
    duration ``spike_duration`` — the cloud-gaming "new release night"
    pattern.

    Parameters
    ----------
    base:
        The background generator (normalised to unit capacity).
    num_spikes / spike_size:
        How many spikes and how many items per spike.
    spike_demand:
        Per-item demand vector of the spike items (fractions of
        capacity); must match the base dimensionality.
    spike_duration:
        Duration of every spike item.
    horizon:
        Window the spike instants are drawn from; defaults to the base
        sample's horizon.
    """

    base: WorkloadGenerator = None  # type: ignore[assignment]
    num_spikes: int = 3
    spike_size: int = 20
    spike_demand: Tuple[float, ...] = (0.2, 0.2)
    spike_duration: float = 2.0
    horizon: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.base is None:
            raise ConfigurationError("SpikeWorkload needs a base generator")
        if self.num_spikes < 1 or self.spike_size < 1:
            raise ConfigurationError("num_spikes and spike_size must be >= 1")
        if self.spike_duration <= 0:
            raise ConfigurationError("spike_duration must be positive")
        if not all(0 < x <= 1 for x in self.spike_demand):
            raise ConfigurationError(
                f"spike demands must lie in (0, 1], got {self.spike_demand}"
            )

    def sample(self, rng: np.random.Generator) -> Instance:
        base_inst = self.base.sample(rng).normalized()
        if len(self.spike_demand) != base_inst.d:
            raise ConfigurationError(
                f"spike demand dimension {len(self.spike_demand)} does not "
                f"match base d={base_inst.d}"
            )
        horizon = self.horizon or base_inst.horizon.end
        demand = np.asarray(self.spike_demand, dtype=np.float64)
        items: List[Item] = list(base_inst.items)
        uid = len(items)
        for _ in range(self.num_spikes):
            t = float(rng.uniform(0, max(horizon - self.spike_duration, 0.0)))
            for _ in range(self.spike_size):
                items.append(Item(t, t + self.spike_duration, demand.copy(), uid))
                uid += 1
        items.sort(key=lambda it: it.arrival)
        items = [it.with_uid(i) for i, it in enumerate(items)]
        label = self.name or f"spiky({self.num_spikes}x{self.spike_size})"
        return Instance(
            items, capacity=np.ones(base_inst.d), name=label, _skip_sort_check=True
        )
