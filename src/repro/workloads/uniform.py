"""The Section 7 uniform synthetic workload (Table 2).

Closely follows the experimental setup of the paper (itself following
Kamali-López-Ortiz for the 1-D case): bins of size ``B`` per dimension,
item sizes uniform on ``{1, ..., B}^d``, integral arrival times uniform
on ``[0, T - μ]``, integral durations uniform on ``[1, μ]``.

Defaults are the paper's Table 2 values: ``n = 1000``, ``T = 1000``,
``B = 100``; ``d ∈ {1, 2, 5}`` and ``μ ∈ {1, 2, 5, 10, 100, 200}``
form the sweep grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import WorkloadGenerator

__all__ = ["UniformWorkload"]


@dataclass
class UniformWorkload(WorkloadGenerator):
    """Uniform random instances per the paper's Section 7 setup.

    Parameters
    ----------
    d:
        Number of resource dimensions.
    n:
        Number of items per instance.
    mu:
        Maximum (integral) item duration; durations are uniform on
        ``[1, mu]``.  With minimum duration 1 this is also the max/min
        duration ratio of Section 2 — except for ``mu = 1`` instances,
        where all durations equal 1.
    T:
        Sequence span parameter; arrivals are uniform integers on
        ``[0, T - mu]``.
    B:
        Integer bin size per dimension; item sizes are uniform integers
        on ``{1, ..., B}``.
    name:
        Optional label stamped on generated instances.
    """

    d: int = 1
    n: int = 1000
    mu: int = 10
    T: int = 1000
    B: int = 100
    name: str = ""

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if self.mu < 1:
            raise ConfigurationError(f"mu must be >= 1, got {self.mu}")
        if self.B < 1:
            raise ConfigurationError(f"B must be >= 1, got {self.B}")
        if self.T <= self.mu:
            raise ConfigurationError(
                f"T must exceed mu so the arrival window [0, T - mu] is "
                f"non-trivial; got T={self.T}, mu={self.mu}"
            )

    def sample(self, rng: np.random.Generator) -> Instance:
        # vectorised draw of all item fields at once (hot path of the
        # m=1000-instance sweeps)
        arrivals = rng.integers(0, self.T - self.mu + 1, size=self.n).astype(np.float64)
        durations = rng.integers(1, self.mu + 1, size=self.n).astype(np.float64)
        sizes = rng.integers(1, self.B + 1, size=(self.n, self.d)).astype(np.float64)
        order = np.argsort(arrivals, kind="stable")
        items = [
            Item(
                arrival=float(arrivals[j]),
                departure=float(arrivals[j] + durations[j]),
                size=sizes[j],
                uid=uid,
            )
            for uid, j in enumerate(order)
        ]
        capacity = np.full(self.d, float(self.B))
        label = self.name or f"uniform(d={self.d},mu={self.mu},n={self.n})"
        return Instance(items, capacity=capacity, name=label, _skip_sort_check=True)

    def stream(
        self, rng: np.random.Generator, limit: Optional[int] = None
    ) -> Iterator[Item]:
        """Lazy uniform stream via sequential conditional order statistics.

        Emits the ``n`` arrivals already sorted without drawing them all
        first: given the previous arrival ``u``, the next sorted uniform
        on ``[0, hi]`` with ``m`` draws remaining is
        ``u + (hi - u) * (1 - (1 - v)^(1/m))`` for ``v ~ U(0, 1)`` (the
        minimum of ``m`` uniforms on ``[u, hi]``).  Live state is one
        float.

        Deliberate, documented deviation from :meth:`sample`: the
        streamed arrivals are **continuous** on ``[0, T - mu]``, not the
        integer grid of the Table 2 setup (an integer grid cannot be
        emitted sorted with O(1) state).  Durations and sizes keep the
        integral marginals.  Use :meth:`sample` when the paper's exact
        integral construction matters; use the stream for long
        bounded-memory replays.
        """
        n = self.n if limit is None else min(self.n, int(limit))
        hi = float(self.T - self.mu)
        u = 0.0
        for k in range(n):
            v = float(rng.random())
            u = u + (hi - u) * (1.0 - (1.0 - v) ** (1.0 / (n - k)))
            duration = float(rng.integers(1, self.mu + 1))
            size = rng.integers(1, self.B + 1, size=self.d).astype(np.float64)
            yield Item(u, u + duration, size, uid=k)
