"""Synthetic cloud VM trace generator (Azure-like).

The paper's introduction motivates DVBP with VM placement at cloud scale
(Protean/Azure) and cloud gaming.  The real traces are proprietary, so —
per the reproduction's substitution policy (DESIGN.md §2) — this module
synthesises a trace with the published *stylised facts* of such
workloads, exercising the same code path (online arrivals → Any Fit
dispatch → usage-time accounting):

* a small catalogue of **VM types** (fixed CPU/memory/... shapes, like
  instance families) with a skewed popularity distribution — most
  requests are small;
* **diurnal** arrival-rate modulation (sinusoidal day/night pattern)
  over a multi-day horizon;
* **lognormal lifetimes** with a heavy tail, clipped to keep ``μ``
  finite;
* optional burstiness: arrivals in small batches (deployment groups).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import WorkloadGenerator

__all__ = ["VMType", "CloudTraceWorkload", "DEFAULT_VM_CATALOGUE"]


@dataclass(frozen=True)
class VMType:
    """A VM shape: name, demand vector (fraction of server), popularity."""

    name: str
    demand: Tuple[float, ...]
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"VM type {self.name}: weight must be positive")
        if not self.demand or any(x <= 0 or x > 1 for x in self.demand):
            raise ConfigurationError(
                f"VM type {self.name}: demands must lie in (0, 1], got {self.demand}"
            )


#: A 2-D (CPU, memory) catalogue loosely shaped like public-cloud general/
#: compute/memory-optimised families; weights skew toward small shapes.
DEFAULT_VM_CATALOGUE: Tuple[VMType, ...] = (
    VMType("tiny", (0.025, 0.03), 30.0),
    VMType("small", (0.05, 0.06), 25.0),
    VMType("medium", (0.10, 0.12), 20.0),
    VMType("large", (0.20, 0.25), 12.0),
    VMType("xlarge", (0.40, 0.50), 6.0),
    VMType("compute", (0.30, 0.12), 4.0),
    VMType("memory", (0.10, 0.45), 3.0),
)


@dataclass
class CloudTraceWorkload(WorkloadGenerator):
    """Azure-like synthetic VM request trace.

    Parameters
    ----------
    catalogue:
        VM type catalogue; all demands must share one dimensionality.
    days:
        Horizon in days (one day = ``day_length`` time units).
    day_length:
        Time units per day (default 24 = hourly resolution).
    base_rate:
        Mean arrivals per time unit at the diurnal midpoint.
    diurnal_amplitude:
        Relative day/night swing in ``[0, 1)``: the instantaneous rate is
        ``base_rate * (1 + amplitude * sin(2π t / day_length))``.
    lifetime_log_mean / lifetime_log_sigma:
        Lognormal lifetime parameters (time units).
    min_lifetime / max_lifetime:
        Clip bounds keeping ``μ`` finite.
    batch_mean:
        Mean geometric batch size (1 = no batching): each arrival event
        brings a geometric number of identical-type requests.
    """

    catalogue: Tuple[VMType, ...] = DEFAULT_VM_CATALOGUE
    days: int = 3
    day_length: float = 24.0
    base_rate: float = 6.0
    diurnal_amplitude: float = 0.6
    lifetime_log_mean: float = 1.2
    lifetime_log_sigma: float = 1.1
    min_lifetime: float = 0.25
    max_lifetime: float = 72.0
    batch_mean: float = 1.5
    name: str = ""

    def __post_init__(self) -> None:
        if not self.catalogue:
            raise ConfigurationError("catalogue must be non-empty")
        d = len(self.catalogue[0].demand)
        if any(len(t.demand) != d for t in self.catalogue):
            raise ConfigurationError("all VM types must share one dimensionality")
        if self.days < 1 or self.day_length <= 0 or self.base_rate <= 0:
            raise ConfigurationError("days, day_length, base_rate must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if not 0 < self.min_lifetime <= self.max_lifetime:
            raise ConfigurationError("need 0 < min_lifetime <= max_lifetime")
        if self.batch_mean < 1:
            raise ConfigurationError(f"batch_mean must be >= 1, got {self.batch_mean}")

    @property
    def d(self) -> int:
        """Resource dimensionality of the catalogue."""
        return len(self.catalogue[0].demand)

    def _arrival_times(self, rng: np.random.Generator) -> np.ndarray:
        """Thinned non-homogeneous Poisson arrivals over the horizon."""
        horizon = self.days * self.day_length
        peak = self.base_rate * (1 + self.diurnal_amplitude)
        n_candidates = int(rng.poisson(peak * horizon)) or 1
        candidates = np.sort(rng.uniform(0, horizon, size=n_candidates))
        rate = self.base_rate * (
            1 + self.diurnal_amplitude * np.sin(2 * np.pi * candidates / self.day_length)
        )
        keep = rng.uniform(0, peak, size=n_candidates) < rate
        times = candidates[keep]
        return times if times.size else np.array([0.0])

    def sample(self, rng: np.random.Generator) -> Instance:
        times = self._arrival_times(rng)
        weights = np.array([t.weight for t in self.catalogue])
        weights = weights / weights.sum()
        items: List[Item] = []
        uid = 0
        p_batch = 1.0 / self.batch_mean
        for t in times:
            type_idx = int(rng.choice(len(self.catalogue), p=weights))
            batch = int(rng.geometric(p_batch)) if self.batch_mean > 1 else 1
            demand = np.asarray(self.catalogue[type_idx].demand, dtype=np.float64)
            for _ in range(batch):
                lifetime = float(
                    np.clip(
                        rng.lognormal(self.lifetime_log_mean, self.lifetime_log_sigma),
                        self.min_lifetime,
                        self.max_lifetime,
                    )
                )
                items.append(Item(float(t), float(t) + lifetime, demand.copy(), uid))
                uid += 1
        label = self.name or f"cloud_trace(days={self.days})"
        return Instance(items, capacity=np.ones(self.d), name=label, _skip_sort_check=True)
