"""Correlated-dimension workloads (Gaussian copula).

Real cloud demands are correlated across resources (a big-CPU VM usually
also wants more memory).  This generator draws per-item demand vectors
through a Gaussian copula with a configurable common correlation ``rho``,
then maps marginals to ``[min_size, max_size]`` uniformly.  ``rho = 0``
recovers independent dimensions; ``rho → 1`` makes all dimensions move
together, which effectively collapses the problem toward 1-D — the
ablation of DESIGN.md §6 measures how the algorithm ranking responds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from .base import WorkloadGenerator

__all__ = ["CorrelatedWorkload"]


@dataclass
class CorrelatedWorkload(WorkloadGenerator):
    """Uniform-marginal sizes with copula correlation ``rho`` across dims.

    Parameters
    ----------
    d:
        Resource dimensions (``d >= 1``; ``rho`` is ignored for ``d=1``).
    n:
        Items per instance.
    rho:
        Common pairwise correlation of the Gaussian copula, in
        ``[0, 1)``.
    mu:
        Max duration; durations are integral uniform on ``[1, mu]``.
    T:
        Arrival window parameter (integral arrivals on ``[0, T - mu]``).
    min_size / max_size:
        Uniform marginal size range as a fraction of (unit) capacity.
    """

    d: int = 2
    n: int = 1000
    rho: float = 0.8
    mu: int = 10
    T: int = 1000
    min_size: float = 0.01
    max_size: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if not 0.0 <= self.rho < 1.0:
            raise ConfigurationError(f"rho must be in [0, 1), got {self.rho}")
        if not 0 < self.min_size <= self.max_size <= 1.0:
            raise ConfigurationError(
                f"need 0 < min_size <= max_size <= 1, got "
                f"[{self.min_size}, {self.max_size}]"
            )
        if self.mu < 1 or self.T <= self.mu:
            raise ConfigurationError(f"need 1 <= mu < T, got mu={self.mu}, T={self.T}")

    def sample(self, rng: np.random.Generator) -> Instance:
        cov = np.full((self.d, self.d), self.rho)
        np.fill_diagonal(cov, 1.0)
        z = rng.multivariate_normal(np.zeros(self.d), cov, size=self.n, method="cholesky")
        u = stats.norm.cdf(z)  # uniform marginals with the copula's dependence
        sizes = self.min_size + (self.max_size - self.min_size) * u

        arrivals = rng.integers(0, self.T - self.mu + 1, size=self.n).astype(np.float64)
        durations = rng.integers(1, self.mu + 1, size=self.n).astype(np.float64)
        order = np.argsort(arrivals, kind="stable")
        items = [
            Item(float(arrivals[j]), float(arrivals[j] + durations[j]), sizes[j], uid=uid)
            for uid, j in enumerate(order)
        ]
        label = self.name or f"correlated(d={self.d},rho={self.rho:g})"
        return Instance(items, capacity=np.ones(self.d), name=label, _skip_sort_check=True)

    def empirical_correlation(self, rng: np.random.Generator, n: int = 5000) -> float:
        """Mean pairwise Pearson correlation of a size sample (diagnostic)."""
        if self.d < 2:
            return 1.0
        inst = self.sample(rng)
        sizes = np.stack([it.size for it in inst.items])
        corr = np.corrcoef(sizes, rowvar=False)
        off = corr[~np.eye(self.d, dtype=bool)]
        return float(np.mean(off))
