"""Instance profiling: the statistics a capacity planner would ask for.

:func:`describe_instance` computes a structured profile of one instance
— arrival intensity, duration distribution, demand distribution,
concurrency/load percentiles over time — and
:func:`render_description` prints it.  Used by the examples to
characterise the synthetic traces, and handy when debugging why a
workload behaves unlike its generator's intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.instance import Instance
from ..optimum.lower_bounds import load_profile

__all__ = ["InstanceProfile", "describe_instance", "render_description"]


@dataclass(frozen=True)
class InstanceProfile:
    """Summary statistics of one instance.

    All time-weighted quantities (concurrency/load percentiles) weight
    each breakpoint segment by its length, so they describe the system
    *over time* rather than over events.
    """

    n: int
    d: int
    mu: float
    span: float
    horizon: float
    arrival_rate: float
    duration_mean: float
    duration_median: float
    duration_p95: float
    max_demand_mean: float
    concurrency_mean: float
    concurrency_p95: float
    peak_load: Tuple[float, ...]
    time_weighted_load_mean: Tuple[float, ...]

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for tabular reports."""
        return {
            "n": self.n,
            "d": self.d,
            "mu": self.mu,
            "span": self.span,
            "horizon": self.horizon,
            "arrival_rate": self.arrival_rate,
            "duration_mean": self.duration_mean,
            "duration_median": self.duration_median,
            "duration_p95": self.duration_p95,
            "max_demand_mean": self.max_demand_mean,
            "concurrency_mean": self.concurrency_mean,
            "concurrency_p95": self.concurrency_p95,
            "peak_load": list(self.peak_load),
            "time_weighted_load_mean": list(self.time_weighted_load_mean),
        }


def _weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    order = np.argsort(values)
    v, w = values[order], weights[order]
    cum = np.cumsum(w)
    if cum[-1] <= 0:
        return float(v[-1]) if v.size else 0.0
    target = q / 100.0 * cum[-1]
    idx = int(np.searchsorted(cum, target))
    return float(v[min(idx, v.size - 1)])


def describe_instance(instance: Instance) -> InstanceProfile:
    """Compute the full :class:`InstanceProfile` of ``instance``."""
    norm = instance.normalized()
    durations = np.array([it.duration for it in norm.items])
    max_demands = np.array([float(np.max(it.size)) for it in norm.items])
    horizon = norm.horizon.length

    times, loads = load_profile(norm)
    seg_lengths = np.diff(times)
    # concurrency: number of active items per segment
    starts = np.array([it.arrival for it in norm.items])
    ends = np.array([it.departure for it in norm.items])
    seg_mids = (times[:-1] + times[1:]) / 2.0
    concurrency = np.array(
        [int(np.sum((starts <= t) & (t < ends))) for t in seg_mids], dtype=np.float64
    )

    total_time = float(seg_lengths.sum()) or 1.0
    mean_load = tuple(
        float(x) for x in (loads * seg_lengths[:, np.newaxis]).sum(axis=0) / total_time
    )

    return InstanceProfile(
        n=norm.n,
        d=norm.d,
        mu=norm.mu,
        span=norm.span,
        horizon=horizon,
        arrival_rate=norm.n / horizon if horizon > 0 else float("inf"),
        duration_mean=float(durations.mean()),
        duration_median=float(np.median(durations)),
        duration_p95=float(np.percentile(durations, 95)),
        max_demand_mean=float(max_demands.mean()),
        concurrency_mean=float((concurrency * seg_lengths).sum() / total_time),
        concurrency_p95=_weighted_percentile(concurrency, seg_lengths, 95),
        peak_load=tuple(float(x) for x in loads.max(axis=0)),
        time_weighted_load_mean=mean_load,
    )


def render_description(instance: Instance) -> str:
    """Text rendering of :func:`describe_instance`."""
    p = describe_instance(instance)
    lines = [
        f"instance profile: {instance.name or '(unnamed)'}",
        f"  items              {p.n} over horizon {p.horizon:g} "
        f"(rate {p.arrival_rate:.3g}/unit)",
        f"  dimensions         {p.d}",
        f"  durations          mean {p.duration_mean:.3g}, median "
        f"{p.duration_median:.3g}, p95 {p.duration_p95:.3g}, mu {p.mu:.3g}",
        f"  max demand/item    mean {p.max_demand_mean:.3g} (of capacity)",
        f"  concurrency        mean {p.concurrency_mean:.3g}, p95 "
        f"{p.concurrency_p95:.3g} items",
        f"  peak load          "
        + ", ".join(f"dim{j}={x:.3g}" for j, x in enumerate(p.peak_load))
        + " (bins needed at peak: "
        + str(int(np.ceil(max(p.peak_load) - 1e-9)))
        + ")",
        f"  mean load          "
        + ", ".join(f"dim{j}={x:.3g}" for j, x in enumerate(p.time_weighted_load_mean)),
        f"  span               {p.span:g}",
    ]
    return "\n".join(lines)
