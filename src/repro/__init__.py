"""repro — MinUsageTime Dynamic Vector Bin Packing (DVBP).

A production-quality reproduction of *"Dynamic Vector Bin Packing for
Online Resource Allocation in the Cloud"* (Murhekar, Arbour, Mai, Rao —
SPAA 2023): the Any Fit algorithm family (Move To Front, First Fit, Next
Fit, Best/Worst/Last/Random Fit), a discrete-event online packing
simulator, Lemma 1 optimum lower bounds and an exact offline optimum,
the paper's adversarial lower-bound constructions, the Section 7
average-case experiments, and clairvoyant/trace-driven extensions.

Quickstart
----------
>>> from repro import UniformWorkload, simulate, MoveToFront
>>> from repro.optimum import height_lower_bound
>>> instance = UniformWorkload(d=2, n=100, mu=10).sample_seeded(0)
>>> packing = simulate(MoveToFront(), instance)
>>> round(packing.cost / height_lower_bound(instance), 2) >= 1.0
True
"""

from .algorithms import (
    AlignmentBestFit,
    AnyFitAlgorithm,
    BestFit,
    DurationClassifiedFirstFit,
    FirstFit,
    LastFit,
    MoveToFront,
    NextFit,
    OnlineAlgorithm,
    PAPER_ALGORITHMS,
    RandomFit,
    WorstFit,
    available_algorithms,
    make_algorithm,
)
from .core import (
    Bin,
    DVBPError,
    Instance,
    Interval,
    Item,
    Packing,
    make_item,
)
from .optimum import (
    height_lower_bound,
    opt_lower_bound,
    optimum_cost,
    optimum_cost_bounds,
)
from .simulation import Engine, compare_algorithms, compute_metrics, run, simulate
from .workloads import (
    CloudTraceWorkload,
    CorrelatedWorkload,
    PoissonWorkload,
    UniformWorkload,
    generate_batch,
    theorem5_instance,
    theorem6_instance,
    theorem8_instance,
)

__version__ = "1.0.0"

__all__ = [
    "AlignmentBestFit",
    "AnyFitAlgorithm",
    "BestFit",
    "Bin",
    "CloudTraceWorkload",
    "CorrelatedWorkload",
    "DVBPError",
    "DurationClassifiedFirstFit",
    "Engine",
    "FirstFit",
    "Instance",
    "Interval",
    "Item",
    "LastFit",
    "MoveToFront",
    "NextFit",
    "OnlineAlgorithm",
    "PAPER_ALGORITHMS",
    "Packing",
    "PoissonWorkload",
    "RandomFit",
    "UniformWorkload",
    "WorstFit",
    "available_algorithms",
    "compare_algorithms",
    "compute_metrics",
    "generate_batch",
    "height_lower_bound",
    "make_algorithm",
    "make_item",
    "opt_lower_bound",
    "optimum_cost",
    "optimum_cost_bounds",
    "run",
    "simulate",
    "theorem5_instance",
    "theorem6_instance",
    "theorem8_instance",
    "__version__",
]
