"""Migration-budget repacking: bounded recourse on top of the online engines.

The paper's model is strictly no-recourse — Theorems 5/6/8 lower-bound
any algorithm that never moves a placed item.  This package implements
the natural relaxation from the limited-repacking literature
(arXiv:1711.02078, arXiv:1411.0960): after every arrival/departure
event, a repacking policy may relocate up to ``k`` live items (or draw
from an amortized credit), with the budget enforced as a hard invariant
by an audited :class:`~repro.repacking.ledger.MigrationLedger`.

Entry points
------------
:func:`~repro.repacking.engine.repacking_run`
    Run one (dispatch policy, repack policy, budget) triple on one
    instance; also reachable as ``run(..., engine="repacking")`` and
    ``repro run --engine repacking --repacker NAME --budget K``.
:data:`~repro.repacking.policies.REPACK_POLICIES`
    The shipped policies: ``no_repack`` (budget-0 twin, bit-identical
    to the classic engine), ``greedy_consolidate`` (per-event budget),
    ``budgeted_rebalance`` (amortized budget).
:func:`~repro.repacking.audit.audit_repacking`
    First-principles auditor over a finished run's residency segments
    and move log (independent of the ledger it polices).

>>> from repro.repacking import repacking_run, make_repacker
>>> from repro.algorithms.registry import make_algorithm
>>> from repro.core.instance import Instance
>>> inst = Instance.from_tuples(
...     [(0.0, 10.0, 0.4), (0.0, 2.0, 0.6), (1.0, 10.0, 0.5)], name="demo")
>>> base = repacking_run(make_algorithm("first_fit"), inst)  # no_repack
>>> rep = repacking_run(
...     make_algorithm("first_fit"), inst, repacker="greedy_consolidate", budget=1)
>>> (base.cost, base.num_moves), (rep.cost, rep.num_moves)
((19.0, 0), (11.0, 1))
"""

from .audit import audit_migration_budget, audit_repacking
from .engine import (
    RepackContext,
    RepackResult,
    RepackingEngine,
    first_principles_cost,
    parse_repacking_spec,
    repacking_run,
)
from .ledger import BUDGET_MODES, MigrationLedger, MoveRecord, replay_budget_check
from .policies import (
    REPACK_POLICIES,
    BudgetedRebalance,
    GreedyConsolidate,
    NoRepack,
    RepackPolicy,
    make_repacker,
)

__all__ = [
    "MigrationLedger",
    "MoveRecord",
    "BUDGET_MODES",
    "replay_budget_check",
    "RepackPolicy",
    "NoRepack",
    "GreedyConsolidate",
    "BudgetedRebalance",
    "REPACK_POLICIES",
    "make_repacker",
    "RepackContext",
    "RepackResult",
    "RepackingEngine",
    "repacking_run",
    "first_principles_cost",
    "parse_repacking_spec",
    "audit_repacking",
    "audit_migration_budget",
]
