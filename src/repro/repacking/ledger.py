"""Migration ledger: the audited recourse budget of the repacking engine.

The paper's model is strictly no-recourse; the repacking engine
(:mod:`repro.repacking.engine`) relaxes it following *Fully-Dynamic Bin
Packing with Limited Repacking* (Gupta–Guruganesh–Kumar–Wajc,
arXiv:1711.02078): each arrival/departure event may additionally
relocate a bounded number of live items.  The :class:`MigrationLedger`
is the single authority on that bound.  Every move flows through
:meth:`MigrationLedger.record`, which either admits the move (appending
an immutable :class:`MoveRecord` carrying the move's projected Eq. 1
cost delta) or raises
:class:`~repro.core.errors.MigrationBudgetError` *before* any engine
state is mutated — the budget is a hard invariant, not a soft counter.

Two budget modes are supported, matching the two regimes of the
limited-repacking literature:

``per_event``
    At most ``budget`` moves per event (``k`` in the papers).  The
    allowance does **not** accumulate: an event that moves nothing
    leaves the next event with the same cap ``k``.

``amortized``
    Each event accrues ``budget`` move credits (a possibly fractional
    *recourse rate*); credits accumulate, and every move spends one.
    A policy may therefore save up for occasional large re-packs, but
    the running total of moves never exceeds ``rate x events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.errors import ConfigurationError, MigrationBudgetError

__all__ = ["MoveRecord", "MigrationLedger", "BUDGET_MODES", "replay_budget_check"]

#: The two supported budget-accounting regimes.
BUDGET_MODES = ("per_event", "amortized")


@dataclass(frozen=True)
class MoveRecord:
    """One admitted migration, as recorded by the ledger.

    Attributes
    ----------
    event_index:
        0-based index of the event (in ``(time, kind, seq)`` stream
        order) during whose repack window the move happened.  Distinct
        events can share a timestamp, so audits group by this index,
        never by ``time``.
    time:
        Simulation time of the move (equals the event's time).
    uid:
        Uid of the relocated item.
    src / dst:
        Bin indexes the item moved out of / into.
    cost_delta:
        Projected Eq. 1 cost delta of the move at decision time: the
        change in the two bins' projected close times (projected close =
        latest departure among current residents; ``now`` for a bin the
        move empties).  Negative deltas shrink the projected cost.
    closed_src:
        Whether the move emptied (and therefore closed) the source bin.
    """

    event_index: int
    time: float
    uid: int
    src: int
    dst: int
    cost_delta: float
    closed_src: bool = False


@dataclass
class MigrationLedger:
    """Records every migration and enforces the budget as it happens.

    Parameters
    ----------
    budget:
        Per-event move cap (``per_event`` mode) or per-event credit
        accrual rate (``amortized`` mode).  Must be >= 0; ``0`` means no
        recourse at all (the :class:`~repro.repacking.policies.NoRepack`
        twin runs with a zero ledger).
    mode:
        One of :data:`BUDGET_MODES`.
    """

    budget: float = 0.0
    mode: str = "per_event"
    moves: List[MoveRecord] = field(default_factory=list)
    events: int = 0
    _event_moves: int = field(default=0, repr=False)
    _credit: float = field(default=0.0, repr=False)
    _in_event: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in BUDGET_MODES:
            raise ConfigurationError(
                f"unknown budget mode {self.mode!r}; expected one of {BUDGET_MODES}"
            )
        if not (self.budget >= 0):
            raise ConfigurationError(f"budget must be >= 0, got {self.budget!r}")
        if self.mode == "per_event" and self.budget != int(self.budget):
            raise ConfigurationError(
                f"per-event budgets are whole move counts, got {self.budget!r}"
            )

    # ------------------------------------------------------------------
    # engine protocol
    # ------------------------------------------------------------------
    def begin_event(self) -> None:
        """Open the repack window of the next event (engine-only).

        Resets the per-event move count; in amortized mode also accrues
        this event's credit.
        """
        self.events += 1
        self._event_moves = 0
        if self.mode == "amortized":
            self._credit += self.budget
        self._in_event = True

    def remaining(self) -> float:
        """Moves still admissible within the current event's window."""
        if not self._in_event:
            return 0.0
        if self.mode == "per_event":
            return max(0.0, self.budget - self._event_moves)
        return self._credit

    def can_move(self, count: int = 1) -> bool:
        """Whether ``count`` further moves would stay within budget."""
        return self.remaining() >= count

    def record(self, move: MoveRecord) -> None:
        """Admit one move, or raise without recording.

        Raises
        ------
        MigrationBudgetError
            When the move would exceed the per-event cap or overdraw
            the amortized credit.  The engine calls this *before*
            touching any bin, so a rejected move has no side effects.
        """
        if not self.can_move(1):
            raise MigrationBudgetError(
                f"move of item {move.uid} (bin {move.src} -> {move.dst}) at "
                f"t={move.time:g} exceeds the migration budget "
                f"({self.mode}, budget={self.budget:g}, "
                f"event {move.event_index}, remaining={self.remaining():g})"
            )
        self._event_moves += 1
        if self.mode == "amortized":
            self._credit -= 1.0
        self.moves.append(move)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def num_moves(self) -> int:
        """Total migrations admitted over the whole run."""
        return len(self.moves)

    @property
    def total_cost_delta(self) -> float:
        """Sum of the projected Eq. 1 deltas of all admitted moves."""
        return sum(m.cost_delta for m in self.moves)

    def moves_by_event(self) -> dict:
        """``event_index -> move count`` over the admitted moves."""
        counts: dict = {}
        for m in self.moves:
            counts[m.event_index] = counts.get(m.event_index, 0) + 1
        return counts

    def max_moves_per_event(self) -> int:
        """Largest number of moves any single event admitted."""
        return max(self.moves_by_event().values(), default=0)

    def summary(self) -> dict:
        """Compact dict for reports and bench payloads."""
        return {
            "mode": self.mode,
            "budget": self.budget,
            "events": self.events,
            "moves": self.num_moves,
            "max_moves_per_event": self.max_moves_per_event(),
            "total_cost_delta": self.total_cost_delta,
        }


def replay_budget_check(
    moves: Tuple[MoveRecord, ...], budget: float, mode: str, events: int
) -> List[str]:
    """First-principles budget re-check over a finished run's move log.

    Re-derives per-event counts (grouping by ``event_index``) and
    replays the credit arithmetic, *without* trusting any live ledger
    state — this is what the verify harness's invariant auditor uses to
    catch a mutant engine that bypasses :meth:`MigrationLedger.record`.
    Returns human-readable violation strings (empty = clean).
    """
    problems: List[str] = []
    counts: dict = {}
    for m in moves:
        counts[m.event_index] = counts.get(m.event_index, 0) + 1
        if not (0 <= m.event_index < events):
            problems.append(
                f"move of item {m.uid} references event {m.event_index} "
                f"outside the run's {events} events"
            )
    if mode == "per_event":
        for idx, count in sorted(counts.items()):
            if count > budget:
                problems.append(
                    f"event {idx} performed {count} moves, exceeding the "
                    f"per-event budget {budget:g}"
                )
    else:
        # cumulative check: after event e, total moves <= rate * (e + 1)
        running = 0
        for idx in sorted(counts):
            running += counts[idx]
            allowed = budget * (idx + 1)
            if running > allowed + 1e-9:
                problems.append(
                    f"after event {idx} the run had made {running} moves, "
                    f"exceeding the accrued amortized credit {allowed:g}"
                )
    return problems
