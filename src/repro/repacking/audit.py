"""First-principles auditors for repacking runs.

Everything here re-derives its verdicts from a finished
:class:`~repro.repacking.engine.RepackResult`'s *raw evidence* — the
residency segments and the engine's unconditional move log — never from
the live ledger state it is supposed to police.  That independence is
what lets the verify harness catch a mutant engine that bypasses
:meth:`~repro.repacking.ledger.MigrationLedger.record` (the
``BudgetIgnoringRepacker`` smoke test in :mod:`repro.verify.mutation`).

Checks
------
* **budget** — per-event move counts (grouped by event index, never by
  timestamp) stay within the per-event cap, or the cumulative count
  stays within the accrued amortized credit; and the ledger's own log
  agrees with the engine's.
* **segments** — every item's segments tile its ``[arrival,
  departure)`` exactly (abutting at move times, no gaps, no overlaps)
  and the final segment's bin matches the packing's assignment.
* **capacity** — replaying all segments per bin, the load vector stays
  within capacity (+EPS) at every segment start.
* **cost** — the packing's Eq. 1 cost equals the segment-derived
  first-principles cost, and each bin's recorded usage period is the
  hull of the segments it hosted.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.vectors import EPS
from .engine import RepackResult, first_principles_cost
from .ledger import replay_budget_check

__all__ = ["audit_repacking", "audit_migration_budget"]

_TOL = 1e-9


def audit_migration_budget(result: RepackResult) -> List[str]:
    """Re-check the migration budget from the engine's raw move log.

    Returns human-readable violation strings (empty = clean).  Trusts
    only ``result.moves`` (written unconditionally by the low-level move
    primitive) and the run's declared ``(mode, budget)`` — a ledger that
    under-counted, or an engine that skipped enforcement, is caught by
    the replay and by the log-agreement check.
    """
    problems = replay_budget_check(
        result.moves, result.budget, result.mode, result.ledger.events
    )
    ledger_log = tuple(result.ledger.moves)
    if ledger_log != result.moves:
        problems.append(
            f"ledger recorded {len(ledger_log)} moves but the engine "
            f"performed {len(result.moves)} — enforcement was bypassed"
        )
    return problems


def _segment_problems(result: RepackResult) -> List[str]:
    problems: List[str] = []
    instance = result.packing.instance
    for item in instance.items:
        segs = result.segments.get(item.uid)
        if not segs:
            problems.append(f"item {item.uid} has no residency segments")
            continue
        if abs(segs[0][1] - item.arrival) > _TOL:
            problems.append(
                f"item {item.uid} first segment starts at {segs[0][1]!r}, "
                f"not its arrival {item.arrival!r}"
            )
        if abs(segs[-1][2] - item.departure) > _TOL:
            problems.append(
                f"item {item.uid} last segment ends at {segs[-1][2]!r}, "
                f"not its departure {item.departure!r}"
            )
        for (b0, s0, e0), (b1, s1, e1) in zip(segs, segs[1:]):
            if abs(e0 - s1) > _TOL:
                problems.append(
                    f"item {item.uid} segments do not abut: bin {b0} ends at "
                    f"{e0!r}, bin {b1} starts at {s1!r}"
                )
            if b0 == b1:
                problems.append(
                    f"item {item.uid} has consecutive segments in bin {b0} "
                    f"(a move must change bins)"
                )
        for b, s, e in segs:
            if not (e > s):
                problems.append(
                    f"item {item.uid} has an empty segment in bin {b} "
                    f"([{s!r}, {e!r}))"
                )
        final_bin = segs[-1][0]
        if result.packing.assignment.get(item.uid) != final_bin:
            problems.append(
                f"item {item.uid} ends in bin {final_bin} but the packing "
                f"assigns it to bin {result.packing.assignment.get(item.uid)}"
            )
    return problems


def _capacity_problems(result: RepackResult) -> List[str]:
    problems: List[str] = []
    instance = result.packing.instance
    cap = instance.capacity
    slack = cap + EPS * np.maximum(cap, 1.0)
    by_uid = {it.uid: it for it in instance.items}
    per_bin: Dict[int, List[Tuple[float, float, np.ndarray]]] = {}
    for uid, segs in result.segments.items():
        size = by_uid[uid].size
        for b, s, e in segs:
            per_bin.setdefault(b, []).append((s, e, size))
    for b, segs in sorted(per_bin.items()):
        starts = np.array([s for s, _, _ in segs])
        ends = np.array([e for _, e, _ in segs])
        sizes = np.stack([sz for _, _, sz in segs])
        for t in sorted({s for s, _, _ in segs}):
            active = (starts <= t) & (t < ends)
            load = sizes[active].sum(axis=0)
            if np.any(load > slack):
                problems.append(
                    f"bin {b} over capacity at t={t!r}: load {load!r} "
                    f"exceeds capacity {cap!r}"
                )
    return problems


def _cost_problems(result: RepackResult) -> List[str]:
    problems: List[str] = []
    recomputed = first_principles_cost(result.packing.instance, result.segments)
    if abs(recomputed - result.cost) > _TOL * max(1.0, abs(recomputed)):
        problems.append(
            f"packing cost {result.cost!r} disagrees with the "
            f"segment-derived cost {recomputed!r}"
        )
    hulls: Dict[int, Tuple[float, float]] = {}
    for segs in result.segments.values():
        for b, s, e in segs:
            lo, hi = hulls.get(b, (s, e))
            hulls[b] = (min(lo, s), max(hi, e))
    for record in result.packing.bins:
        hull = hulls.get(record.index)
        if hull is None:
            # a bin opened by an arrival and evacuated within the same
            # event's repack window hosts only zero-length residencies:
            # legitimate, but only at exactly zero usage time
            if record.usage_time > _TOL:
                problems.append(
                    f"bin {record.index} hosted no segments yet bills "
                    f"{record.usage_time!r} usage time"
                )
            continue
        if abs(hull[0] - record.opened_at) > _TOL or abs(hull[1] - record.closed_at) > _TOL:
            problems.append(
                f"bin {record.index} usage period [{record.opened_at!r}, "
                f"{record.closed_at!r}) is not the hull of its segments "
                f"[{hull[0]!r}, {hull[1]!r})"
            )
    return problems


def audit_repacking(result: RepackResult) -> List[str]:
    """Run every repacking auditor; returns all violations found.

    The union of :func:`audit_migration_budget` and the segment /
    capacity / cost checks — ``repacking_run(validate=True)`` raises on
    any of these, and the verify harness records each as a
    :class:`~repro.verify.invariants.Violation`.
    """
    return (
        audit_migration_budget(result)
        + _segment_problems(result)
        + _capacity_problems(result)
        + _cost_problems(result)
    )
