"""The repacking engine: the fifth engine mode, with bounded recourse.

:class:`RepackingEngine` replays the same ``(time, kind, seq)`` event
stream as the classic :class:`~repro.simulation.engine.Engine`, with the
same algorithm dispatch on arrivals and the same departure handling —
then, *after* each event is applied, gives a
:class:`~repro.repacking.policies.RepackPolicy` a window in which it may
relocate live items through a :class:`RepackContext`.  Every relocation
is admitted by the run's :class:`~repro.repacking.ledger.MigrationLedger`
(hard budget enforcement) and logged with its projected Eq. 1 cost
delta.

With a budget of zero the repack window never moves anything, the code
path collapses to the classic engine's, and the result is **bit
identical** — the ``NoRepack`` twin is this subsystem's built-in
differential oracle (see
:func:`repro.verify.oracles.compare_with_repacking`).

Because moved items occupy different bins over disjoint sub-intervals of
their lifetime, :meth:`repro.core.packing.Packing.from_assignment`'s
hull derivation does not apply once a move has happened.  The engine
therefore tracks *residency segments* — ``uid -> ((bin, start, end),
...)`` — and builds the final :class:`~repro.core.packing.Packing` from
its own bin open/close times.  :func:`first_principles_cost` recomputes
Eq. 1 straight from the segments, and :func:`repacking_run` cross-checks
the two on every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import OnlineAlgorithm
from ..core.bins import Bin
from ..core.errors import (
    AlgorithmError,
    CapacityExceededError,
    ConfigurationError,
)
from ..core.events import EventKind, event_stream
from ..core.instance import Instance
from ..core.items import Item
from ..core.packing import BinRecord, Packing
from ..observability.stats import StatsCollector
from .ledger import MigrationLedger, MoveRecord
from .policies import RepackPolicy, make_repacker

__all__ = [
    "RepackContext",
    "RepackResult",
    "RepackingEngine",
    "repacking_run",
    "first_principles_cost",
    "parse_repacking_spec",
]

#: Tolerance for the engine-vs-first-principles cost cross-check.  Both
#: sides sum the same ``closed_at - opened_at`` differences, but in
#: different orders, so only accumulation-order drift is tolerated.
_COST_TOL = 1e-9


class RepackResult:
    """Everything a finished repacking run produced.

    Attributes
    ----------
    packing:
        Move-aware :class:`~repro.core.packing.Packing`: the final
        ``uid -> bin`` assignment plus bin records whose usage periods
        are the engine's actual open/close times (*not* item hulls — a
        moved-out item no longer pins its old bin open).
    ledger:
        The run's :class:`~repro.repacking.ledger.MigrationLedger`.
    moves:
        The engine's own move log.  Recorded unconditionally by the
        low-level move primitive — even a mutant that bypasses ledger
        enforcement leaves its tracks here, which is what the verify
        harness's budget auditor replays.
    segments:
        ``uid -> ((bin_index, start, end), ...)`` residency segments in
        chronological order; consecutive segments abut at move times and
        their union is exactly the item's ``[arrival, departure)``.
    repacker / budget / mode:
        The policy name and budget configuration of the run.
    """

    __slots__ = ("packing", "ledger", "moves", "segments", "repacker", "budget", "mode")

    def __init__(
        self,
        packing: Packing,
        ledger: MigrationLedger,
        moves: Tuple[MoveRecord, ...],
        segments: Dict[int, Tuple[Tuple[int, float, float], ...]],
        repacker: str,
        budget: float,
        mode: str,
    ) -> None:
        self.packing = packing
        self.ledger = ledger
        self.moves = moves
        self.segments = segments
        self.repacker = repacker
        self.budget = budget
        self.mode = mode

    @property
    def cost(self) -> float:
        """Eq. 1 cost of the final packing."""
        return self.packing.cost

    @property
    def num_bins(self) -> int:
        """Bins opened over the whole run."""
        return self.packing.num_bins

    @property
    def num_moves(self) -> int:
        """Total migrations performed."""
        return len(self.moves)

    def summary(self) -> dict:
        """Compact metric dict for reports and bench payloads."""
        out = self.packing.summary()
        out.update(
            repacker=self.repacker,
            budget=self.budget,
            budget_mode=self.mode,
            moves=self.num_moves,
            ledger=self.ledger.summary(),
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RepackResult(algorithm={self.packing.algorithm!r}, "
            f"repacker={self.repacker!r}, budget={self.budget:g}, "
            f"cost={self.cost:g}, bins={self.num_bins}, moves={self.num_moves})"
        )


class RepackContext:
    """The policy-facing window onto the live engine during a repack.

    Policies *read* state through it (open bins, residual fits,
    projected closes, remaining budget) and *mutate* only through
    :meth:`move`, which funnels every relocation through the ledger's
    budget check before any bin is touched.
    """

    __slots__ = ("_engine", "now")

    def __init__(self, engine: "RepackingEngine") -> None:
        self._engine = engine
        self.now = 0.0

    # -- read side -----------------------------------------------------
    @property
    def instance(self) -> Instance:
        """The instance being replayed."""
        return self._engine.instance

    def open_bins(self) -> List[Bin]:
        """Currently open bins, in opening-index order."""
        return [b for b in self._engine.bins if b.is_open]

    def bin_of(self, item: Item) -> Bin:
        """The bin ``item`` currently resides in."""
        return self._engine._bin_of_item[item.uid]

    def remaining_budget(self) -> float:
        """Moves still admissible within this event's window."""
        return self._engine.ledger.remaining()

    def can_move(self, count: int = 1) -> bool:
        """Whether ``count`` further moves fit the budget."""
        return self._engine.ledger.can_move(count)

    @staticmethod
    def projected_close(bin_: Bin) -> float:
        """Projected close time of an open bin (latest resident departure)."""
        return max((it.departure for it in bin_.active_items()), default=bin_.opened_at)

    def move_delta(self, item: Item, dst: Bin) -> float:
        """Projected Eq. 1 cost delta of moving ``item`` to ``dst`` now.

        Source side: if the move empties the source, its close time drops
        from its projected close to ``now`` (a saving); otherwise the
        source's projection is unchanged or shrinks to the remaining
        residents' latest departure.  Destination side: the destination's
        projection can only extend, by ``max(0, departure - projected)``.
        """
        src = self.bin_of(item)
        src_before = self.projected_close(src)
        others = [it.departure for it in src.active_items() if it.uid != item.uid]
        src_after = max(others) if others else self.now
        dst_before = self.projected_close(dst)
        dst_after = max(dst_before, item.departure)
        return (src_after - src_before) + (dst_after - dst_before)

    # -- write side ----------------------------------------------------
    def move(self, item: Item, dst: Bin) -> bool:
        """Relocate a live ``item`` into open bin ``dst``.

        Checked: the ledger admits the move (else
        :class:`~repro.core.errors.MigrationBudgetError`), ``dst`` is a
        *different, open* bin, and ``dst`` has residual capacity (else
        :class:`~repro.core.errors.CapacityExceededError`).  Returns
        ``True`` when the move emptied (closed) the source bin.
        """
        return self._engine._checked_move(item, dst, self.now)


class RepackingEngine:
    """Replays one instance with a dispatch policy plus a repack policy.

    Single-use, like the classic engine: construct, :meth:`run`, read
    the returned :class:`RepackResult`.
    """

    def __init__(
        self,
        instance: Instance,
        algorithm: OnlineAlgorithm,
        repacker: RepackPolicy,
        ledger: Optional[MigrationLedger] = None,
        observers: Sequence = (),
        collector: Optional[StatsCollector] = None,
    ) -> None:
        self.instance = instance
        self.algorithm = algorithm
        self.repacker = repacker
        self.ledger = ledger if ledger is not None else MigrationLedger(
            budget=repacker.default_budget, mode=repacker.mode
        )
        if self.ledger.mode != repacker.mode:
            raise ConfigurationError(
                f"repacker {repacker.name!r} accounts in {repacker.mode!r} mode "
                f"but the ledger was built for {self.ledger.mode!r}"
            )
        self.observers = list(observers)
        self.collector = collector
        self.bins: List[Bin] = []
        self._bin_of_item: Dict[int, Bin] = {}
        self._assignment: Dict[int, int] = {}
        self._segments: Dict[int, List[List[float]]] = {}
        self._moves: List[MoveRecord] = []
        self._event_index = -1
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> RepackResult:
        """Execute the full event stream and return the final result."""
        if self._ran:
            raise AlgorithmError(
                "RepackingEngine instances are single-use; build a new one"
            )
        self._ran = True
        col = self.collector
        if col is not None:
            col.repacking_runs += 1
            self.algorithm.bind_collector(col)

        ctx = RepackContext(self)
        try:
            self.algorithm.start(self.instance)
            self.repacker.start(self.instance)
            for obs in self.observers:
                obs.on_start(self.instance, self.algorithm)

            for event in event_stream(self.instance):
                self._event_index += 1
                if event.kind is EventKind.ARRIVAL:
                    self._handle_arrival(event.item, event.time)
                else:
                    self._handle_departure(event.item, event.time)
                # the repack window: budget accrues per event whether or
                # not the policy uses it (amortized credits accumulate)
                self.ledger.begin_event()
                ctx.now = event.time
                self.repacker.after_event(ctx, event.kind, event.time)
        finally:
            if col is not None:
                self.algorithm.bind_collector(None)

        packing = self._final_packing()
        for obs in self.observers:
            obs.on_finish(packing)
        return RepackResult(
            packing=packing,
            ledger=self.ledger,
            moves=tuple(self._moves),
            segments={
                uid: tuple((int(b), s, e) for b, s, e in segs)
                for uid, segs in self._segments.items()
            },
            repacker=self.repacker.name,
            budget=self.ledger.budget,
            mode=self.ledger.mode,
        )

    # ------------------------------------------------------------------
    # event handling (mirrors the classic Engine, plus segment tracking)
    # ------------------------------------------------------------------
    def _handle_arrival(self, item: Item, now: float) -> None:
        opened: List[Bin] = []

        def open_new_bin() -> Bin:
            if opened:
                raise AlgorithmError(
                    f"{self.algorithm.name} opened two bins for one item "
                    f"(item {item.uid})"
                )
            fresh = Bin(self.instance.capacity, index=len(self.bins), opened_at=now)
            self.bins.append(fresh)
            opened.append(fresh)
            for obs in self.observers:
                obs.on_bin_opened(fresh, now)
            return fresh

        target = self.algorithm.dispatch(item, now, open_new_bin)
        if target is None:
            raise AlgorithmError(
                f"{self.algorithm.name} returned no bin for item {item.uid}"
            )
        target.pack(item)
        self._bin_of_item[item.uid] = target
        self._assignment[item.uid] = target.index
        self._segments[item.uid] = [[target.index, now, item.departure]]
        for obs in self.observers:
            obs.on_packed(target, item, now, opened_new=bool(opened))

    def _handle_departure(self, item: Item, now: float) -> bool:
        bin_ = self._bin_of_item.pop(item.uid)
        closed = bin_.remove(item, now)
        self._segments[item.uid][-1][2] = now
        self.algorithm.notify_departure(bin_, item, now, closed)
        for obs in self.observers:
            obs.on_departed(bin_, item, now, closed)
        return closed

    # ------------------------------------------------------------------
    # migrations
    # ------------------------------------------------------------------
    def _checked_move(self, item: Item, dst: Bin, now: float) -> bool:
        """Budget-enforced move: ledger admission *then* mutation."""
        src = self._bin_of_item.get(item.uid)
        if src is None:
            raise AlgorithmError(f"cannot move item {item.uid}: not live")
        if dst is src:
            raise ConfigurationError(
                f"cannot move item {item.uid} into its own bin {src.index}"
            )
        if item.departure <= now:
            raise ConfigurationError(
                f"cannot move item {item.uid} at t={now:g}: it departs at "
                f"{item.departure:g} (same-instant departers are already gone)"
            )
        if not dst.is_open:
            raise ConfigurationError(
                f"cannot move item {item.uid} into closed bin {dst.index}; "
                f"closed bins are never reused (Section 2.1)"
            )
        if not dst.can_fit(item):
            raise CapacityExceededError(
                f"item {item.uid} does not fit bin {dst.index}'s residual capacity"
            )
        ctx_delta = RepackContext.projected_close  # reuse the same projection
        src_before = max((it.departure for it in src.active_items()), default=now)
        others = [it.departure for it in src.active_items() if it.uid != item.uid]
        src_after = max(others) if others else now
        dst_before = ctx_delta(dst)
        dst_after = max(dst_before, item.departure)
        will_close = len(others) == 0
        record = MoveRecord(
            event_index=self._event_index,
            time=now,
            uid=item.uid,
            src=src.index,
            dst=dst.index,
            cost_delta=(src_after - src_before) + (dst_after - dst_before),
            closed_src=will_close,
        )
        self.ledger.record(record)  # raises MigrationBudgetError untouched
        return self._apply_move(item, src, dst, now, record)

    def _apply_move(
        self, item: Item, src: Bin, dst: Bin, now: float, record: MoveRecord
    ) -> bool:
        """Unchecked move primitive; always logs into the engine move log.

        Split from :meth:`_checked_move` so the verify harness's
        ``BudgetIgnoringRepacker`` mutant can model an enforcement
        bypass — its moves still land in ``self._moves``, which is the
        log the budget auditor replays.
        """
        closed = src.remove(item, now)
        dst.pack(item)
        self._bin_of_item[item.uid] = dst
        self._assignment[item.uid] = dst.index
        segs = self._segments[item.uid]
        segs[-1][2] = now
        if segs[-1][1] == now:
            # zero-length residency: the item is moved at the very
            # instant it entered this bin (arrival-window move, or a
            # second move at the same timestamp) — drop the stub
            segs.pop()
        if segs and segs[-1][0] == dst.index and segs[-1][2] == now:
            # returned to the bin it occupied up to this instant
            segs[-1][2] = item.departure
        else:
            segs.append([dst.index, now, item.departure])
        self._moves.append(record)
        if self.collector is not None:
            self.collector.migrations += 1
        # keep the dispatch policy's open list consistent: an emptied
        # source must leave L (same contract as a real departure)
        self.algorithm.notify_departure(src, item, now, closed)
        for obs in self.observers:
            obs.on_departed(src, item, now, closed)
            obs.on_packed(dst, item, now, opened_new=False)
        return closed

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _final_packing(self) -> Packing:
        if not self._moves:
            # zero moves -> the classic derivation applies verbatim; use
            # it so NoRepack's Packing is structurally identical to the
            # classic engine's (the budget-0 bit-identity contract)
            return Packing.from_assignment(
                self.instance, self._assignment, algorithm=self.algorithm.name
            )
        records = []
        for bin_ in self.bins:
            closed_at = bin_.closed_at
            if closed_at is None:  # pragma: no cover - defensive
                raise AlgorithmError(
                    f"bin {bin_.index} still open after the last departure"
                )
            records.append(
                BinRecord(
                    index=bin_.index,
                    opened_at=bin_.opened_at,
                    closed_at=closed_at,
                    item_uids=tuple(it.uid for it in bin_.history),
                )
            )
        return Packing(
            instance=self.instance,
            assignment=dict(self._assignment),
            bins=tuple(records),
            algorithm=self.algorithm.name,
        )


def first_principles_cost(
    instance: Instance, segments: Dict[int, Tuple[Tuple[int, float, float], ...]]
) -> float:
    """Recompute Eq. 1 from residency segments alone.

    Each bin's usage period is the hull of the segments it hosted
    (open at its first segment start, closed at its last segment end);
    the cost is the sum of the hull lengths.  Independent of the
    engine's bin objects — this is the ground truth the property tests
    and :func:`repacking_run`'s cross-check compare against.
    """
    opened: Dict[int, float] = {}
    closed: Dict[int, float] = {}
    for uid, segs in segments.items():
        for bin_index, start, end in segs:
            if bin_index not in opened or start < opened[bin_index]:
                opened[bin_index] = start
            if bin_index not in closed or end > closed[bin_index]:
                closed[bin_index] = end
    return sum(closed[i] - opened[i] for i in sorted(opened))


def parse_repacking_spec(engine: str) -> Tuple[str, Optional[float]]:
    """Parse an ``"repacking[:policy[:budget]]"`` engine spec string.

    Returns ``(policy_name, budget_or_None)``; a missing policy means
    ``no_repack`` and a missing budget means the policy's default.
    Raised errors are :class:`~repro.core.errors.ConfigurationError`.
    """
    parts = engine.split(":")
    if parts[0] != "repacking" or len(parts) > 3:
        raise ConfigurationError(f"malformed repacking engine spec {engine!r}")
    policy = parts[1] if len(parts) > 1 and parts[1] else "no_repack"
    budget: Optional[float] = None
    if len(parts) > 2:
        try:
            budget = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"malformed budget in repacking engine spec {engine!r}"
            ) from None
    return policy, budget


def repacking_run(
    algorithm: OnlineAlgorithm,
    instance: Instance,
    repacker="no_repack",
    budget: Optional[float] = None,
    observers: Sequence = (),
    collector: Optional[StatsCollector] = None,
    validate: bool = False,
) -> RepackResult:
    """Run one algorithm on one instance under a migration budget.

    ``repacker`` is a registry name (see
    :data:`repro.repacking.policies.REPACK_POLICIES`) or a
    :class:`~repro.repacking.policies.RepackPolicy` object; ``budget``
    overrides the policy's default (per-event move cap, or amortized
    credit rate for amortized policies).  The returned
    :class:`RepackResult` carries the move-aware packing, the ledger,
    and the residency segments.

    Every run cross-checks the packing's cost against
    :func:`first_principles_cost` over the segments and raises
    :class:`~repro.core.errors.AlgorithmError` on drift; with
    ``validate=True`` the full segment-level audit
    (:func:`repro.repacking.audit.audit_repacking`) runs too.
    """
    policy = repacker if isinstance(repacker, RepackPolicy) else make_repacker(repacker)
    effective = policy.default_budget if budget is None else float(budget)
    ledger = MigrationLedger(budget=effective, mode=policy.mode)
    result = RepackingEngine(
        instance, algorithm, policy, ledger=ledger,
        observers=observers, collector=collector,
    ).run()
    recomputed = first_principles_cost(instance, result.segments)
    if abs(recomputed - result.cost) > _COST_TOL * max(1.0, abs(recomputed)):
        raise AlgorithmError(
            f"repacking cost drift: engine says {result.cost!r}, first "
            f"principles say {recomputed!r} ({algorithm.name} + {policy.name})"
        )
    if validate:
        from .audit import audit_repacking

        problems = audit_repacking(result)
        if problems:
            raise AlgorithmError(
                "repacking audit failed: " + "; ".join(problems[:5])
            )
    return result
