"""Repacking policies: what to move when the budget allows moving.

A :class:`RepackPolicy` is the recourse-side twin of an
:class:`~repro.algorithms.base.OnlineAlgorithm`: the dispatch policy
decides where *arriving* items go, the repack policy decides which
*live* items to relocate in the window after each event.  Policies act
only through the :class:`~repro.repacking.engine.RepackContext`, whose
:meth:`~repro.repacking.engine.RepackContext.move` funnels every
relocation through the run's ledger — a policy cannot exceed its budget
even by trying.

Three policies ship, spanning the recourse regimes of the
limited-repacking literature (arXiv:1711.02078, arXiv:1411.0960):

* :class:`NoRepack` — the budget-0 twin.  Never moves anything, so the
  run is bit-identical to the classic engine: the subsystem's built-in
  differential oracle.
* :class:`GreedyConsolidate` — per-event budget ``k``.  On departures,
  tries to *empty* the lightest open bin into the residual space of the
  others, committing only full-eviction plans with a strictly negative
  projected Eq. 1 delta.
* :class:`BudgetedRebalance` — amortized budget (a fractional per-event
  credit rate).  Watches the projected close time of the *leader* bin;
  when it grows, spends accumulated credits on FFD-style re-packs of
  the smallest open bins.

All three are deterministic pure functions of the engine state, so
repacking runs golden-pin and replay exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.events import EventKind
from ..core.instance import Instance
from ..core.items import Item
from ..core.vectors import fits

__all__ = [
    "RepackPolicy",
    "NoRepack",
    "GreedyConsolidate",
    "BudgetedRebalance",
    "REPACK_POLICIES",
    "make_repacker",
]


class RepackPolicy:
    """Contract between the repacking engine and a recourse policy.

    Subclasses override :meth:`after_event`; the default implementation
    never moves anything.  ``mode`` declares the budget accounting the
    policy is designed for (``"per_event"`` or ``"amortized"``) and
    ``default_budget`` the budget used when the caller does not pass
    one.
    """

    #: Registry name used in engine specs, reports and golden pins.
    name: str = "repack"

    #: Budget accounting regime this policy spends from.
    mode: str = "per_event"

    #: Budget used when the caller does not supply one.
    default_budget: float = 0.0

    def start(self, instance: Instance) -> None:
        """Reset per-run state (called once before the first event)."""

    def after_event(self, ctx, kind: EventKind, now: float) -> None:
        """The repack window: inspect ``ctx`` and optionally move items."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NoRepack(RepackPolicy):
    """The zero-recourse twin: never relocates anything.

    Running the repacking engine with this policy (budget 0) must be
    bit-identical to the classic engine — the property
    :func:`repro.verify.oracles.compare_with_repacking` asserts on
    every corpus instance x policy pair.
    """

    name = "no_repack"
    mode = "per_event"
    default_budget = 0.0


def _evacuation_plan(
    source: Bin, targets: List[Bin], now: float
) -> Optional[List[Tuple[Item, Bin]]]:
    """Plan moving *every* remaining resident of ``source`` into ``targets``.

    Items are taken heaviest-first (L-infinity size, then uid for
    determinism) and first-fit placed over ``targets`` in the order
    given, tracking the load each planned move adds.  Returns the move
    list, or ``None`` when some item fits nowhere — partial evictions
    are never planned (they cannot close the source bin, so they cannot
    realise the ``now - projected_close`` saving).

    Residents departing exactly at ``now`` are treated as already gone:
    their departure events fire at this same instant (the engine may
    simply not have reached them yet in seq order), so the bin closes
    without spending budget on them.  An empty plan (every resident is
    a same-instant departer) is returned as ``[]``.
    """
    items = sorted(
        (it for it in source.active_items() if it.departure > now),
        key=lambda it: (-float(np.max(it.size)), it.uid),
    )
    extra: Dict[int, np.ndarray] = {}
    plan: List[Tuple[Item, Bin]] = []
    for item in items:
        placed = False
        for target in targets:
            added = extra.get(target.index)
            load = target.load if added is None else target.load + added
            # same fit predicate (and EPS slack) as Bin.pack, so a
            # planned move can never fail the engine's capacity check
            if fits(load, item.size, target.capacity):
                plan.append((item, target))
                extra[target.index] = item.size if added is None else added + item.size
                placed = True
                break
        if not placed:
            return None
    return plan


def _plan_delta(ctx, source: Bin, plan: List[Tuple[Item, Bin]], now: float) -> float:
    """Projected Eq. 1 delta of executing a full-eviction ``plan``.

    Source side: the bin closes at ``now`` instead of its projected
    close.  Destination side: each target's projected close can only be
    pushed out to the latest departure among the items it receives.
    """
    delta = now - ctx.projected_close(source)
    pushed: Dict[int, float] = {}
    for item, target in plan:
        base = pushed.get(target.index)
        if base is None:
            base = ctx.projected_close(target)
        after = max(base, item.departure)
        delta += after - base
        pushed[target.index] = after
    return delta


class GreedyConsolidate(RepackPolicy):
    """Per-event consolidation: empty the lightest bin on departures.

    After each departure event, while the per-event budget allows,
    consider open bins in increasing load order (L-infinity, ties by
    index) and try to evacuate one entirely into the others' residual
    space.  A plan is committed only when (a) it fits the remaining
    event budget, and (b) its projected Eq. 1 delta is strictly
    negative — closing the source *now* saves more span than the
    receiving bins are projected to gain.

    With ``k = 0`` this degenerates to :class:`NoRepack` exactly.
    """

    name = "greedy_consolidate"
    mode = "per_event"
    default_budget = 1.0

    def after_event(self, ctx, kind: EventKind, now: float) -> None:
        if kind is not EventKind.DEPARTURE or not ctx.can_move(1):
            return
        while True:
            budget = int(ctx.remaining_budget())
            if budget < 1:
                return
            open_bins = ctx.open_bins()
            if len(open_bins) < 2:
                return
            candidates = sorted(
                open_bins, key=lambda b: (float(np.max(b.load)), b.index)
            )
            committed = False
            for source in candidates:
                targets = [b for b in open_bins if b is not source]
                plan = _evacuation_plan(source, targets, now)
                if not plan or len(plan) > budget:
                    continue
                if _plan_delta(ctx, source, plan, now) >= 0.0:
                    continue
                for item, target in plan:
                    ctx.move(item, target)
                committed = True
                break
            if not committed:
                return


class BudgetedRebalance(RepackPolicy):
    """Amortized rebalance: spend saved credits when the leader grows.

    Credits accrue at ``budget`` moves per event (fractional rates are
    the point — e.g. ``0.5`` averages one move every two events).  The
    policy tracks the projected close time of the *leader* (the open
    bin with the latest projected close).  When an event pushes that
    projection past its previous high-water mark, the policy tries to
    re-pack the smallest open bins, FFD-style: bins in increasing
    resident-count order, each evacuated heaviest-item-first into the
    other bins' residual space, committing only full evictions with a
    strictly negative projected delta that fit the accumulated credit.
    """

    name = "budgeted_rebalance"
    mode = "amortized"
    default_budget = 0.5

    def __init__(self) -> None:
        self._leader_close = float("-inf")

    def start(self, instance: Instance) -> None:
        self._leader_close = float("-inf")

    def after_event(self, ctx, kind: EventKind, now: float) -> None:
        open_bins = ctx.open_bins()
        leader = max(
            (ctx.projected_close(b) for b in open_bins), default=float("-inf")
        )
        grew = leader > self._leader_close
        if leader > self._leader_close:
            self._leader_close = leader
        if not grew or len(open_bins) < 2 or not ctx.can_move(1):
            return
        # FFD over the smallest bins: fewest residents first (cheapest
        # to close), ties by lighter load then index
        for source in sorted(
            open_bins,
            key=lambda b: (b.num_active, float(np.max(b.load)), b.index),
        ):
            if not source.is_open:  # emptied by an earlier commit
                continue
            targets = [b for b in ctx.open_bins() if b is not source]
            if not targets:
                return
            plan = _evacuation_plan(source, targets, now)
            if not plan or len(plan) > int(ctx.remaining_budget()):
                continue
            if _plan_delta(ctx, source, plan, now) >= 0.0:
                continue
            for item, target in plan:
                ctx.move(item, target)
            if not ctx.can_move(1):
                return


#: Registry of repacking policies, keyed by CLI/engine-spec name.
REPACK_POLICIES = {
    NoRepack.name: NoRepack,
    GreedyConsolidate.name: GreedyConsolidate,
    BudgetedRebalance.name: BudgetedRebalance,
}


def make_repacker(name: str, **kwargs) -> RepackPolicy:
    """Build a repacking policy by registry name.

    Raises
    ------
    ConfigurationError
        For unknown names, listing the valid ones.
    """
    try:
        factory = REPACK_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown repacking policy {name!r}; expected one of "
            f"{sorted(REPACK_POLICIES)}"
        ) from None
    return factory(**kwargs)
