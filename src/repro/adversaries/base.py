"""Adaptive adversary interfaces: observe the live packing, emit arrivals.

The paper's lower bounds (Theorems 5, 6, 8, and the Theorem 7
unboundedness of Best/Worst Fit) are proved by *adaptive* adversaries:
constructions that watch what the online algorithm does and choose the
next arrival accordingly.  The static gadget workloads in
:mod:`repro.workloads.adversarial` hard-code the sequence each proof
predicts; the classes here instead close the loop — after every arrival
the :class:`~repro.adversaries.driver.AdversaryDriver` hands the
adversary an :class:`EngineView` of the live engine state (open bins,
loads, residuals, the policy's candidate-list order) and the adversary
answers with the next :class:`~repro.core.items.Item`, or ``None`` to
stop.

An adversary is also its own *certifier*: alongside the emitted items it
maintains an explicit offline packing of everything emitted so far, so
:meth:`Adversary.opt_upper` is a true upper bound on ``OPT`` of the
induced prefix and ``cost / opt_upper`` is a certified (never inflated)
competitive-ratio estimate at every step of the trajectory.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.errors import ConfigurationError
from ..core.items import DATACLASS_SLOTS, Item

__all__ = [
    "AttackConfig",
    "BinView",
    "PackRecord",
    "EngineView",
    "Adversary",
]


@dataclass(frozen=True)
class AttackConfig:
    """Shared knobs of every attack.

    Parameters
    ----------
    mu:
        Duration ratio the attack is built for (longest emitted duration
        divided by shortest).  The theoretical bound is evaluated at
        this ``mu``.
    d:
        Resource dimensions of the emitted items.  ``LeaderTargeting``
        and ``BestFitAmplifier`` are 1-dimensional constructions and
        reject ``d != 1``.
    rounds:
        Explicit construction size (phases/pairs, attack-specific).
        ``None`` auto-sizes the attack so the certified ratio reaches
        ``target_fraction`` of the theoretical bound with margin.
    target_fraction:
        Fraction of the closed-form lower bound the attack must certify
        when ``rounds`` is auto-sized (the must-exceed-bound scenarios
        check against this).
    ratio_threshold:
        Stop threshold for unbounded-ratio attacks
        (:class:`~repro.adversaries.attacks.BestFitAmplifier`): the
        attack keeps amplifying until its certified ratio exceeds it.
    max_items:
        Hard safety cap on emitted items; exceeding it is an error in
        the attack's own termination logic.
    """

    mu: float = 4.0
    d: int = 1
    rounds: Optional[int] = None
    target_fraction: float = 0.9
    ratio_threshold: float = 50.0
    max_items: int = 20_000

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ConfigurationError(f"mu must be >= 1, got {self.mu}")
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if self.rounds is not None and self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if not (0.0 < self.target_fraction < 1.0):
            raise ConfigurationError(
                f"target_fraction must be in (0, 1), got {self.target_fraction}"
            )
        if self.ratio_threshold <= 1.0:
            raise ConfigurationError(
                f"ratio_threshold must exceed 1, got {self.ratio_threshold}"
            )
        if self.max_items < 8:
            raise ConfigurationError(f"max_items must be >= 8, got {self.max_items}")


@dataclass(frozen=True, **DATACLASS_SLOTS)
class BinView:
    """Read-only snapshot of one open bin, as the adversary may see it.

    ``position`` is the bin's index in the policy's candidate list ``L``
    (0 = the bin an Any Fit policy inspects first), or ``-1`` when the
    bin is open but not a candidate (Next Fit's released bins) or the
    policy does not expose a list.
    """

    index: int
    load: Tuple[float, ...]
    residual: Tuple[float, ...]
    num_active: int
    position: int = -1

    @property
    def min_residual(self) -> float:
        """Smallest per-dimension residual capacity (the binding one)."""
        return min(self.residual)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class PackRecord:
    """What happened to the most recently emitted item."""

    uid: int
    bin_index: int
    opened_new: bool


@dataclass(frozen=True)
class EngineView:
    """Everything an adaptive adversary may observe after an event.

    This is deliberately the *information the proofs assume an adaptive
    adversary has*: the open bins with loads/residuals, the policy's
    candidate-list order (so Move To Front's leader is observable), the
    committed cost so far, and where the last item landed — but never
    the policy's future decisions.
    """

    now: float
    policy: str
    capacity: Tuple[float, ...]
    open_bins: Tuple[BinView, ...] = ()
    #: Bin indexes in the policy's candidate-list order (``L``-order);
    #: empty when the policy does not expose a list.
    candidate_order: Tuple[int, ...] = ()
    bins_opened: int = 0
    committed_cost: float = 0.0
    emitted: int = 0
    last: Optional[PackRecord] = None

    @property
    def d(self) -> int:
        """Resource dimensions of the run."""
        return len(self.capacity)

    @property
    def leader_index(self) -> Optional[int]:
        """Bin index at the front of the candidate list, if any."""
        return self.candidate_order[0] if self.candidate_order else None

    def bin_view(self, index: int) -> Optional[BinView]:
        """The view of open bin ``index``, or ``None`` if closed/unknown."""
        for b in self.open_bins:
            if b.index == index:
                return b
        return None


class Adversary(abc.ABC):
    """Base class for adaptive attacks.

    Subclasses implement :meth:`next_item` — called once per emission
    with the post-event :class:`EngineView` — and keep
    :attr:`_opt_upper` current (an explicit offline packing cost of the
    emitted prefix, hence ``>= OPT``).  Uids on returned items are
    ignored; the driver re-assigns them sequentially.
    """

    #: Registry name of the attack.
    name: str = "adversary"
    #: Registry name of the policy this attack is built to defeat.
    target_policy: str = "first_fit"

    def __init__(self, config: Optional[AttackConfig] = None) -> None:
        self.config = config if config is not None else AttackConfig()
        self._rng: Optional[np.random.Generator] = None
        self._opt_upper = 0.0

    def reset(self, rng: np.random.Generator) -> None:
        """Prepare for a fresh run.  Subclasses must call ``super()``."""
        self._rng = rng
        self._opt_upper = 0.0

    @abc.abstractmethod
    def next_item(self, view: EngineView) -> Optional[Item]:
        """The next arrival given the live engine state, or ``None`` to stop.

        Arrival times must be non-decreasing across calls (the induced
        sequence is an online instance).
        """

    def opt_upper(self) -> Optional[float]:
        """Certified upper bound on ``OPT`` of the emitted prefix.

        Returns ``None`` when the attack carries no certificate (the
        driver then falls back to the FFD bracket of
        :func:`repro.optimum.opt_cost.optimum_cost_bounds`).
        """
        return self._opt_upper

    def theoretical_bound(self) -> float:
        """Closed-form lower bound this attack is certified against.

        ``inf`` for unboundedness attacks (Theorem 7), which are checked
        against :attr:`AttackConfig.ratio_threshold` instead.
        """
        return math.inf

    @property
    def rng(self) -> np.random.Generator:
        """The SeedSequence-derived generator bound by :meth:`reset`."""
        if self._rng is None:
            raise ConfigurationError(
                f"{self.name}: next_item before reset() — run attacks "
                "through AdversaryDriver"
            )
        return self._rng

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(target={self.target_policy!r}, {self.config!r})"
