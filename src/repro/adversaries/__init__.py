"""Adaptive adversaries with certified competitive-ratio trajectories.

The paper's lower bounds are proved by adversaries that *watch* the
online algorithm and choose each next arrival adaptively.  This package
makes those proofs executable:

* :mod:`~repro.adversaries.base` — the :class:`Adversary` contract and
  the :class:`EngineView` of live engine state an attack may observe;
* :mod:`~repro.adversaries.attacks` — one attack per lower-bound
  theorem (5, 6, 8, and the Theorem 7 unboundedness amplifier), plus
  the deliberately lame :class:`NullAdversary` mutant;
* :mod:`~repro.adversaries.driver` — the live adaptive loop, the
  classic-engine replay (bit-identity asserted), and the certified
  ``cost / opt_upper`` trajectory;
* :mod:`~repro.adversaries.scenarios` — the must-exceed-bound scenario
  grid wired into every ``repro verify`` profile.

Because every induced attack is a plain
:class:`~repro.core.instance.Instance`, the whole differential corpus
machinery (reference/fastpath/batch/streaming oracles, invariant
auditor) applies to adversarial instances for free.  See
``docs/adversaries.md``.
"""

from .attacks import (
    ATTACKS,
    BestFitAmplifier,
    DurationRevealing,
    LeaderTargeting,
    NextFitChurner,
    NullAdversary,
    make_adversary,
)
from .base import Adversary, AttackConfig, BinView, EngineView, PackRecord
from .driver import AdversaryDriver, AttackResult, TrajectoryPoint, run_attack
from .scenarios import (
    MUST_EXCEED_SCENARIOS,
    AttackScenario,
    ScenarioOutcome,
    must_exceed_report,
    null_adversary_outcome,
    run_scenario,
)

__all__ = [
    "Adversary",
    "AttackConfig",
    "BinView",
    "EngineView",
    "PackRecord",
    "DurationRevealing",
    "NextFitChurner",
    "LeaderTargeting",
    "BestFitAmplifier",
    "NullAdversary",
    "ATTACKS",
    "make_adversary",
    "AdversaryDriver",
    "AttackResult",
    "TrajectoryPoint",
    "run_attack",
    "AttackScenario",
    "ScenarioOutcome",
    "MUST_EXCEED_SCENARIOS",
    "run_scenario",
    "must_exceed_report",
    "null_adversary_outcome",
]
