"""The concrete adaptive attacks behind the paper's lower-bound theorems.

Each class adapts one proof construction into a closed-loop adversary:

* :class:`DurationRevealing` — Theorem 5: any Any Fit policy is at
  least ``(mu+1)d``-competitive.  Short blocker pairs force ``dk`` open
  bins, then — observing which bins actually stayed open — one tiny
  long item per observed bin pins them all for another ``mu``.
* :class:`NextFitChurner` — Theorem 6: Next Fit is at least
  ``2·mu·d``-competitive.  Alternating half-bin blockers and tiny long
  parasites churn the current bin, watching the pack feedback to count
  how many bins have been pinned.
* :class:`LeaderTargeting` — Theorem 8: Move To Front is at least
  ``max{2mu, (mu+1)d}``-competitive.  Each round drops a half-bin
  blocker, reads the *observed* front of the candidate list and its
  residual, and fires a parasite sized to land exactly there.
* :class:`BestFitAmplifier` — Theorem 7: Best Fit (and Worst Fit) have
  unbounded ratio.  Filler/anchor/guard phases trap one long anchor per
  bin; the attack watches its own certified ratio and stops once it
  exceeds the configured threshold.
* :class:`NullAdversary` — a deliberately lame mutant (random arrivals,
  ignores the view) used by the mutation smoke-test to prove the
  must-exceed-bound check can actually fail.

Every attack maintains an explicit offline packing of what it emitted,
so its :meth:`~repro.adversaries.base.Adversary.opt_upper` certificate
is a true ``OPT`` upper bound at every trajectory step.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Type

import numpy as np

from ..analysis.theory import (
    any_fit_lower_bound,
    move_to_front_lower_bound,
    next_fit_lower_bound,
)
from ..core.errors import ConfigurationError
from ..core.items import Item, make_item
from .base import Adversary, AttackConfig, EngineView

__all__ = [
    "DurationRevealing",
    "NextFitChurner",
    "LeaderTargeting",
    "BestFitAmplifier",
    "NullAdversary",
    "ATTACKS",
    "make_adversary",
]

#: Sizing slack: auto-sized attacks aim this far above ``target_fraction``
#: so float jitter (the randomised ``delta``) cannot drop them below it.
_SIZING_MARGIN = 0.03


def _sizing_fraction(config: AttackConfig) -> float:
    return min(0.97, config.target_fraction + _SIZING_MARGIN)


class DurationRevealing(Adversary):
    """Theorem 5 adversary: reveal durations only after bins are committed.

    Phase one emits ``d*k`` blocker pairs at ``t = 0`` (all of duration
    1): the *odd* item of pair ``m`` is nearly full in its group
    dimension ``m // k``, the *even* item is a sliver that only fits the
    bin the odd item just opened — so every Any Fit policy opens ``d*k``
    bins, each left with exactly ``eps'`` residual in its group
    dimension.  Phase two is the adaptive reveal: at ``t = 1 - delta``
    the adversary *counts the bins it observes open* and emits exactly
    that many ``eps'``-sized items of duration ``mu`` — each bin can
    absorb exactly one, so all observed bins stay open for another
    ``mu`` while the offline optimum packs the long slivers into a
    single bin.
    """

    name = "duration_revealing"
    target_policy = "first_fit"

    def theoretical_bound(self) -> float:
        return any_fit_lower_bound(self.config.mu, self.config.d)

    @staticmethod
    def auto_rounds(mu: float, d: int, fraction: float) -> int:
        """Smallest ``k`` whose certified ratio reaches ``fraction`` of
        the bound: ``d*k*(mu+1-delta) / (k + 1 + mu) >= fraction*(mu+1)*d``.
        """
        delta_max = 2e-3
        denom = (1.0 - fraction) * (mu + 1.0) - delta_max
        if denom <= 0:
            raise ConfigurationError(
                f"target fraction {fraction} too aggressive for mu={mu}"
            )
        return int(math.ceil(fraction * (mu + 1.0) ** 2 / denom)) + 1

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        cfg = self.config
        self.k = cfg.rounds or self.auto_rounds(cfg.mu, cfg.d, _sizing_fraction(cfg))
        #: reveal jitter — randomised (seed-dependent) but bounded away
        #: from the departure tie at t = 1
        self.delta = float(rng.uniform(5e-4, 2e-3))
        d = cfg.d
        self.eps = 1.0 / (d * d * self.k + d + 2)
        self.eps_small = self.eps / 3.0
        self._pairs_done = 0
        self._half = 0  # 0 = emit the odd (blocker), 1 = the even (sliver)
        self._reveal_left: Optional[int] = None
        self._odd_bins_used = 0

    def next_item(self, view: EngineView) -> Optional[Item]:
        cfg = self.config
        d, k = cfg.d, self.k
        if self._pairs_done < d * k:
            m = self._pairs_done
            group = m // k
            size = np.full(d, self.eps)
            if self._half == 0:
                size[group] = 1.0 - d * self.eps
                self._half = 1
                # offline: one odd per group per bin -> k odd-bins total
                if self._odd_bins_used < k:
                    self._odd_bins_used += 1
                    self._opt_upper += 1.0
                return make_item(0.0, 1.0, size)
            size[:] = d * self.eps - self.eps_small
            self._half = 0
            self._pairs_done += 1
            if self._pairs_done == 1:
                self._opt_upper += 1.0  # one offline bin holds every sliver
            return make_item(0.0, 1.0, size)
        # adaptive reveal: pin exactly the bins observed open right now
        if self._reveal_left is None:
            self._reveal_left = len(view.open_bins)
            self._opt_upper += cfg.mu  # all long slivers share one offline bin
        if self._reveal_left <= 0:
            return None
        self._reveal_left -= 1
        return make_item(1.0 - self.delta, cfg.mu, np.full(cfg.d, self.eps_small))


class NextFitChurner(Adversary):
    """Theorem 6 adversary: churn Next Fit's single current bin.

    Emits blocker/parasite pairs at ``t = 0``: the blocker is just over
    half a bin in its group dimension (so two never share a bin), the
    parasite is a tiny sliver of duration ``mu`` that rides along into
    whatever bin the blocker landed in.  Next Fit keeps releasing its
    current bin and opening a fresh one, so (almost) every pair pins its
    own bin for the full ``mu`` — the adversary watches the pack
    feedback to count distinct pinned bins and stops once ``d*k`` are
    pinned (or at the 2x safety cap against a non-churning policy).
    """

    name = "next_fit_churner"
    target_policy = "next_fit"

    def theoretical_bound(self) -> float:
        return next_fit_lower_bound(self.config.mu, self.config.d)

    @staticmethod
    def auto_rounds(mu: float, fraction: float) -> int:
        """Smallest ``k`` with ``d*k*mu / (mu + k/2) >= fraction*2*mu*d``."""
        if fraction >= 1.0:
            raise ConfigurationError(f"target fraction {fraction} must be < 1")
        k = int(math.ceil(2.0 * fraction * mu / (1.0 - fraction)))
        return k + k % 2 + 2  # even, with margin for the group-boundary loss

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        cfg = self.config
        self.k = cfg.rounds or self.auto_rounds(cfg.mu, _sizing_fraction(cfg))
        d = cfg.d
        self.eps_small = 1.0 / (d * self.k + 1)
        #: seed-dependent blocker shave: any factor > 1 keeps two
        #: blockers per bin infeasible while varying the emitted stream
        self.shave = float(rng.uniform(2.0, 4.0))
        self.eps = self.eps_small / (2.0 * d * self.shave)
        self._pairs_done = 0
        self._half = 0
        self._pinned: Set[int] = set()
        self._odds = 0
        self._evens = 0

    def next_item(self, view: EngineView) -> Optional[Item]:
        cfg = self.config
        d, k = cfg.d, self.k
        target = d * k
        if view.last is not None and self._half == 0 and self._pairs_done:
            # feedback from the previous parasite: which bin it pinned
            self._pinned.add(view.last.bin_index)
        if len(self._pinned) >= target or self._pairs_done >= target:
            return None
        if self._half == 0:
            m = self._pairs_done
            group = m // k
            size = np.full(d, self.eps)
            size[group] = 0.5 - d * self.eps
            self._half = 1
            self._odds += 1
            # offline: one blocker pair per group per bin, so the bin
            # count of any emitted prefix is ceil(largest group count / 2)
            if self._odds <= k and self._odds % 2 == 1:
                self._opt_upper += 1.0
            return make_item(0.0, 1.0, size)
        self._half = 0
        self._pairs_done += 1
        self._evens += 1
        # offline: d*k parasites per sliver-bin of duration mu
        if (self._evens - 1) % (d * k) == 0:
            self._opt_upper += cfg.mu
        return make_item(0.0, cfg.mu, np.full(d, self.eps_small))


class LeaderTargeting(Adversary):
    """Theorem 8 adversary: always feed Move To Front's leader.

    One-dimensional by construction (``d`` must be 1; at higher ``d``
    the Move To Front bound ``max{2mu, (mu+1)d}`` is witnessed by
    :class:`DurationRevealing`, which applies to every Any Fit policy).

    Each round emits a half-bin blocker at ``t = 0`` — no open bin can
    take it, so the policy opens a fresh bin which Move To Front
    promotes to the front of ``L`` — then *reads the observed leader and
    its residual* and fires a parasite sized to fit it (duration
    ``mu``).  Move To Front packs the parasite into the leader, so every
    round permanently pins one more bin, while offline all parasites
    share a single bin and blockers pair up two per bin.
    """

    name = "leader_targeting"
    target_policy = "move_to_front"

    def __init__(self, config: Optional[AttackConfig] = None) -> None:
        super().__init__(config)
        if self.config.d != 1:
            raise ConfigurationError(
                f"{self.name} is a 1-dimensional construction (Theorem 8); "
                f"got d={self.config.d}"
            )

    def theoretical_bound(self) -> float:
        return move_to_front_lower_bound(self.config.mu, 1)

    @staticmethod
    def auto_rounds(mu: float, fraction: float) -> int:
        """Smallest round count ``R`` with ``R*mu/(mu + R/2) >= fraction*2*mu``."""
        if fraction >= 1.0:
            raise ConfigurationError(f"target fraction {fraction} must be < 1")
        r = int(math.ceil(2.0 * fraction * mu / (1.0 - fraction)))
        return r + r % 2 + 2

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        cfg = self.config
        self.rounds = cfg.rounds or self.auto_rounds(cfg.mu, _sizing_fraction(cfg))
        #: parasite size: small enough that all of them share one offline
        #: bin; the jitter keeps the emitted stream seed-dependent
        self.parasite = float(rng.uniform(0.8, 1.0)) / (self.rounds + 1)
        self._round = 0
        self._half = 0
        self._targeted_hits = 0

    def next_item(self, view: EngineView) -> Optional[Item]:
        cfg = self.config
        if self._half == 0:
            if self._round >= self.rounds:
                return None
            self._half = 1
            if self._round % 2 == 0:
                self._opt_upper += 1.0  # offline blockers pair two per bin
            return make_item(0.0, 1.0, [0.5])
        # adaptive shot: aim at the observed leader's residual
        leader = view.leader_index
        size = self.parasite
        if leader is not None:
            bv = view.bin_view(leader)
            if bv is not None:
                size = min(size, max(bv.min_residual, 1e-9))
        self._half = 0
        self._round += 1
        if view.last is not None and view.last.opened_new:
            self._targeted_hits += 1  # the blocker opened the bin we now hit
        if self._round == 1:
            self._opt_upper += cfg.mu  # one offline bin holds every parasite
        return make_item(0.0, cfg.mu, [size])


class BestFitAmplifier(Adversary):
    """Theorem 7 adversary: drive Best/Worst Fit past any ratio threshold.

    One-dimensional.  Phase ``i`` (starting at ``t = 3i``) plays three
    forced moves: a half-bin *filler* (no existing bin can take it — a
    fresh bin opens), a tiny *anchor* that only fits the filler's bin
    and departs at the far horizon ``t_end``, and — after the filler
    departs — a *guard* sized from the observed residual of the
    now-lone-anchor bin so that no future item ever fits there again.
    Every phase therefore strands one bin open until ``t_end``, while
    offline all anchors share a single bin; the algorithm's cost grows
    by ``~t_end`` per phase against an offline cost that barely moves.
    The attack watches its own certified ratio and stops as soon as it
    exceeds ``ratio_threshold`` (or at the sizing cap).
    """

    name = "best_fit_amplifier"
    target_policy = "best_fit"

    def __init__(self, config: Optional[AttackConfig] = None) -> None:
        super().__init__(config)
        if self.config.d != 1:
            raise ConfigurationError(
                f"{self.name} is a 1-dimensional construction (Theorem 7); "
                f"got d={self.config.d}"
            )

    def theoretical_bound(self) -> float:
        return math.inf  # Theorem 7: no finite bound exists

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        cfg = self.config
        #: phase cap: the threshold is reached around ``threshold + 1``
        #: phases, the slack absorbs the offline side's guard costs
        self.cap = cfg.rounds or int(math.ceil(cfg.ratio_threshold * 1.25)) + 16
        self.anchor = 1.0 / (4.0 * self.cap)
        self.horizon = 3.0 * self.cap
        #: anchor departure: far enough out that one phase's ~t_end cost
        #: dwarfs the whole offline certificate
        self.t_end = self.horizon + 200.0 * self.cap * max(cfg.ratio_threshold, 1.0)
        self._phase = 0
        self._step = 0  # 0 filler, 1 anchor, 2 guard
        self._anchor_bin: Optional[int] = None

    def next_item(self, view: EngineView) -> Optional[Item]:
        t0 = 3.0 * self._phase
        if self._step == 0:
            if self._phase >= self.cap:
                return None
            if self._phase > 0:
                # certified stop check: committed cost vs our certificate
                ratio = view.committed_cost / max(self._opt_upper, 1e-12)
                if ratio >= self.config.ratio_threshold:
                    return None
            self._step = 1
            self._opt_upper += 1.0  # filler gets its own offline bin
            return make_item(t0, 1.0, [0.5])
        if self._step == 1:
            self._step = 2
            if view.last is not None:
                self._anchor_bin = view.last.bin_index  # the filler's bin
            if self._phase == 0:
                self._opt_upper += self.t_end  # one offline bin for all anchors
            return Item(t0, self.t_end, np.array([self.anchor]))
        # guard, at t0 + 2: size it from the observed residual of the
        # anchor's bin.  The view snapshot predates the filler's
        # departure at t0 + 1, so the residual the guard will actually
        # see is the observed one plus the filler's half bin; leaving
        # exactly half an anchor of slack blocks all future anchors.
        self._step = 0
        guard = 1.0 - 1.5 * self.anchor
        bin_index = self._anchor_bin if self._anchor_bin is not None else (
            view.last.bin_index if view.last is not None else None)
        if bin_index is not None:
            bv = view.bin_view(bin_index)
            if bv is not None:
                guard = bv.min_residual + 0.5 - 0.5 * self.anchor
        duration = self.horizon - (t0 + 2.0)
        self._phase += 1
        self._opt_upper += duration  # each guard alone in an offline bin
        return make_item(t0 + 2.0, duration, [guard])


class NullAdversary(Adversary):
    """A deliberately broken adversary: random arrivals, ignores the view.

    Exists so the mutation smoke-test can prove the must-exceed-bound
    wiring has teeth — a state-blind random stream lands nowhere near
    ``target_fraction`` of the Theorem 5 bound, so the same check that
    passes every real attack must FAIL this one.
    """

    name = "null_adversary"
    target_policy = "first_fit"

    def theoretical_bound(self) -> float:
        return any_fit_lower_bound(self.config.mu, self.config.d)

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        self.count = self.config.rounds or 40
        self._emitted = 0
        self._now = 0.0

    def opt_upper(self) -> Optional[float]:
        return None  # no certificate; the driver uses the FFD bracket

    def next_item(self, view: EngineView) -> Optional[Item]:
        if self._emitted >= self.count:
            return None
        rng = self.rng
        self._now += float(rng.exponential(0.5))
        self._emitted += 1
        size = rng.uniform(0.05, 0.6, size=self.config.d)
        duration = float(rng.uniform(1.0, self.config.mu))
        return make_item(self._now, duration, size)


#: Registry of attack name -> class (the CLI and scenarios build from it).
ATTACKS: Dict[str, Type[Adversary]] = {
    DurationRevealing.name: DurationRevealing,
    NextFitChurner.name: NextFitChurner,
    LeaderTargeting.name: LeaderTargeting,
    BestFitAmplifier.name: BestFitAmplifier,
    NullAdversary.name: NullAdversary,
}


def make_adversary(name: str, config: Optional[AttackConfig] = None) -> Adversary:
    """Instantiate a registered attack by name.

    Raises
    ------
    ConfigurationError
        For unknown names, listing the registered ones.
    """
    try:
        cls = ATTACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {', '.join(sorted(ATTACKS))}"
        ) from None
    return cls(config)
