"""Must-exceed-bound scenarios: the attacks as verification checks.

Each :class:`AttackScenario` pins one attack against one policy at one
``(mu, d)`` point and states what success means: the certified ratio
must reach ``fraction`` of the closed-form lower bound (Theorems 5, 6,
8), or — for the unboundedness attacks, whose bound is infinite — must
exceed the configured ratio threshold (Theorem 7).  A failed scenario
is a *verification violation*: either an attack regressed (stopped
achieving its theorem's bound) or a policy changed behaviour in a way
that breaks the certified construction; both must be caught.

:data:`MUST_EXCEED_SCENARIOS` is the set every ``repro verify`` profile
runs; :func:`null_adversary_outcome` runs the deliberately lame
:class:`~repro.adversaries.attacks.NullAdversary` through the *same*
check, which must FAIL — the mutation smoke-test's proof that this
wiring can actually reject a broken adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .attacks import make_adversary
from .base import AttackConfig
from .driver import AdversaryDriver, AttackResult

__all__ = [
    "AttackScenario",
    "ScenarioOutcome",
    "MUST_EXCEED_SCENARIOS",
    "run_scenario",
    "must_exceed_report",
    "null_adversary_outcome",
]


@dataclass(frozen=True)
class AttackScenario:
    """One pinned must-exceed-bound check.

    ``threshold`` switches the success criterion: ``None`` requires
    ``certified_ratio >= fraction * theoretical_bound`` (bounded-ratio
    theorems); a value requires ``certified_ratio >= threshold``
    (unboundedness theorems, where the bound is infinite).
    """

    attack: str
    policy: str
    mu: float
    d: int
    fraction: float = 0.9
    threshold: Optional[float] = None

    @property
    def label(self) -> str:
        """Stable identifier used in verify reports and bench records."""
        if self.threshold is not None:
            return f"{self.attack}@{self.policy}(threshold={self.threshold:g})"
        return f"{self.attack}@{self.policy}(mu={self.mu:g},d={self.d})"


@dataclass(frozen=True)
class ScenarioOutcome:
    """A scenario's verdict plus the full attack result behind it."""

    scenario: AttackScenario
    result: AttackResult
    required: float
    achieved: float
    passed: bool
    message: str


#: The scenario grid every verify profile runs: each bounded-ratio
#: attack at two ``(mu, d)`` points, plus the Theorem 7 amplifier
#: driving both Best Fit and Worst Fit past the ratio threshold.
MUST_EXCEED_SCENARIOS: Tuple[AttackScenario, ...] = (
    AttackScenario("duration_revealing", "first_fit", mu=2.0, d=2),
    AttackScenario("duration_revealing", "first_fit", mu=4.0, d=1),
    AttackScenario("next_fit_churner", "next_fit", mu=2.0, d=1),
    AttackScenario("next_fit_churner", "next_fit", mu=3.0, d=2),
    AttackScenario("leader_targeting", "move_to_front", mu=4.0, d=1),
    AttackScenario("leader_targeting", "move_to_front", mu=6.0, d=1),
    AttackScenario("best_fit_amplifier", "best_fit", mu=1.0, d=1, threshold=50.0),
    AttackScenario("best_fit_amplifier", "worst_fit", mu=1.0, d=1, threshold=50.0),
)


def run_scenario(scenario: AttackScenario, seed: int = 0) -> ScenarioOutcome:
    """Drive one scenario and judge it."""
    config = AttackConfig(
        mu=scenario.mu,
        d=scenario.d,
        target_fraction=scenario.fraction,
        ratio_threshold=scenario.threshold if scenario.threshold is not None else 50.0,
    )
    adversary = make_adversary(scenario.attack, config)
    result = AdversaryDriver(adversary, policy=scenario.policy, seed=seed).run()
    if scenario.threshold is not None:
        required = float(scenario.threshold)
        kind = f"ratio threshold {required:g}"
    else:
        required = scenario.fraction * result.theoretical_bound
        kind = (
            f"{scenario.fraction:.0%} of bound {result.theoretical_bound:g} "
            f"= {required:g}"
        )
    achieved = result.certified_ratio
    passed = achieved >= required and result.replay_identical
    if not result.replay_identical:
        message = (
            f"{scenario.label}: live run and classic replay diverged "
            f"on the induced instance ({result.n} items)"
        )
    elif passed:
        message = (
            f"{scenario.label}: certified ratio {achieved:.3f} >= {kind} "
            f"({result.n} items)"
        )
    else:
        message = (
            f"{scenario.label}: certified ratio {achieved:.3f} BELOW {kind} "
            f"({result.n} items)"
        )
    return ScenarioOutcome(
        scenario=scenario,
        result=result,
        required=required,
        achieved=achieved,
        passed=passed,
        message=message,
    )


def must_exceed_report(
    scenarios: Sequence[AttackScenario] = MUST_EXCEED_SCENARIOS,
    seed: int = 0,
) -> Tuple[ScenarioOutcome, ...]:
    """Run every scenario; the harness turns failures into violations."""
    return tuple(run_scenario(s, seed=seed) for s in scenarios)


def null_adversary_outcome(seed: int = 0) -> ScenarioOutcome:
    """The mutation mirror: the state-blind adversary judged by the
    same must-exceed check, which it must FAIL."""
    scenario = AttackScenario("null_adversary", "first_fit", mu=4.0, d=2)
    return run_scenario(scenario, seed=seed)
