"""The adversary driver: live adaptive loop, classic replay, trajectories.

:class:`AdversaryDriver` runs an attack in two passes.

**Live pass** — an incremental twin of the classic engine's event loop:
after every arrival the driver rebuilds an
:class:`~repro.adversaries.base.EngineView` (open bins, loads,
residuals, the policy's candidate-list order, committed cost) and asks
the adversary for the next arrival.  Departures due at or before the
next arrival are processed first, in ``(time, uid)`` order — exactly
the classic engine's event ordering — so the policy sees the same
history it would in a batch replay.  The per-arrival *committed cost*
is ``sum(bin.usage_time)``: an open bin's usage period already extends
to the latest departure among items ever packed, so the cost of every
decision is charged the moment it is made.

**Replay pass** — the induced arrivals form a plain
:class:`~repro.core.instance.Instance`, which is replayed through the
classic :func:`~repro.simulation.runner.run`; the driver asserts the
replayed assignment is bit-identical to the live one
(``replay_identical``), so everything downstream (invariant auditor,
four-engine differential oracles) applies to adversarial instances with
no special cases.

The certified ratio is ``cost / opt_upper`` where ``opt_upper`` is the
adversary's own offline-packing certificate (cross-checked against the
:func:`~repro.optimum.opt_cost.optimum_cost_bounds` lower bracket), or
the FFD bracket upper bound when the attack carries no certificate.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algorithms.base import AnyFitAlgorithm
from ..algorithms.registry import make_algorithm
from ..core.bins import Bin
from ..core.errors import AlgorithmError, ConfigurationError
from ..core.instance import Instance
from ..core.items import Item
from ..optimum.opt_cost import optimum_cost_bounds
from ..simulation.runner import run
from .attacks import make_adversary
from .base import Adversary, AttackConfig, BinView, EngineView, PackRecord

__all__ = [
    "TrajectoryPoint",
    "AttackResult",
    "AdversaryDriver",
    "run_attack",
]

_TOL = 1e-9


class _CapacityContext:
    """Duck-typed stand-in for an Instance carrying only the capacity.

    The live loop has no materialised instance when the policy's
    ``start`` runs (the adversary has not emitted anything yet); stock
    policies only read ``instance.capacity`` there.
    """

    __slots__ = ("capacity",)

    def __init__(self, capacity: np.ndarray) -> None:
        self.capacity = capacity


@dataclass(frozen=True)
class TrajectoryPoint:
    """One step of the certified-ratio trajectory (after one arrival)."""

    step: int
    time: float
    bins_opened: int
    committed_cost: float
    opt_upper: float
    certified_ratio: float


@dataclass(frozen=True)
class AttackResult:
    """Everything one attack run produced."""

    attack: str
    policy: str
    mu: float
    d: int
    instance: Instance
    cost: float
    opt_upper: float
    certified_ratio: float
    theoretical_bound: float
    #: ``certified_ratio / theoretical_bound`` — ``inf`` for
    #: unboundedness attacks, whose bound is ``inf`` and whose success
    #: criterion is the ratio threshold instead.
    fraction_of_bound: float
    trajectory: Tuple[TrajectoryPoint, ...]
    replay_identical: bool

    @property
    def n(self) -> int:
        """Number of induced items."""
        return self.instance.n

    def summary(self) -> dict:
        """JSON-ready summary (without the instance or trajectory).

        The unboundedness attacks have an infinite bound; JSON has no
        ``inf``, so those fields come out as ``None``.
        """
        finite = math.isfinite(self.theoretical_bound)
        return {
            "attack": self.attack,
            "policy": self.policy,
            "mu": self.mu,
            "d": self.d,
            "items": self.n,
            "cost": self.cost,
            "opt_upper": self.opt_upper,
            "certified_ratio": self.certified_ratio,
            "theoretical_bound": self.theoretical_bound if finite else None,
            "fraction_of_bound": self.fraction_of_bound if finite else None,
            "replay_identical": self.replay_identical,
        }


class AdversaryDriver:
    """Runs one adaptive attack against one policy.

    Parameters
    ----------
    adversary:
        The attack (already configured).
    policy:
        Registry name of the policy to attack; defaults to the attack's
        :attr:`~repro.adversaries.base.Adversary.target_policy`.
    seed:
        SeedSequence seed for the adversary's RNG — the only source of
        randomness, so ``(attack, policy, seed)`` determines the induced
        instance exactly (the golden-pin tests rely on this).
    record_trajectory:
        Disable to skip per-arrival trajectory points (large attacks).
    """

    def __init__(
        self,
        adversary: Adversary,
        policy: Optional[str] = None,
        seed: int = 0,
        record_trajectory: bool = True,
    ) -> None:
        self.adversary = adversary
        self.policy = policy or adversary.target_policy
        self.seed = int(seed)
        self.record_trajectory = record_trajectory

    # ------------------------------------------------------------------
    def run(self) -> AttackResult:
        """Execute the live loop, replay, and certify the ratio."""
        adversary = self.adversary
        config = adversary.config
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        adversary.reset(rng)

        kwargs = {"seed": 0} if self.policy == "random_fit" else {}
        algorithm = make_algorithm(self.policy, **kwargs)
        capacity = np.ones(config.d, dtype=np.float64)
        algorithm.start(_CapacityContext(capacity))

        bins: List[Bin] = []
        heap: List[Tuple[float, int]] = []  # (departure, uid)
        item_of: Dict[int, Item] = {}
        bin_of: Dict[int, Bin] = {}
        assignment: Dict[int, int] = {}
        emitted: List[Item] = []
        trajectory: List[TrajectoryPoint] = []
        now = 0.0
        last: Optional[PackRecord] = None

        while True:
            view = self._view(algorithm, bins, capacity, now, len(emitted), last)
            item = adversary.next_item(view)
            if item is None:
                break
            if len(emitted) >= config.max_items:
                raise AlgorithmError(
                    f"{adversary.name} exceeded max_items={config.max_items}; "
                    "the attack's termination logic is broken"
                )
            item = item.with_uid(len(emitted))
            if item.arrival < now:
                raise AlgorithmError(
                    f"{adversary.name} emitted a decreasing arrival "
                    f"({item.arrival} after {now})"
                )
            # departures at or before the arrival fire first, in
            # (time, uid) order — the classic engine's event ordering
            while heap and heap[0][0] <= item.arrival:
                dep_time, uid = heapq.heappop(heap)
                departed = item_of.pop(uid)
                target = bin_of.pop(uid)
                closed = target.remove(departed, dep_time)
                algorithm.notify_departure(target, departed, dep_time, closed)
            now = item.arrival

            opened: List[Bin] = []

            def open_new_bin() -> Bin:
                fresh = Bin(capacity, index=len(bins), opened_at=now)
                bins.append(fresh)
                opened.append(fresh)
                return fresh

            target = algorithm.dispatch(item, now, open_new_bin)
            if target is None:
                raise AlgorithmError(
                    f"{self.policy} returned no bin for item {item.uid}"
                )
            target.pack(item)
            item_of[item.uid] = item
            bin_of[item.uid] = target
            assignment[item.uid] = target.index
            heapq.heappush(heap, (item.departure, item.uid))
            emitted.append(item)
            last = PackRecord(item.uid, target.index, bool(opened))

            if self.record_trajectory:
                committed = sum(b.usage_time for b in bins)
                opt_now = adversary.opt_upper()
                opt_now = float(opt_now) if opt_now else math.nan
                ratio = committed / opt_now if opt_now and opt_now > 0 else math.nan
                trajectory.append(TrajectoryPoint(
                    step=len(emitted) - 1,
                    time=now,
                    bins_opened=len(bins),
                    committed_cost=committed,
                    opt_upper=opt_now,
                    certified_ratio=ratio,
                ))

        if not emitted:
            raise AlgorithmError(f"{adversary.name} emitted no items")
        # drain the remaining departures so the live policy state winds
        # down cleanly (cost is already committed — this changes nothing)
        while heap:
            dep_time, uid = heapq.heappop(heap)
            departed = item_of.pop(uid)
            target = bin_of.pop(uid)
            closed = target.remove(departed, dep_time)
            algorithm.notify_departure(target, departed, dep_time, closed)

        instance = Instance(
            emitted, capacity=capacity,
            name=f"{adversary.name}[{self.policy},seed={self.seed}]",
        )

        # replay through the classic engine: the induced instance must
        # reproduce the live decisions bit for bit
        replay_algorithm = make_algorithm(self.policy, **kwargs)
        packing = run(replay_algorithm, instance)
        replay_identical = dict(packing.assignment) == assignment

        certificate = adversary.opt_upper()
        if certificate is None:
            opt_upper = optimum_cost_bounds(instance)[1]
        else:
            opt_upper = float(certificate)
            lower = optimum_cost_bounds(instance)[0]
            if opt_upper + _TOL * max(1.0, opt_upper) < lower:
                raise AlgorithmError(
                    f"{adversary.name}: certificate {opt_upper:.6g} is below "
                    f"the certified OPT lower bound {lower:.6g} — the "
                    "attack's offline packing is infeasible"
                )
        cost = packing.cost
        ratio = cost / opt_upper if opt_upper > 0 else math.inf
        bound = adversary.theoretical_bound()
        fraction = ratio / bound if math.isfinite(bound) else math.inf
        return AttackResult(
            attack=adversary.name,
            policy=self.policy,
            mu=config.mu,
            d=config.d,
            instance=instance,
            cost=cost,
            opt_upper=opt_upper,
            certified_ratio=ratio,
            theoretical_bound=bound,
            fraction_of_bound=fraction,
            trajectory=tuple(trajectory),
            replay_identical=replay_identical,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _view(
        algorithm,
        bins: List[Bin],
        capacity: np.ndarray,
        now: float,
        emitted: int,
        last: Optional[PackRecord],
    ) -> EngineView:
        """Snapshot the live engine state for the adversary."""
        positions: Dict[int, int] = {}
        candidate_order: Tuple[int, ...] = ()
        if isinstance(algorithm, AnyFitAlgorithm):
            open_list = algorithm.open_list
            positions = {b.index: i for i, b in enumerate(open_list)}
            candidate_order = tuple(b.index for b in open_list)
        views = []
        committed = 0.0
        for b in bins:
            committed += b.usage_time
            if not b.is_open:
                continue
            views.append(BinView(
                index=b.index,
                load=tuple(float(x) for x in b.load),
                residual=tuple(float(c - x) for c, x in zip(capacity, b.load)),
                num_active=b.num_active,
                position=positions.get(b.index, -1),
            ))
        return EngineView(
            now=now,
            policy=getattr(algorithm, "name", type(algorithm).__name__),
            capacity=tuple(float(c) for c in capacity),
            open_bins=tuple(views),
            candidate_order=candidate_order,
            bins_opened=len(bins),
            committed_cost=committed,
            emitted=emitted,
            last=last,
        )


def run_attack(
    attack: str,
    config: Optional[AttackConfig] = None,
    policy: Optional[str] = None,
    seed: int = 0,
) -> AttackResult:
    """Convenience wrapper: build and drive a registered attack once.

    Raises
    ------
    ConfigurationError
        For unknown attack or policy names.
    """
    adversary = make_adversary(attack, config)
    if not isinstance(adversary, Adversary):  # pragma: no cover - registry guard
        raise ConfigurationError(f"{attack!r} did not build an Adversary")
    return AdversaryDriver(adversary, policy=policy, seed=seed).run()
