"""Command-line interface: ``python -m repro <experiment>`` / ``dvbp``.

Subcommands regenerate each paper artefact:

* ``table1``  — measured CR lower bounds on the adversarial families,
  plus the paper's bound formulas;
* ``table2``  — the experimental parameter table;
* ``figure1`` / ``figure2`` / ``figure3`` — the analysis diagrams;
* ``figure4`` — the average-case sweep (``--scale quick|full|smoke``),
  now crash-safe: ``--checkpoint-dir``/``--resume`` persist and reload
  completed units, ``--retries``/``--unit-timeout`` bound worker faults
  (see docs/architecture.md, "Checkpointing & fault tolerance");
* ``experiments`` — regenerate any subset of the paper's artifacts
  through the fault-tolerant driver (:mod:`repro.experiments.driver`);
* ``compare`` — run all registered algorithms on one generated instance
  and print the metric table (a quick interactive probe);
* ``bench``   — the pinned-seed perf-baseline suite (writes the
  ``BENCH_core.json`` trajectory file; see docs/observability.md);
* ``verify``  — the differential/invariant fuzzing harness
  (``--profile quick|deep``; see docs/verification.md) or a single
  Theorem 2/4 proof decomposition (``--theorem``);
* ``attack``  — run one adaptive lower-bound adversary against a live
  policy and print its certified-ratio trajectory, or ``--attack all``
  for the must-exceed-bound scenario grid (see docs/adversaries.md);
* ``serve``   — a long-lived :class:`~repro.streaming.PlacementService`
  speaking JSON-lines over stdin/stdout, with snapshot/restore
  (see docs/streaming.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .algorithms.registry import PAPER_ALGORITHMS, available_algorithms
from .analysis.report import format_table
from .experiments.config import FULL, QUICK, SMOKE
from .experiments.figure4 import render_figure4, run_figure4
from .experiments.figures123 import run_figure1, run_figure2, run_figure3
from .experiments.table1 import render_table1, render_table1_bounds, run_table1
from .experiments.table2 import render_table2
from .simulation.metrics import compute_metrics
from .simulation.runner import compare_algorithms
from .workloads.uniform import UniformWorkload

__all__ = ["main"]

_SCALES = {"full": FULL, "quick": QUICK, "smoke": SMOKE}


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser) -> None:
    """The shared orchestration knobs (see docs/architecture.md)."""
    parser.add_argument("--checkpoint-dir", default=None, dest="checkpoint_dir",
                        help="persist completed units here (crash-safe JSONL "
                             "shards); required for --resume")
    parser.add_argument("--resume", action="store_true",
                        help="skip units already in the checkpoint; results "
                             "are bit-identical to an uninterrupted run")
    parser.add_argument("--retries", type=int, default=0,
                        help="per-unit retry budget with exponential backoff")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        dest="unit_timeout",
                        help="per-unit wall-clock budget in seconds (pooled "
                             "runs recycle the worker pool on expiry)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dvbp",
        description="MinUsageTime Dynamic Vector Bin Packing (SPAA 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="verify Table 1 bounds on adversarial families")
    p1.add_argument("--mu", type=float, default=5.0, help="duration ratio of the families")
    p1.add_argument("--ks", type=int, nargs="+", default=[2, 4, 8, 16],
                    help="family growth parameters")
    p1.add_argument("--d", type=int, nargs="+", default=[1, 2, 3], dest="d_values")

    sub.add_parser("table2", help="print the experimental parameter table")

    sub.add_parser("figure1", help="MF leading/non-leading decomposition diagram")
    sub.add_parser("figure2", help="FF usage-period decomposition diagram")

    p3 = sub.add_parser("figure3", help="Any Fit execution on the Theorem 5 instance")
    p3.add_argument("--d", type=int, default=2)
    p3.add_argument("--k", type=int, default=3)
    p3.add_argument("--mu", type=float, default=4.0)
    p3.add_argument("--algorithm", default="first_fit", choices=available_algorithms())

    p4 = sub.add_parser("figure4", help="average-case performance sweep")
    p4.add_argument("--scale", choices=sorted(_SCALES), default="quick",
                    help="full = paper's Table 2 (slow); quick = same grid, smaller m")
    p4.add_argument("--processes", type=int, default=0,
                    help="fan (algorithm, instance) units across N worker processes")
    p4.add_argument("--csv", default=None,
                    help="also write the measurements as CSV to this path")
    p4.add_argument("--engine", choices=["classic", "fast", "batch"],
                    default="classic",
                    help="simulation engine for every unit (bit-identical "
                         "results); batch = group each instance's whole "
                         "policy fan-out into one BatchRunner pass and ship "
                         "compact instance specs to workers")
    _add_fault_tolerance_flags(p4)

    pe = sub.add_parser(
        "experiments",
        help="regenerate paper artifacts through the fault-tolerant driver",
    )
    pe.add_argument("--artifacts", nargs="+", default=None,
                    metavar="NAME",
                    help="artifact subset (default: all); see repro.experiments.driver")
    pe.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    pe.add_argument("--processes", type=int, default=0)
    pe.add_argument("--engine", choices=["classic", "fast", "batch"],
                    default="classic")
    pe.add_argument("--out-dir", default=None, dest="out_dir",
                    help="write each artifact to <out-dir>/<name>.txt (atomic); "
                         "with --resume, existing outputs are skipped")
    _add_fault_tolerance_flags(pe)

    pc = sub.add_parser("compare", help="run all paper algorithms on one random instance")
    pc.add_argument("--d", type=int, default=2)
    pc.add_argument("--n", type=int, default=500)
    pc.add_argument("--mu", type=int, default=10)
    pc.add_argument("--seed", type=int, default=0)

    ps = sub.add_parser("search", help="hunt for high-competitive-ratio instances")
    ps.add_argument("--algorithm", default="next_fit", choices=available_algorithms())
    ps.add_argument("--d", type=int, default=1)
    ps.add_argument("--n", type=int, default=12)
    ps.add_argument("--mu", type=float, default=5.0)
    ps.add_argument("--budget", type=int, default=200)
    ps.add_argument("--hill-climb", type=int, default=100, dest="hill_climb")
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--save", default=None, help="write the worst instance as JSON")

    po = sub.add_parser(
        "offline", help="online vs offline (no-repack greedy/local-search, repack bracket)"
    )
    po.add_argument("--d", type=int, default=2)
    po.add_argument("--n", type=int, default=60)
    po.add_argument("--mu", type=int, default=10)
    po.add_argument("--seed", type=int, default=0)

    pg = sub.add_parser("generate", help="generate an instance and write it to JSON")
    pg.add_argument("path", help="output file")
    pg.add_argument("--workload", default="uniform",
                    choices=["uniform", "trace", "poisson"])
    pg.add_argument("--d", type=int, default=2)
    pg.add_argument("--n", type=int, default=500)
    pg.add_argument("--mu", type=int, default=10)
    pg.add_argument("--seed", type=int, default=0)

    pr = sub.add_parser("run", help="run one algorithm on an instance JSON file")
    pr.add_argument("path", help="instance file written by `generate` or to_json()")
    pr.add_argument("--algorithm", default="move_to_front",
                    choices=available_algorithms())
    pr.add_argument("--validate", action="store_true",
                    help="audit the packing before reporting")
    pr.add_argument("--engine",
                    choices=["classic", "fast", "batch", "streaming",
                             "repacking"],
                    default="classic",
                    help="fast = the flat-array FastEngine (bit-identical "
                         "packings, several times faster; falls back to "
                         "classic for policies without a fast kernel); "
                         "batch = one BatchRunner pass (same results; pays "
                         "off over many replays); streaming = the "
                         "bounded-memory event loop (same results on every "
                         "policy; memory scales with peak live items); "
                         "repacking = the migration-budget engine (may "
                         "relocate live items within --budget after each "
                         "event; budget 0 is bit-identical to classic)")
    pr.add_argument("--repacker", default=None,
                    help="repacking policy (no_repack, greedy_consolidate, "
                         "budgeted_rebalance); only with --engine repacking")
    pr.add_argument("--budget", type=float, default=None,
                    help="migration budget: per-event move cap, or "
                         "amortized credit rate for budgeted_rebalance; "
                         "only with --engine repacking")
    pr.add_argument("--retries", type=int, default=0,
                    help="retry the run with exponential backoff on failure")
    pr.add_argument("--unit-timeout", type=float, default=None,
                    dest="unit_timeout",
                    help="abort the run after this many seconds (each retry "
                         "gets a fresh budget; SIGALRM-based, POSIX only)")

    pb = sub.add_parser(
        "bench", help="run the pinned-seed perf-baseline suite (writes JSON)"
    )
    pb.add_argument("--suite",
                    choices=["core", "smoke", "fastpath", "fastpath-smoke",
                             "fastpath-vectorized", "fastpath-vectorized-smoke",
                             "fastpath-numba", "fastpath-numba-smoke",
                             "batch", "batch-smoke",
                             "streaming", "streaming-smoke",
                             "adversary",
                             "repacking", "repacking-smoke"],
                    default="core",
                    help="core = the BENCH_core.json grid; smoke = seconds-fast "
                         "subset; fastpath = the classic-vs-FastEngine "
                         "comparison grid (merged under the 'fastpath' key of "
                         "the output); fastpath-vectorized = the trial-lockstep "
                         "multi-trial kernel vs per-trial dispatch, plus the "
                         "L1/Lp measure-kernel cells (nested under "
                         "'fastpath.vectorized'); fastpath-numba = the JIT-"
                         "kernel grid vs numpy plus the numba trial fan-out "
                         "(nested under 'fastpath.numba'; honest stub when "
                         "numba is missing); batch = the per-unit-vs-batched sweep "
                         "comparison grid (merged under the 'batch' key); "
                         "streaming = the bounded-memory long-stream grid "
                         "(events/sec + peak-RSS, merged under the "
                         "'streaming' key); adversary = the adaptive "
                         "must-exceed-bound attack grid (certified ratios + "
                         "wall time, merged under the 'adversary' key); "
                         "repacking = the migration-budget cost frontier "
                         "vs the no-recourse baseline and offline/"
                         "clairvoyant yardsticks (merged under the "
                         "'repacking' key); *-smoke = their seconds-fast "
                         "subsets")
    pb.add_argument("--repeats", type=int, default=3,
                    help="runs per (scenario, algorithm); wall-time is the min")
    pb.add_argument("--output", default="BENCH_core.json",
                    help="output JSON path (defaults to ./BENCH_core.json)")
    pb.add_argument("--trace", default=None,
                    help="also emit per-run records to this JSON-lines file")
    pb.add_argument("--overhead", action="store_true",
                    help="measure and report instrumented-vs-plain engine overhead")

    pss = sub.add_parser(
        "serve",
        help="run a long-lived placement service over JSON-lines "
             "stdin/stdout (see docs/streaming.md for the protocol)",
    )
    pss.add_argument("--policy", default="move_to_front",
                     choices=available_algorithms())
    pss.add_argument("--capacity", type=float, nargs="+", default=[100.0],
                     help="bin capacity: one value per dimension, or a "
                          "single scalar combined with --d")
    pss.add_argument("--d", type=int, default=1,
                     help="dimensions when --capacity is a single scalar")
    pss.add_argument("--seed", type=int, default=0,
                     help="seed for random_fit (ignored by other policies)")
    pss.add_argument("--restore", default=None, metavar="PATH",
                     help="resume from a checksummed snapshot file (written "
                          "by the snapshot op or --snapshot-on-exit); "
                          "--policy/--capacity/--d/--seed are then ignored")
    pss.add_argument("--snapshot-on-exit", default=None, metavar="PATH",
                     dest="snapshot_on_exit",
                     help="write a checksummed snapshot here when the "
                          "request stream ends")

    pv = sub.add_parser(
        "verify",
        help="run the differential/invariant fuzz harness (--profile) or "
             "check a Theorem 2/4 proof decomposition (--theorem)",
    )
    pv.add_argument("--profile", choices=["quick", "deep"], default=None,
                    help="run the repro.verify harness: every corpus instance "
                         "through all seven policies against the reference "
                         "simulator and invariant auditor")
    pv.add_argument("--instances", type=int, default=None,
                    help="override the profile's corpus size (replay/debug)")
    pv.add_argument("--theorem", type=int, choices=[2, 4], default=2)
    pv.add_argument("--d", type=int, default=2)
    pv.add_argument("--n", type=int, default=300)
    pv.add_argument("--mu", type=int, default=20)
    pv.add_argument("--seed", type=int, default=None,
                    help="workload seed (--theorem path) or corpus seed "
                         "override (--profile path)")

    from .adversaries.attacks import ATTACKS as _ATTACKS

    pa = sub.add_parser(
        "attack",
        help="run an adaptive lower-bound adversary against a live policy "
             "and print its certified-ratio trajectory",
    )
    pa.add_argument("--attack", default="all",
                    choices=sorted(_ATTACKS) + ["all"],
                    help="which attack to run; 'all' runs the "
                         "must-exceed-bound scenario grid that repro verify "
                         "uses and exits non-zero on any failure")
    pa.add_argument("--policy", default=None, choices=available_algorithms(),
                    help="policy to attack (default: the attack's target)")
    pa.add_argument("--mu", type=float, default=4.0,
                    help="duration ratio the attack is built for")
    pa.add_argument("--d", type=int, default=1, help="resource dimensions")
    pa.add_argument("--rounds", type=int, default=None,
                    help="explicit construction size (default: auto-sized to "
                         "reach --fraction of the theoretical bound)")
    pa.add_argument("--fraction", type=float, default=0.9,
                    help="target fraction of the bound when auto-sizing")
    pa.add_argument("--threshold", type=float, default=50.0,
                    help="stop threshold for the unbounded-ratio attacks")
    pa.add_argument("--seed", type=int, default=0,
                    help="adversary RNG seed (determines the induced instance)")
    pa.add_argument("--trajectory", type=int, default=0, metavar="N",
                    help="print every N-th certified-ratio trajectory point")
    pa.add_argument("--json", action="store_true", dest="as_json",
                    help="print the result summary as JSON instead of a table")

    return parser


def _with_timeout(fn, timeout: Optional[float]):
    """Run ``fn()`` under a SIGALRM wall-clock budget (POSIX only).

    ``timeout=None`` — or a platform without ``SIGALRM`` — runs ``fn``
    unguarded.  On expiry raises :class:`TimeoutError`, which the
    caller's retry policy treats like any other failure.
    """
    import signal as _signal

    if timeout is None or not hasattr(_signal, "SIGALRM"):
        return fn()

    def _expired(signum, frame):
        raise TimeoutError(f"run exceeded --unit-timeout ({timeout:g}s)")

    previous = _signal.signal(_signal.SIGALRM, _expired)
    _signal.setitimer(_signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        _signal.setitimer(_signal.ITIMER_REAL, 0.0)
        _signal.signal(_signal.SIGALRM, previous)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point.  Returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "table1":
        rows = run_table1(ks=tuple(args.ks), d_values=tuple(args.d_values), mu=args.mu)
        print(render_table1_bounds(mu=args.mu, d_values=tuple(args.d_values)))
        print()
        print(render_table1(rows))
    elif args.command == "table2":
        print(render_table2())
    elif args.command == "figure1":
        print(run_figure1())
    elif args.command == "figure2":
        print(run_figure2())
    elif args.command == "figure3":
        print(run_figure3(d=args.d, k=args.k, mu=args.mu, algorithm=args.algorithm))
    elif args.command == "figure4":
        result = run_figure4(
            config=_SCALES[args.scale], processes=args.processes,
            engine=args.engine, checkpoint_dir=args.checkpoint_dir,
            resume=args.resume, retries=args.retries,
            unit_timeout=args.unit_timeout,
        )
        print(render_figure4(result))
        if args.csv:
            from .experiments.figure4 import figure4_csv

            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(figure4_csv(result))
            print(f"\n[csv written to {args.csv}]")
    elif args.command == "experiments":
        from .experiments.driver import run_experiments

        rendered = run_experiments(
            names=args.artifacts, config=_SCALES[args.scale],
            processes=args.processes, engine=args.engine,
            out_dir=args.out_dir, checkpoint_dir=args.checkpoint_dir,
            resume=args.resume, retries=args.retries,
            unit_timeout=args.unit_timeout, progress=print,
        )
        if not args.out_dir:
            print("\n\n".join(rendered.values()))
    elif args.command == "compare":
        gen = UniformWorkload(d=args.d, n=args.n, mu=args.mu)
        instance = gen.sample_seeded(args.seed)
        packings = compare_algorithms(PAPER_ALGORITHMS, instance)
        headers = ["algorithm", "cost", "bins", "max concurrent", "avg utilization"]
        rows = []
        for name, packing in packings.items():
            m = compute_metrics(packing)
            rows.append([name, m.cost, m.num_bins, m.max_concurrent, m.average_utilization])
        print(format_table(headers, rows, title=f"All algorithms on {instance!r}"))
    elif args.command == "search":
        from .analysis.competitive import random_search

        result = random_search(
            args.algorithm, d=args.d, n=args.n, mu=args.mu,
            budget=args.budget, hill_climb=args.hill_climb, seed=args.seed,
        )
        print(f"worst instance found for {args.algorithm} "
              f"(after {result.evaluations} evaluations):")
        print(f"  n = {result.instance.n}, mu = {result.instance.mu:g}, "
              f"d = {result.instance.d}")
        print(f"  cost = {result.cost:.3f}, certified OPT <= {result.opt_upper:.3f}")
        print(f"  certified competitive ratio >= {result.ratio:.3f}")
        if args.save:
            with open(args.save, "w", encoding="utf-8") as fh:
                fh.write(result.instance.to_json())
            print(f"  instance written to {args.save}")
    elif args.command == "offline":
        from .optimum.offline_assignment import greedy_assignment, local_search
        from .optimum.opt_cost import optimum_cost_bounds
        from .simulation.runner import run as run_one

        instance = UniformWorkload(d=args.d, n=args.n, mu=args.mu).sample_seeded(args.seed)
        rows = []
        for name in ("move_to_front", "first_fit"):
            rows.append([f"online {name}", run_one(name, instance).cost])
        rows.append(["offline greedy (no repack)", greedy_assignment(instance).cost])
        rows.append(["offline local search (no repack)", local_search(instance).cost])
        lo, hi = optimum_cost_bounds(instance)
        rows.append(["offline repack optimum (bracket)", f"[{lo:.1f}, {hi:.1f}]"])
        print(format_table(["solution", "cost"], rows,
                           title=f"Online vs offline on {instance!r}"))
    elif args.command == "generate":
        from .workloads.poisson import PoissonWorkload
        from .workloads.trace import CloudTraceWorkload

        if args.workload == "uniform":
            gen = UniformWorkload(d=args.d, n=args.n, mu=args.mu)
        elif args.workload == "trace":
            gen = CloudTraceWorkload()
        else:
            gen = PoissonWorkload(d=args.d)
        instance = gen.sample_seeded(args.seed)
        with open(args.path, "w", encoding="utf-8") as fh:
            fh.write(instance.to_json())
        print(f"wrote {instance!r} to {args.path}")
    elif args.command == "run":
        from .core.instance import Instance

        with open(args.path, "r", encoding="utf-8") as fh:
            instance = Instance.from_json(fh.read())
        from .orchestration.faults import RetryPolicy, call_with_retry
        from .simulation.runner import effective_engine
        from .simulation.runner import run as run_one

        if args.engine != "repacking" and (
            args.repacker is not None or args.budget is not None
        ):
            print("--repacker/--budget require --engine repacking",
                  file=sys.stderr)
            return 2
        effective = effective_engine(args.algorithm, engine=args.engine)
        repack_kwargs = (
            {"repacker": args.repacker, "budget": args.budget}
            if args.engine == "repacking" else {}
        )
        packing = call_with_retry(
            lambda: _with_timeout(
                lambda: run_one(args.algorithm, instance,
                                validate=args.validate, engine=args.engine,
                                **repack_kwargs),
                args.unit_timeout,
            ),
            RetryPolicy(retries=args.retries),
            label=f"run {args.algorithm}",
        )
        m = compute_metrics(packing)
        rows = [[k, v] for k, v in m.as_dict().items()]
        engine_note = (
            f"{effective} engine"
            if effective == args.engine
            else f"{effective} engine; {args.engine} requested"
        )
        if args.engine == "repacking":
            engine_note = (
                f"repacking engine, {args.repacker or 'no_repack'}"
                + (f":{args.budget:g}" if args.budget is not None else "")
            )
        print(format_table(["metric", "value"], rows,
                           title=f"{args.algorithm} on {instance!r} "
                                 f"({engine_note})"))
    elif args.command == "bench":
        import json as _json
        import os as _os

        from .observability.bench import (
            BATCH_SCENARIOS,
            BATCH_SMOKE_SCENARIOS,
            CORE_SCENARIOS,
            FASTPATH_SCENARIOS,
            FASTPATH_SMOKE_SCENARIOS,
            REPACKING_SCENARIOS,
            REPACKING_SMOKE_SCENARIOS,
            SCHEMA,
            SMOKE_SCENARIOS,
            STREAMING_SCENARIOS,
            STREAMING_SMOKE_SCENARIOS,
            VECTORIZED_SCENARIO,
            VECTORIZED_SMOKE_SCENARIO,
            VECTORIZED_SMOKE_TRIALS,
            VECTORIZED_TRIALS,
            NUMBA_SMOKE_TRIALS,
            NUMBA_TRIALS,
            measure_overhead,
            merge_numba,
            merge_suite,
            merge_vectorized,
            run_adversary_suite,
            run_batch_suite,
            run_fastpath_suite,
            run_numba_suite,
            run_repacking_suite,
            run_streaming_suite,
            run_suite,
            run_vectorized_suite,
            write_bench,
        )
        from .observability.sinks import JsonLinesSink, NullSink

        def _load_existing():
            if not _os.path.exists(args.output):
                return None
            try:
                with open(args.output, "r", encoding="utf-8") as fh:
                    return _json.load(fh)
            except (OSError, ValueError):
                return None

        if args.suite == "adversary":
            print(f"running {args.suite} suite (repeats={args.repeats}) ...")
            payload = run_adversary_suite(repeats=args.repeats,
                                          suite=args.suite, progress=print)
            # Keep one trajectory file: nest under an existing core
            # payload (preserving its companion records) when present.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_suite(existing, "adversary", payload)
            write_bench(out, args.output)
            head = payload["headline"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"{head['scenarios']} scenarios, "
                  f"all_passed={head['all_passed']}, tightest margin "
                  f"{head['tightest_margin']:.3f} "
                  f"({head['tightest_scenario']}), max amplifier ratio "
                  f"{head['max_amplifier_ratio']:.1f}; wrote {args.output}")
            return 0 if head["all_passed"] else 1
        if args.suite in ("repacking", "repacking-smoke"):
            scenarios = (
                REPACKING_SCENARIOS if args.suite == "repacking"
                else REPACKING_SMOKE_SCENARIOS
            )
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"repeats={args.repeats}) ...")
            payload = run_repacking_suite(
                scenarios=scenarios, repeats=args.repeats,
                suite=args.suite, progress=print
            )
            # Keep one trajectory file: nest under an existing core
            # payload (preserving its companion records) when present.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_suite(existing, "repacking", payload)
            write_bench(out, args.output)
            head = payload["headline"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"{head['scenarios']} scenarios, "
                  f"gadgets_improved={head['gadgets_improved']}, biggest "
                  f"saving {head['biggest_improvement']:.0%} "
                  f"({head['biggest_improvement_scenario']}); "
                  f"wrote {args.output}")
            return 0 if head["gadgets_improved"] else 1
        if args.suite in ("streaming", "streaming-smoke"):
            scenarios = (
                STREAMING_SCENARIOS if args.suite == "streaming"
                else STREAMING_SMOKE_SCENARIOS
            )
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"repeats={args.repeats}) ...")
            payload = run_streaming_suite(
                scenarios=scenarios, repeats=args.repeats,
                suite=args.suite, progress=print
            )
            # Keep one trajectory file: nest under an existing core
            # payload (preserving its companion records) when present.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_suite(existing, "streaming", payload)
            write_bench(out, args.output)
            head = payload["headline"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"headline ({head['scenario']}): "
                  f"{head['events']} events at "
                  f"{head['events_per_sec']:.0f}/s, peak live "
                  f"{head['peak_live_items']} of {head['items']} items, "
                  f"rss {head['peak_rss_mb']:.0f} MiB; wrote {args.output}")
            return 0
        if args.suite in ("batch", "batch-smoke"):
            scenarios = (
                BATCH_SCENARIOS if args.suite == "batch"
                else BATCH_SMOKE_SCENARIOS
            )
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"repeats={args.repeats}) ...")
            payload = run_batch_suite(
                scenarios=scenarios, repeats=args.repeats,
                suite=args.suite, progress=print
            )
            # Keep one trajectory file: nest under an existing core
            # payload (preserving its fastpath record) when present.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_suite(existing, "batch", payload)
            write_bench(out, args.output)
            head = payload["headline"]
            mem = payload["item_memory"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"headline: per-unit {head['per_unit_s']:.2f} s vs batch "
                  f"{head['batch_s']:.2f} s ({head['speedup']:.1f}x), "
                  f"identical={head['identical']}; slots save "
                  f"{mem['savings_bytes_per_item']:.0f} B/item; "
                  f"wrote {args.output}")
            return 0
        if args.suite in ("fastpath-vectorized", "fastpath-vectorized-smoke"):
            smoke = args.suite == "fastpath-vectorized-smoke"
            scenario = VECTORIZED_SMOKE_SCENARIO if smoke else VECTORIZED_SCENARIO
            n_trials = VECTORIZED_SMOKE_TRIALS if smoke else VECTORIZED_TRIALS
            print(f"running {args.suite} suite ({scenario.name}, "
                  f"{n_trials} trials, repeats={args.repeats}) ...")
            payload = run_vectorized_suite(
                trials_scenario=scenario, measure_scenario=scenario,
                n_trials=n_trials, repeats=args.repeats,
                suite=args.suite, progress=print
            )
            # Nest under the 'fastpath' key of an existing core payload so
            # BENCH_core.json stays the single trajectory file.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_vectorized(existing, payload)
            write_bench(out, args.output)
            head = payload["headline"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"headline ({head['scenario']}, {head['n_trials']} trials): "
                  f"lockstep {head['speedup_vs_sequential']:.1f}x vs per-trial "
                  f"dispatch, {head['speedup_vs_classic']:.1f}x vs classic, "
                  f"identical={head['identical']}; wrote {args.output}")
            return 0
        if args.suite in ("fastpath-numba", "fastpath-numba-smoke"):
            smoke = args.suite == "fastpath-numba-smoke"
            scenarios = FASTPATH_SMOKE_SCENARIOS if smoke else FASTPATH_SCENARIOS
            n_trials = NUMBA_SMOKE_TRIALS if smoke else NUMBA_TRIALS
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"{n_trials} trials, repeats={args.repeats}) ...")
            payload = run_numba_suite(
                scenarios=scenarios, n_trials=n_trials,
                repeats=args.repeats, suite=args.suite, progress=print
            )
            # Nest under the 'fastpath' key of an existing core payload so
            # BENCH_core.json stays the single trajectory file.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
                out = merge_numba(existing, payload)
            write_bench(out, args.output)
            if not payload.get("available"):
                print(f"numba unavailable ({payload['reason']}); wrote "
                      f"honest stub; wrote {args.output}")
                return 0
            head = payload["headline"]
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"headline ({head['scenario']}): jit compile "
                  f"{head['jit_compile_s']:.2f} s (excluded from timings), "
                  f"{head['speedup_numba']:.1f}x classic, "
                  f"{head['speedup_vs_numpy']:.1f}x numpy, "
                  f"{head['events_per_sec_numba']:.0f} events/s, "
                  f"identical={head['identical']}; wrote {args.output}")
            return 0
        if args.suite in ("fastpath", "fastpath-smoke"):
            scenarios = (
                FASTPATH_SCENARIOS if args.suite == "fastpath"
                else FASTPATH_SMOKE_SCENARIOS
            )
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"repeats={args.repeats}) ...")
            payload = run_fastpath_suite(
                scenarios=scenarios, repeats=args.repeats,
                suite=args.suite, progress=print
            )
            # Keep one trajectory file: nest under an existing core
            # payload (preserving its batch record) when present.  A
            # fastpath re-run must also carry over any nested vectorized
            # or numba record rather than clobbering it with the fresh
            # payload.
            out = payload
            existing = _load_existing()
            if isinstance(existing, dict):
                prior = existing.get("fastpath", {})
                if isinstance(prior, dict):
                    for key in ("vectorized", "numba"):
                        if key in prior:
                            payload[key] = prior[key]
                if existing.get("schema") == SCHEMA:
                    out = merge_suite(existing, "fastpath", payload)
            write_bench(out, args.output)
            head = payload["headline"]
            speedups = ", ".join(
                f"{b} {head[f'speedup_{b}']:.1f}x" for b in payload["backends"]
            )
            print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
                  f"headline ({head['scenario']}): {speedups}, "
                  f"identical={head['identical']}; wrote {args.output}")
            return 0
        scenarios = CORE_SCENARIOS if args.suite == "core" else SMOKE_SCENARIOS
        sink = JsonLinesSink(args.trace) if args.trace else NullSink()
        try:
            print(f"running {args.suite} suite ({len(scenarios)} scenarios, "
                  f"repeats={args.repeats}) ...")
            payload = run_suite(scenarios=scenarios, repeats=args.repeats,
                                suite=args.suite, sink=sink, progress=print)
        finally:
            sink.close()
        if args.overhead:
            report = measure_overhead()
            payload["overhead"] = report
            print(f"instrumentation overhead on {report['scenario']} "
                  f"({report['algorithm']}): {report['overhead_frac'] * 100:+.2f}%")
        # A core re-run must not discard existing companion records.
        existing = _load_existing()
        if isinstance(existing, dict):
            from .observability.bench import COMPANION_SUITES
            for key in COMPANION_SUITES:
                if key in existing:
                    payload = merge_suite(payload, key, existing[key])
        write_bench(payload, args.output)
        print(f"suite finished in {payload['total_wall_time_s']:.1f} s; "
              f"wrote {args.output}")
    elif args.command == "serve":
        from .streaming.service import PlacementService, serve_loop

        if args.restore:
            svc = PlacementService.restore_from(args.restore)
            print(f'{{"ok": true, "restored": "{args.restore}"}}', flush=True)
        else:
            cap = (args.capacity[0] if len(args.capacity) == 1
                   else args.capacity)
            svc = PlacementService(policy=args.policy, capacity=cap,
                                   d=args.d, seed=args.seed)

        def _emit(line: str) -> None:
            sys.stdout.write(line + "\n")
            sys.stdout.flush()

        serve_loop(svc, sys.stdin, _emit)
        if args.snapshot_on_exit:
            svc.snapshot_to(args.snapshot_on_exit)
    elif args.command == "verify":
        if args.profile is not None:
            from .verify import run_verify

            report = run_verify(
                profile=args.profile, instances=args.instances,
                seed=args.seed, progress=print,
            )
            print(report.render())
            return 0 if report.ok else 1

        from .analysis.proofs import verify_theorem2, verify_theorem4

        seed = 0 if args.seed is None else args.seed
        instance = UniformWorkload(d=args.d, n=args.n, mu=args.mu).sample_seeded(seed)
        report = (verify_theorem2 if args.theorem == 2 else verify_theorem4)(instance)
        rows = [
            [c.name, c.lhs, c.rhs, "OK" if c.holds else "VIOLATED"]
            for c in report.checks
        ]
        print(format_table(
            ["inequality", "lhs", "rhs", "verdict"], rows,
            title=f"Theorem {args.theorem} proof decomposition on {instance!r}",
        ))
        print(f"\nall inequalities hold: {report.all_hold}")
        return 0 if report.all_hold else 1
    elif args.command == "attack":
        import json as _json

        from .adversaries import AttackConfig, must_exceed_report, run_attack

        if args.attack == "all":
            outcomes = must_exceed_report(seed=args.seed)
            rows = [
                [
                    o.scenario.label,
                    f"{o.achieved:.3f}",
                    f"{o.required:.3f}",
                    o.result.n,
                    "PASS" if o.passed else "FAIL",
                ]
                for o in outcomes
            ]
            print(format_table(
                ["scenario", "certified ratio", "required", "items", "verdict"],
                rows, title="Must-exceed-bound scenario grid",
            ))
            return 0 if all(o.passed for o in outcomes) else 1

        config = AttackConfig(
            mu=args.mu, d=args.d, rounds=args.rounds,
            target_fraction=args.fraction, ratio_threshold=args.threshold,
        )
        result = run_attack(args.attack, config=config,
                            policy=args.policy, seed=args.seed)
        if args.as_json:
            print(_json.dumps(result.summary(), indent=2))
        else:
            rows = [[k, v] for k, v in result.summary().items()]
            print(format_table(
                ["field", "value"], rows,
                title=f"{result.attack} vs {result.policy}",
            ))
            if args.trajectory > 0:
                points = result.trajectory[::args.trajectory]
                if result.trajectory and result.trajectory[-1] not in points:
                    points = points + (result.trajectory[-1],)
                print("\ncertified-ratio trajectory "
                      f"(every {args.trajectory}th of {len(result.trajectory)} points):")
                for pt in points:
                    print(f"  step {pt.step:5d}  t={pt.time:9.3f}  "
                          f"bins={pt.bins_opened:4d}  "
                          f"cost={pt.committed_cost:10.3f}  "
                          f"opt<= {pt.opt_upper:10.3f}  "
                          f"ratio={pt.certified_ratio:7.3f}")
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
