"""Derived metrics over finished packings.

Everything here is a pure function of a
:class:`~repro.core.packing.Packing` (no engine state), so metrics can be
recomputed offline from stored packings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.intervals import Interval
from ..core.packing import Packing

__all__ = [
    "PackingMetrics",
    "compute_metrics",
    "open_bins_timeline",
    "cost_breakdown_by_bin",
]


@dataclass(frozen=True)
class PackingMetrics:
    """Summary statistics for one packing.

    Attributes
    ----------
    cost:
        Total usage time (Eq. 1) — the objective.
    num_bins:
        Bins opened over the whole run.
    span:
        ``span(R)`` of the instance (a lower bound on any cost).
    max_concurrent:
        Peak simultaneously active bins.
    mean_concurrent:
        Time-average of the active-bin count (``cost / horizon length``
        over the active horizon; equals ``cost / span`` for a single
        active component).
    average_utilization:
        Normalised time-space utilisation in ``[0, 1]``.
    mean_bin_lifetime:
        Average usage time per opened bin.
    """

    cost: float
    num_bins: int
    span: float
    max_concurrent: int
    mean_concurrent: float
    average_utilization: float
    mean_bin_lifetime: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for tabular reports."""
        return {
            "cost": self.cost,
            "num_bins": float(self.num_bins),
            "span": self.span,
            "max_concurrent": float(self.max_concurrent),
            "mean_concurrent": self.mean_concurrent,
            "average_utilization": self.average_utilization,
            "mean_bin_lifetime": self.mean_bin_lifetime,
        }


def open_bins_timeline(packing: Packing) -> List[Tuple[Interval, int]]:
    """Piecewise-constant count of active bins over time.

    Returns ``(interval, count)`` segments tiling the instance horizon;
    segments with zero active bins are included (they can occur when the
    instance has several active components).
    """
    points = sorted(
        {rec.opened_at for rec in packing.bins} | {rec.closed_at for rec in packing.bins}
    )
    segments: List[Tuple[Interval, int]] = []
    for t0, t1 in zip(points, points[1:]):
        count = sum(1 for rec in packing.bins if rec.opened_at <= t0 and t1 <= rec.closed_at)
        segments.append((Interval(t0, t1), count))
    return segments


def cost_breakdown_by_bin(packing: Packing) -> Dict[int, float]:
    """Per-bin usage time; values sum to ``packing.cost``."""
    return {rec.index: rec.usage_time for rec in packing.bins}


def compute_metrics(packing: Packing) -> PackingMetrics:
    """Compute the full :class:`PackingMetrics` for a packing."""
    cost = packing.cost
    span = packing.instance.span
    horizon = packing.instance.horizon.length
    timeline = open_bins_timeline(packing)
    max_concurrent = max((c for _, c in timeline), default=0)
    mean_concurrent = cost / horizon if horizon > 0 else 0.0
    lifetimes = [rec.usage_time for rec in packing.bins]
    return PackingMetrics(
        cost=cost,
        num_bins=packing.num_bins,
        span=span,
        max_concurrent=max_concurrent,
        mean_concurrent=mean_concurrent,
        average_utilization=packing.average_utilization(),
        mean_bin_lifetime=float(np.mean(lifetimes)) if lifetimes else 0.0,
    )
