"""Parallel batch execution for sweeps.

The Figure 4 full-scale study is 18 cells × 7 algorithms × 1000
instances — embarrassingly parallel across instances.  This module runs
(algorithm, instance) work units across processes with
``concurrent.futures.ProcessPoolExecutor``, following the mpi4py/HPC
guidance of keeping the unit of work coarse (one full simulation, not
one event) so serialisation overhead stays negligible.

Work units are shipped as ``(algorithm_name, algorithm_kwargs,
instance_dict)`` — plain picklable payloads; results come back as
``(cost, num_bins, ratio)`` triples so large packings never cross the
process boundary.  A ``processes=None`` default uses ``os.cpu_count()``;
``processes=0`` short-circuits to the serial path (useful under pytest
and on platforms where fork semantics are awkward).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..algorithms.registry import make_algorithm
from ..core.instance import Instance
from ..observability.stats import RunStats, StatsCollector
from ..optimum.lower_bounds import height_lower_bound
from .runner import run

__all__ = [
    "UnitResult",
    "simulate_unit",
    "simulate_chunk",
    "parallel_sweep",
    "aggregate_sweep_stats",
]


@dataclass(frozen=True)
class UnitResult:
    """Result of one (algorithm, instance) work unit.

    ``stats`` is populated (with the worker-side
    :class:`~repro.observability.stats.RunStats`) only when the sweep
    ran with ``collect_stats=True``; it rides back across the process
    boundary as a small frozen record, never the full packing.
    """

    algorithm: str
    instance_index: int
    cost: float
    num_bins: int
    lower_bound: float
    stats: Optional[RunStats] = None

    @property
    def ratio(self) -> float:
        """Performance ratio vs the Lemma 1(i) bound."""
        return self.cost / self.lower_bound


def simulate_unit(
    payload: Tuple[str, Mapping[str, object], int, dict, float]
) -> UnitResult:
    """Worker entry point: simulate one algorithm on one instance.

    ``payload`` is ``(name, kwargs, index, instance_dict, lower_bound)``
    with an optional sixth ``collect_stats`` flag and an optional seventh
    ``engine`` name (``"classic"``/``"fast"``; older five- and
    six-element payloads remain valid).  Module-level (picklable) by
    design so it works with the spawn start method.
    """
    name, kwargs, index, inst_dict, lb, *rest = payload
    collect_stats = bool(rest[0]) if rest else False
    engine = str(rest[1]) if len(rest) > 1 else "classic"
    instance = Instance.from_dict(inst_dict)
    collector = StatsCollector() if collect_stats else None
    packing = run(
        make_algorithm(name, **dict(kwargs)), instance, collector=collector, engine=engine
    )
    return UnitResult(
        algorithm=name,
        instance_index=index,
        cost=packing.cost,
        num_bins=packing.num_bins,
        lower_bound=lb,
        stats=collector.snapshot() if collector is not None else None,
    )


def simulate_chunk(payloads: Sequence[tuple]) -> List[UnitResult]:
    """Worker entry point for the fast engine's chunked dispatch.

    A fast-engine unit finishes several times sooner than a classic one,
    so per-unit futures would push the IPC share of the wall time up;
    shipping an explicit list of payloads per task keeps the unit of
    work as coarse as in the classic sweep.  Semantically identical to
    ``[simulate_unit(p) for p in payloads]``.
    """
    return [simulate_unit(p) for p in payloads]


def parallel_sweep(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    processes: Optional[int] = None,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    chunksize: int = 4,
    collect_stats: bool = False,
    engine: str = "classic",
) -> Dict[str, List[UnitResult]]:
    """Run every algorithm on every instance, possibly across processes.

    Parameters
    ----------
    algorithms:
        Registry names.
    instances:
        Instance batch (materialised; shared across algorithms).
    processes:
        Worker count; ``None`` = ``os.cpu_count()``, ``0`` = run serially
        in-process.
    algorithm_kwargs:
        Optional per-algorithm constructor kwargs.
    chunksize:
        Futures map chunk size (coarser = less IPC overhead).
    collect_stats:
        When ``True``, every worker instruments its run and ships the
        per-run :class:`~repro.observability.stats.RunStats` back on
        ``UnitResult.stats``; aggregate across workers with
        :func:`aggregate_sweep_stats`.  The deterministic counters of
        the aggregate are identical for any ``processes`` value.
    engine:
        ``"classic"`` (default) or ``"fast"``.  Fast mode routes every
        unit through :class:`~repro.simulation.fastpath.FastEngine` and
        switches to chunked dispatch (:func:`simulate_chunk`): payloads
        are pre-grouped into explicit chunks so the much shorter fast
        units still amortise the per-task IPC cost.  Results are
        bit-identical to the classic sweep for every ``engine`` and
        ``processes`` combination.

    Returns
    -------
    dict
        ``{algorithm: [UnitResult, ...]}`` with results ordered by
        instance index — identical output for any ``processes`` value.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    lbs = [height_lower_bound(inst) for inst in instances]
    inst_dicts = [inst.to_dict() for inst in instances]
    payloads = [
        (
            name,
            dict(algorithm_kwargs.get(name, {})),
            i,
            inst_dicts[i],
            lbs[i],
            collect_stats,
            engine,
        )
        for name in algorithms
        for i in range(len(instances))
    ]

    if processes == 0:
        results = [simulate_unit(p) for p in payloads]
    else:
        workers = processes or os.cpu_count() or 1
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if engine == "fast":
                step = max(int(chunksize), 1)
                chunks = [payloads[i : i + step] for i in range(0, len(payloads), step)]
                results = [unit for batch in pool.map(simulate_chunk, chunks) for unit in batch]
            else:
                results = list(pool.map(simulate_unit, payloads, chunksize=chunksize))

    out: Dict[str, List[UnitResult]] = {name: [] for name in algorithms}
    for res in results:
        out[res.algorithm].append(res)
    for name in algorithms:
        out[name].sort(key=lambda r: r.instance_index)
    return out


def aggregate_sweep_stats(
    results: Mapping[str, Sequence[UnitResult]]
) -> Dict[str, RunStats]:
    """Combine per-worker run stats into one record per algorithm.

    ``results`` is the mapping :func:`parallel_sweep` returns (run with
    ``collect_stats=True``).  Counters sum across instances, peaks take
    the max — see :meth:`~repro.observability.stats.RunStats.aggregate`.
    Units that carried no stats are skipped; an algorithm with no stats
    at all aggregates to an empty record.
    """
    return {
        name: RunStats.aggregate(u.stats for u in units if u.stats is not None)
        for name, units in results.items()
    }
