"""Parallel batch execution for sweeps.

The Figure 4 full-scale study is 18 cells × 7 algorithms × 1000
instances — embarrassingly parallel across instances.  This module runs
(algorithm, instance) work units across processes with
``concurrent.futures.ProcessPoolExecutor``, following the mpi4py/HPC
guidance of keeping the unit of work coarse (one full simulation, not
one event) so serialisation overhead stays negligible.

Work units are shipped as ``(algorithm_name, algorithm_kwargs,
instance_dict)`` — plain picklable payloads; results come back as
``(cost, num_bins, ratio)`` triples so large packings never cross the
process boundary.  A ``processes=None`` default uses ``os.cpu_count()``;
``processes=0`` short-circuits to the serial path (useful under pytest
and on platforms where fork semantics are awkward).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..algorithms.registry import make_algorithm
from ..core.instance import Instance
from ..optimum.lower_bounds import height_lower_bound
from .runner import run

__all__ = ["UnitResult", "simulate_unit", "parallel_sweep"]


@dataclass(frozen=True)
class UnitResult:
    """Result of one (algorithm, instance) work unit."""

    algorithm: str
    instance_index: int
    cost: float
    num_bins: int
    lower_bound: float

    @property
    def ratio(self) -> float:
        """Performance ratio vs the Lemma 1(i) bound."""
        return self.cost / self.lower_bound


def simulate_unit(
    payload: Tuple[str, Mapping[str, object], int, dict, float]
) -> UnitResult:
    """Worker entry point: simulate one algorithm on one instance.

    ``payload`` is ``(name, kwargs, index, instance_dict, lower_bound)``.
    Module-level (picklable) by design so it works with the spawn start
    method.
    """
    name, kwargs, index, inst_dict, lb = payload
    instance = Instance.from_dict(inst_dict)
    packing = run(make_algorithm(name, **dict(kwargs)), instance)
    return UnitResult(
        algorithm=name,
        instance_index=index,
        cost=packing.cost,
        num_bins=packing.num_bins,
        lower_bound=lb,
    )


def parallel_sweep(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    processes: Optional[int] = None,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    chunksize: int = 4,
) -> Dict[str, List[UnitResult]]:
    """Run every algorithm on every instance, possibly across processes.

    Parameters
    ----------
    algorithms:
        Registry names.
    instances:
        Instance batch (materialised; shared across algorithms).
    processes:
        Worker count; ``None`` = ``os.cpu_count()``, ``0`` = run serially
        in-process.
    algorithm_kwargs:
        Optional per-algorithm constructor kwargs.
    chunksize:
        Futures map chunk size (coarser = less IPC overhead).

    Returns
    -------
    dict
        ``{algorithm: [UnitResult, ...]}`` with results ordered by
        instance index — identical output for any ``processes`` value.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    lbs = [height_lower_bound(inst) for inst in instances]
    inst_dicts = [inst.to_dict() for inst in instances]
    payloads = [
        (name, dict(algorithm_kwargs.get(name, {})), i, inst_dicts[i], lbs[i])
        for name in algorithms
        for i in range(len(instances))
    ]

    if processes == 0:
        results = [simulate_unit(p) for p in payloads]
    else:
        workers = processes or os.cpu_count() or 1
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(simulate_unit, payloads, chunksize=chunksize))

    out: Dict[str, List[UnitResult]] = {name: [] for name in algorithms}
    for res in results:
        out[res.algorithm].append(res)
    for name in algorithms:
        out[name].sort(key=lambda r: r.instance_index)
    return out
