"""Parallel batch execution for sweeps.

The Figure 4 full-scale study is 18 cells × 7 algorithms × 1000
instances — embarrassingly parallel across instances.  This module runs
(algorithm, instance) work units across processes with
``concurrent.futures.ProcessPoolExecutor``, following the mpi4py/HPC
guidance of keeping the unit of work coarse (one full simulation, not
one event) so serialisation overhead stays negligible.

Work units are shipped as ``(algorithm_name, algorithm_kwargs,
instance_dict)`` — plain picklable payloads; results come back as
``(cost, num_bins, ratio)`` triples so large packings never cross the
process boundary.  A ``processes=None`` default uses ``os.cpu_count()``;
``processes=0`` short-circuits to the serial path (useful under pytest
and on platforms where fork semantics are awkward).
"""

from __future__ import annotations

import inspect
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.registry import ALGORITHM_FACTORIES, make_algorithm
from ..core.instance import Instance
from ..observability.stats import RunStats, StatsCollector
from ..optimum.lower_bounds import height_lower_bound
from .runner import run

__all__ = [
    "UnitResult",
    "BATCH_UNIT",
    "algorithm_accepts_seed",
    "derive_unit_seeds",
    "build_payloads",
    "build_batch_payloads",
    "unit_key",
    "payload_unit_keys",
    "simulate_unit",
    "simulate_chunk",
    "simulate_batch_unit",
    "simulate_batch_chunk",
    "simulate_payload",
    "parallel_sweep",
    "aggregate_sweep_stats",
]

#: Marker in the algorithm slot of a *batched* payload: one such payload
#: carries every (algorithm, kwargs) entry for one instance, so the whole
#: 7-policy fan-out of an instance lands on a single worker.
BATCH_UNIT = "__batch__"


@dataclass(frozen=True)
class UnitResult:
    """Result of one (algorithm, instance) work unit.

    ``stats`` is populated (with the worker-side
    :class:`~repro.observability.stats.RunStats`) only when the sweep
    ran with ``collect_stats=True``; it rides back across the process
    boundary as a small frozen record, never the full packing.
    """

    algorithm: str
    instance_index: int
    cost: float
    num_bins: int
    lower_bound: float
    stats: Optional[RunStats] = None

    @property
    def ratio(self) -> float:
        """Performance ratio vs the Lemma 1(i) bound.

        A degenerate instance (no load at all) has ``lower_bound == 0``;
        the documented sentinel for that case is ``float("inf")`` — any
        positive cost is infinitely worse than a zero bound — except for
        the doubly-degenerate zero-cost case, which reports the neutral
        ratio ``1.0`` instead of raising ``ZeroDivisionError``.
        """
        if self.lower_bound <= 0:
            return math.inf if self.cost > 0 else 1.0
        return self.cost / self.lower_bound


def algorithm_accepts_seed(name: str) -> bool:
    """Whether the registry factory for ``name`` takes a ``seed`` kwarg.

    Seeded policies (``random_fit``) get *per-unit* seeds in sweeps —
    see :func:`derive_unit_seeds`; unseeded policies are passed their
    kwargs unchanged.
    """
    try:
        sig = inspect.signature(ALGORITHM_FACTORIES[name])
    except (KeyError, TypeError, ValueError):
        return False
    return "seed" in sig.parameters


def derive_unit_seeds(base_seed: int, count: int) -> List[int]:
    """Spawn ``count`` independent per-instance seeds from one base seed.

    Uses ``numpy.random.SeedSequence(base_seed).spawn(count)`` — the
    recommended NumPy practice for parallel statistics — so the streams
    are collision-free and independent.  Sweeps use these to seed one
    stream *per (algorithm, instance) unit*: passing the same base seed
    to every instance would make the m "independent" trials of a cell
    share a single random stream (the pre-fix behaviour), which
    understates the variance the experiment is supposed to measure.

    The derivation is a pure function of ``(base_seed, count)``, so it
    is identical across the serial, process-pool, and resumed sweep
    paths — a prerequisite for the bit-identity oracles.
    """
    ss = np.random.SeedSequence(int(base_seed))
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) for child in ss.spawn(count)
    ]


def build_payloads(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    collect_stats: bool = False,
    engine: str = "classic",
) -> List[tuple]:
    """Build the full (algorithm × instance) work-unit payload list.

    One payload per unit, in ``for name … for i …`` order — the shared
    construction used by :func:`parallel_sweep` and the checkpointed
    :func:`repro.orchestration.resumable_sweep`, so both paths simulate
    exactly the same units.  Lower bounds are computed once per instance
    and shared across algorithms; seeded algorithms get per-unit seeds
    derived from their base ``seed`` kwarg (default 0) via
    :func:`derive_unit_seeds`.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    lbs = [height_lower_bound(inst) for inst in instances]
    inst_dicts = [inst.to_dict() for inst in instances]
    unit_seeds = {
        name: derive_unit_seeds(
            int(algorithm_kwargs.get(name, {}).get("seed", 0)), len(instances)
        )
        for name in algorithms
        if algorithm_accepts_seed(name)
    }
    payloads: List[tuple] = []
    for name in algorithms:
        base_kwargs = dict(algorithm_kwargs.get(name, {}))
        for i in range(len(instances)):
            kwargs = dict(base_kwargs)
            if name in unit_seeds:
                kwargs["seed"] = unit_seeds[name][i]
            payloads.append(
                (name, kwargs, i, inst_dicts[i], lbs[i], collect_stats, engine)
            )
    return payloads


def _materialize_sources(sources: Sequence) -> List[Instance]:
    """Resolve a mixed Instance/InstanceSpec sequence to instances.

    Lets every sweep engine accept the compact
    :class:`~repro.simulation.batch.InstanceSpec` sources the batch
    engine dispatches on; specs resolve through the in-worker LRU cache.
    """
    from .batch import InstanceSpec, materialize

    return [
        materialize(src) if isinstance(src, InstanceSpec) else src for src in sources
    ]


def _source_payload(source) -> dict:
    """Picklable payload form of a batch-unit source (spec or instance)."""
    from .batch import InstanceSpec

    if isinstance(source, InstanceSpec):
        return source.to_dict()
    return {"kind": "instance", "data": source.to_dict()}


def _resolve_source(payload_source: dict):
    """Inverse of :func:`_source_payload`; specs stay lazy (LRU-cached)."""
    from .batch import InstanceSpec

    if payload_source.get("kind") == "instance-spec":
        return InstanceSpec.from_dict(payload_source)
    return Instance.from_dict(payload_source["data"])


def build_batch_payloads(
    algorithms: Sequence[str],
    sources: Sequence,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    collect_stats: bool = False,
) -> List[tuple]:
    """Build one *batched* payload per instance (all algorithms grouped).

    The ``engine="batch"`` twin of :func:`build_payloads`: instead of one
    payload per (algorithm, instance) unit, each payload carries every
    algorithm entry for one instance, so a worker amortises instance
    materialisation, the event index, the Lemma 1 lower bound, and the
    fast engine's scratch buffers across the whole policy fan-out.
    Sources may be :class:`~repro.core.instance.Instance` objects or
    compact :class:`~repro.simulation.batch.InstanceSpec` recipes — specs
    ship as a few hundred bytes and regenerate in-worker.

    Per-unit seeds for seeded algorithms are derived exactly as in
    :func:`build_payloads` (same :func:`derive_unit_seeds` streams), so
    batched sweeps are bit-identical to per-unit dispatch.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    count = len(sources)
    unit_seeds = {
        name: derive_unit_seeds(
            int(algorithm_kwargs.get(name, {}).get("seed", 0)), count
        )
        for name in algorithms
        if algorithm_accepts_seed(name)
    }
    payloads: List[tuple] = []
    for i, source in enumerate(sources):
        entries = []
        for name in algorithms:
            kwargs = dict(algorithm_kwargs.get(name, {}))
            if name in unit_seeds:
                kwargs["seed"] = unit_seeds[name][i]
            entries.append((name, kwargs))
        payloads.append(
            (BATCH_UNIT, tuple(entries), i, _source_payload(source), None,
             collect_stats, "batch")
        )
    return payloads


def unit_key(payload: tuple) -> Tuple[str, int]:
    """The ``(algorithm, instance_index)`` identity of one payload.

    This is the key the checkpoint store indexes completed work by.  For
    a batched payload this is ``(BATCH_UNIT, index)`` — use
    :func:`payload_unit_keys` for the per-unit keys it expands to.
    """
    return payload[0], payload[2]


def payload_unit_keys(payload: tuple) -> List[Tuple[str, int]]:
    """All ``(algorithm, instance_index)`` unit keys a payload completes.

    A per-unit payload maps to exactly its :func:`unit_key`; a batched
    payload expands to one key per carried algorithm entry.  Checkpoint
    stores always index *units*, so resuming a batch-engine sweep from a
    classic checkpoint (or vice versa) skips the same completed work.
    """
    if payload[0] == BATCH_UNIT:
        return [(name, payload[2]) for name, _ in payload[1]]
    return [unit_key(payload)]


def simulate_unit(
    payload: Tuple[str, Mapping[str, object], int, dict, float]
) -> UnitResult:
    """Worker entry point: simulate one algorithm on one instance.

    ``payload`` is ``(name, kwargs, index, instance_dict, lower_bound)``
    with an optional sixth ``collect_stats`` flag and an optional seventh
    ``engine`` name (``"classic"``/``"fast"``; older five- and
    six-element payloads remain valid).  Module-level (picklable) by
    design so it works with the spawn start method.
    """
    name, kwargs, index, inst_dict, lb, *rest = payload
    collect_stats = bool(rest[0]) if rest else False
    engine = str(rest[1]) if len(rest) > 1 else "classic"
    instance = Instance.from_dict(inst_dict)
    collector = StatsCollector() if collect_stats else None
    packing = run(
        make_algorithm(name, **dict(kwargs)), instance, collector=collector, engine=engine
    )
    return UnitResult(
        algorithm=name,
        instance_index=index,
        cost=packing.cost,
        num_bins=packing.num_bins,
        lower_bound=lb,
        stats=collector.snapshot() if collector is not None else None,
    )


def simulate_chunk(payloads: Sequence[tuple]) -> List[UnitResult]:
    """Worker entry point for the fast engine's chunked dispatch.

    A fast-engine unit finishes several times sooner than a classic one,
    so per-unit futures would push the IPC share of the wall time up;
    shipping an explicit list of payloads per task keeps the unit of
    work as coarse as in the classic sweep.  Semantically identical to
    ``[simulate_unit(p) for p in payloads]``.
    """
    return [simulate_unit(p) for p in payloads]


def simulate_batch_unit(payload: tuple) -> List[UnitResult]:
    """Worker entry point: one instance under all its algorithm entries.

    ``payload`` is ``(BATCH_UNIT, entries, index, source, None,
    collect_stats, "batch")`` from :func:`build_batch_payloads`.  Runs a
    :class:`~repro.simulation.batch.BatchRunner` over the entries —
    shared replay context, scratch buffers, and lower bound — and
    returns one :class:`UnitResult` per entry, bit-identical to per-unit
    dispatch of the same units.
    """
    from .batch import BatchRunner

    _marker, entries, index, source, _lb, *rest = payload
    collect_stats = bool(rest[0]) if rest else False
    runner = BatchRunner(_resolve_source(source))
    return runner.run_units(entries, instance_index=index, collect_stats=collect_stats)


def simulate_batch_chunk(payloads: Sequence[tuple]) -> List[UnitResult]:
    """Chunked-dispatch twin of :func:`simulate_batch_unit` (flattened)."""
    return [unit for p in payloads for unit in simulate_batch_unit(p)]


def simulate_payload(payload: tuple):
    """Dispatch a payload to its engine-appropriate worker function.

    Returns a single :class:`UnitResult` for per-unit payloads and a
    list of them for batched payloads — callers that must count
    completed units should normalise with ``isinstance(result, list)``.
    """
    if payload[0] == BATCH_UNIT:
        return simulate_batch_unit(payload)
    return simulate_unit(payload)


def parallel_sweep(
    algorithms: Sequence[str],
    instances: Sequence[Instance],
    processes: Optional[int] = None,
    algorithm_kwargs: Optional[Mapping[str, Mapping[str, object]]] = None,
    chunksize: int = 4,
    collect_stats: bool = False,
    engine: str = "classic",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 0,
    unit_timeout: Optional[float] = None,
) -> Dict[str, List[UnitResult]]:
    """Run every algorithm on every instance, possibly across processes.

    Parameters
    ----------
    algorithms:
        Registry names.
    instances:
        Instance batch (materialised; shared across algorithms).
    processes:
        Worker count; ``None`` = ``os.cpu_count()``, ``0`` = run serially
        in-process.
    algorithm_kwargs:
        Optional per-algorithm constructor kwargs.  A ``seed`` kwarg is
        treated as the *base* seed: each (algorithm, instance) unit gets
        its own seed derived via :func:`derive_unit_seeds`, so the m
        trials of a cell are genuinely independent.
    chunksize:
        Futures map chunk size (coarser = less IPC overhead).
    collect_stats:
        When ``True``, every worker instruments its run and ships the
        per-run :class:`~repro.observability.stats.RunStats` back on
        ``UnitResult.stats``; aggregate across workers with
        :func:`aggregate_sweep_stats`.  The deterministic counters of
        the aggregate are identical for any ``processes`` value.
    engine:
        ``"classic"`` (default), ``"fast"``, or ``"batch"``.  Fast mode
        routes every unit through
        :class:`~repro.simulation.fastpath.FastEngine` and switches to
        chunked dispatch (:func:`simulate_chunk`): payloads are
        pre-grouped into explicit chunks so the much shorter fast units
        still amortise the per-task IPC cost.  Batch mode goes further:
        one payload per *instance* carries the whole algorithm fan-out
        (:func:`build_batch_payloads`), executed by a
        :class:`~repro.simulation.batch.BatchRunner` that shares the
        event index, scratch buffers, and Lemma 1 bound across all
        policies — and ``instances`` may then be compact
        :class:`~repro.simulation.batch.InstanceSpec` sources that
        regenerate in-worker through an LRU cache instead of pickling
        full instances.  Results are bit-identical to the classic sweep
        for every ``engine`` and ``processes`` combination.  Unit-level
        dispatch also accepts the other engine spec strings understood
        by :func:`~repro.simulation.runner.run` — ``"streaming"``, and
        ``"repacking[:policy[:budget]]"`` (e.g.
        ``"repacking:greedy_consolidate:2"``) for migration-budget
        recourse sweeps; at budget 0 repacking results are bit-identical
        to the classic sweep as well.
    checkpoint_dir / resume / retries / unit_timeout:
        Fault-tolerance knobs.  Leaving them at their defaults keeps the
        original in-memory executor below; setting any of them routes
        the sweep through :func:`repro.orchestration.resumable_sweep`,
        which persists completed units to crash-safe JSONL shards under
        ``checkpoint_dir``, skips already-completed units on
        ``resume=True``, retries faulted units up to ``retries`` times
        with exponential backoff, and recycles the pool when a unit
        exceeds ``unit_timeout`` seconds.  Results are bit-identical to
        the in-memory path.

    Returns
    -------
    dict
        ``{algorithm: [UnitResult, ...]}`` with results ordered by
        instance index — identical output for any ``processes`` value.
    """
    if checkpoint_dir is not None or resume or retries or unit_timeout is not None:
        from ..orchestration import resumable_sweep

        return resumable_sweep(
            algorithms,
            instances,
            processes=processes,
            algorithm_kwargs=algorithm_kwargs,
            collect_stats=collect_stats,
            engine=engine,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            retries=retries,
            unit_timeout=unit_timeout,
        )

    if engine == "batch":
        payloads = build_batch_payloads(
            algorithms, list(instances), algorithm_kwargs, collect_stats
        )
        if processes == 0:
            results = [unit for p in payloads for unit in simulate_batch_unit(p)]
        else:
            workers = processes or os.cpu_count() or 1
            # A batched payload is already |algorithms| units of work, so
            # chunks are proportionally shorter than the fast engine's.
            step = max(int(chunksize) // max(len(algorithms), 1), 1)
            chunks = [payloads[i : i + step] for i in range(0, len(payloads), step)]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = [
                    unit for batch in pool.map(simulate_batch_chunk, chunks) for unit in batch
                ]
        out_batch: Dict[str, List[UnitResult]] = {name: [] for name in algorithms}
        for res in results:
            out_batch[res.algorithm].append(res)
        for name in algorithms:
            out_batch[name].sort(key=lambda r: r.instance_index)
        return out_batch

    payloads = build_payloads(
        algorithms, _materialize_sources(instances), algorithm_kwargs,
        collect_stats, engine
    )

    if processes == 0:
        results = [simulate_unit(p) for p in payloads]
    else:
        workers = processes or os.cpu_count() or 1
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if engine == "fast":
                step = max(int(chunksize), 1)
                chunks = [payloads[i : i + step] for i in range(0, len(payloads), step)]
                results = [unit for batch in pool.map(simulate_chunk, chunks) for unit in batch]
            else:
                results = list(pool.map(simulate_unit, payloads, chunksize=chunksize))

    out: Dict[str, List[UnitResult]] = {name: [] for name in algorithms}
    for res in results:
        out[res.algorithm].append(res)
    for name in algorithms:
        out[name].sort(key=lambda r: r.instance_index)
    return out


def aggregate_sweep_stats(
    results: Mapping[str, Sequence[UnitResult]]
) -> Dict[str, RunStats]:
    """Combine per-worker run stats into one record per algorithm.

    ``results`` is the mapping :func:`parallel_sweep` returns (run with
    ``collect_stats=True``).  Counters sum across instances, peaks take
    the max — see :meth:`~repro.observability.stats.RunStats.aggregate`.
    Units that carried no stats are skipped; an algorithm with no stats
    at all aggregates to an empty record.
    """
    return {
        name: RunStats.aggregate(u.stats for u in units if u.stats is not None)
        for name, units in results.items()
    }
