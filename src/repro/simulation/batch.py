"""Batched sweep execution: one instance, N policies x M trials, one pass.

The Section 7 evaluation replays every generated instance under all seven
Any Fit policies (Table 2) and under many seeded ``random_fit`` trials
(Figure 4).  Dispatching those as independent units — the ``engine="fast"``
sweep path — repeats a large amount of policy-independent work per unit:
unpickling or regenerating the instance, stacking the size matrix,
lexsorting the event index, computing the Lemma 1 lower bound, and
materialising a :class:`~repro.core.packing.Packing` whose only consumed
outputs are the Eq. 1 cost and the bin count.  At Table 2 scale that
shared work dominates the actual replay.

This module amortises it at two levels:

* :class:`BatchRunner` — executes one instance under many policies/seeds
  in a single pass.  The :class:`~repro.simulation.fastpath.ReplayContext`
  (flat event-index array, size matrix, capacity slack), the fast
  engine's residual-matrix scratch buffers (via
  :meth:`~repro.simulation.fastpath.FastEngine.reset`), and the Lemma 1
  lower bound are each built **once per instance** and shared across all
  replays; ``random_fit`` trials go through one batched kernel invocation
  (:meth:`~repro.simulation.fastpath.FastEngine.run_trials`).  Aggregates
  are bit-identical to serial classic/fastpath runs — enforced by the
  ``compare_with_batch`` oracle in :mod:`repro.verify.oracles`.

* :class:`InstanceSpec` — a compact run spec (generator name + scalar
  params + SeedSequence entropy/spawn-key) that sweep dispatch ships to
  workers *instead of a pickled instance*.  Workers regenerate the
  instance locally through a small LRU cache keyed by the spec, so the
  7-policy fan-out over one instance generates it exactly once per
  worker; because ``parallel_sweep(engine="batch")`` ships one payload
  per instance (all policies grouped), the cache hit is guaranteed by
  construction.

Cost fidelity
-------------
:meth:`BatchRunner.run_units` skips :class:`~repro.core.packing.Packing`
construction on the fast path and recomputes its exact cost arithmetic
from the raw assignment: per bin, ``usage_time = max departure - min
arrival`` over members, summed left-to-right in bin-index (= opening)
order — the identical IEEE-754 operations
:meth:`Packing.from_assignment <repro.core.packing.Packing.from_assignment>`
performs, so costs match bit for bit, not just within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..algorithms.registry import make_algorithm
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.packing import Packing
from ..observability.stats import StatsCollector
from ..optimum.lower_bounds import height_lower_bound
from ..workloads.base import WorkloadGenerator
from ..workloads.uniform import UniformWorkload
from .fastpath import FastEngine, ReplayContext, choose_backend, fast_policy_for

__all__ = [
    "InstanceSpec",
    "register_spec_generator",
    "spec_batch",
    "materialize",
    "instance_cache_info",
    "clear_instance_cache",
    "BatchRunner",
    "batch_run_many",
]

BatchSource = Union[Instance, "InstanceSpec"]

# ----------------------------------------------------------------------
# run specs: (generator, params, seed) in place of a pickled Instance
# ----------------------------------------------------------------------

#: Named generator factories a spec may reference.  A factory must
#: rebuild the generator *faithfully* from its ``describe()`` dict —
#: i.e. every decision-relevant parameter is a scalar ``describe()``
#: exposes.  The stock registration covers :class:`UniformWorkload`
#: (the Section 7 workload); generators with non-scalar configuration
#: (e.g. Poisson's sampler objects) must not be registered unless
#: wrapped so their full configuration round-trips.
_SPEC_GENERATORS: Dict[str, Callable[..., WorkloadGenerator]] = {}


def register_spec_generator(name: str, factory: Callable[..., WorkloadGenerator]) -> None:
    """Register a generator factory for :class:`InstanceSpec` resolution."""
    _SPEC_GENERATORS[name] = factory


register_spec_generator("uniform", UniformWorkload)


def _generator_name(generator: WorkloadGenerator) -> str:
    for name, factory in _SPEC_GENERATORS.items():
        if type(generator) is factory:
            return name
    raise ConfigurationError(
        f"{type(generator).__name__} has no registered spec factory; "
        "register one with register_spec_generator() (its describe() dict "
        "must rebuild it faithfully)"
    )


@dataclass(frozen=True)
class InstanceSpec:
    """A compact, hashable recipe for regenerating one instance in-worker.

    Ships over the pool boundary instead of a pickled
    :class:`~repro.core.instance.Instance`: a registered generator name,
    its scalar parameters, and the exact ``numpy`` SeedSequence identity
    (``entropy`` + ``spawn_key``) of the stream the instance was drawn
    from.  ``SeedSequence(entropy, spawn_key=K).spawn(i)`` children are
    themselves ``SeedSequence(entropy, spawn_key=K + (i,))``, so specs
    compose with :func:`repro.workloads.base.generate_batch` exactly —
    :func:`spec_batch` returns specs that materialise to the identical
    instances, bit for bit.

    Being frozen and hashable, a spec doubles as the key of the
    in-worker LRU instance cache (:func:`materialize`).
    """

    generator: str
    params: Tuple[Tuple[str, object], ...]
    entropy: Union[int, Tuple[int, ...]]
    spawn_key: Tuple[int, ...] = ()

    @classmethod
    def from_generator(
        cls,
        generator: WorkloadGenerator,
        seed: Union[int, np.random.SeedSequence],
    ) -> "InstanceSpec":
        """Spec for ``generator.sample(default_rng(seed))``.

        ``seed`` may be an int or a SeedSequence (e.g. one spawned by an
        experiment driver).  Sequences without explicit entropy (OS
        entropy) are rejected — they cannot be reproduced in a worker.
        """
        name = _generator_name(generator)
        params = generator.describe()
        rebuilt = _SPEC_GENERATORS[name](**params)
        if rebuilt.describe() != params:
            raise ConfigurationError(
                f"generator {name!r} does not round-trip through describe(); "
                "it cannot be shipped as a spec"
            )
        if isinstance(seed, np.random.SeedSequence):
            ss = seed
        else:
            ss = np.random.SeedSequence(int(seed))
        if ss.entropy is None:
            raise ConfigurationError(
                "InstanceSpec needs a SeedSequence with explicit entropy; "
                "OS-entropy streams are not reproducible in workers"
            )
        entropy = ss.entropy
        if isinstance(entropy, (int, np.integer)):
            entropy_key: Union[int, Tuple[int, ...]] = int(entropy)
        else:
            entropy_key = tuple(int(e) for e in entropy)
        return cls(
            generator=name,
            params=tuple(sorted(params.items())),
            entropy=entropy_key,
            spawn_key=tuple(int(k) for k in ss.spawn_key),
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """The exact SeedSequence this spec pins."""
        entropy = self.entropy if isinstance(self.entropy, int) else list(self.entropy)
        return np.random.SeedSequence(entropy=entropy, spawn_key=self.spawn_key)

    def materialize(self) -> Instance:
        """Regenerate the instance (through the module LRU cache)."""
        return materialize(self)

    # -- serialisation (payload/fingerprint form) -----------------------
    def to_dict(self) -> dict:
        """Plain-dict form suitable for ``json.dump`` and pool payloads."""
        return {
            "kind": "instance-spec",
            "generator": self.generator,
            "params": {k: (list(v) if isinstance(v, tuple) else v) for k, v in self.params},
            "entropy": list(self.entropy) if isinstance(self.entropy, tuple) else self.entropy,
            "spawn_key": list(self.spawn_key),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InstanceSpec":
        """Inverse of :meth:`to_dict`."""
        params = {
            k: (tuple(v) if isinstance(v, list) else v)
            for k, v in payload["params"].items()
        }
        entropy = payload["entropy"]
        return cls(
            generator=payload["generator"],
            params=tuple(sorted(params.items())),
            entropy=tuple(int(e) for e in entropy) if isinstance(entropy, list) else int(entropy),
            spawn_key=tuple(int(k) for k in payload["spawn_key"]),
        )


def spec_batch(
    generator: WorkloadGenerator,
    count: int,
    seed: Union[int, np.random.SeedSequence] = 0,
) -> List[InstanceSpec]:
    """Spec twins of ``generate_batch(generator, count, seed)``.

    ``[s.materialize() for s in spec_batch(g, m, seed)]`` equals
    ``generate_batch(g, m, seed)`` item for item, bit for bit.
    """
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "spec_batch needs an int or SeedSequence seed; a Generator's "
            "state cannot be shipped to workers reproducibly"
        )
    else:
        ss = np.random.SeedSequence(seed)
    return [InstanceSpec.from_generator(generator, child) for child in ss.spawn(count)]


@lru_cache(maxsize=8)
def _materialize_cached(spec: InstanceSpec) -> Instance:
    gen = _SPEC_GENERATORS[spec.generator](**dict(spec.params))
    return gen.sample(np.random.default_rng(spec.seed_sequence()))


def materialize(spec: InstanceSpec) -> Instance:
    """Regenerate ``spec``'s instance via the in-worker LRU cache.

    The cache is keyed by the (hashable) spec itself — generator name,
    params, entropy, spawn key.  Capacity 8 is deliberately small: the
    batch dispatch groups all same-instance units into one payload, so a
    worker revisits a spec only across immediately adjacent payload
    boundaries (e.g. a partially resumed instance).
    """
    if spec.generator not in _SPEC_GENERATORS:
        raise ConfigurationError(
            f"unknown spec generator {spec.generator!r}; register it with "
            "register_spec_generator() in the worker process too"
        )
    return _materialize_cached(spec)


def instance_cache_info():
    """``functools.lru_cache`` statistics of the in-worker instance cache."""
    return _materialize_cached.cache_info()


def clear_instance_cache() -> None:
    """Drop all cached instances (tests and cold-cache benchmarks)."""
    _materialize_cached.cache_clear()


# ----------------------------------------------------------------------
# the batched runner
# ----------------------------------------------------------------------
class BatchRunner:
    """Executes one instance under N policies x M trials in a single pass.

    Shared, built once per instance on first use and reused by every
    subsequent replay:

    * the instance itself (materialised through the LRU cache when the
      source is an :class:`InstanceSpec`),
    * the Lemma 1(i) :func:`height lower bound
      <repro.optimum.lower_bounds.height_lower_bound>`,
    * the :class:`~repro.simulation.fastpath.ReplayContext` (event index,
      size matrix, slack),
    * one re-armed :class:`~repro.simulation.fastpath.FastEngine` whose
      residual-matrix scratch buffers persist across
      :meth:`~repro.simulation.fastpath.FastEngine.reset` calls.

    Policies that are not fast-eligible (exotic kwargs, unregistered
    subclasses) fall back to a classic engine run per unit — still
    amortising the instance materialisation and the lower bound.

    Parameters
    ----------
    source:
        An :class:`~repro.core.instance.Instance` or an
        :class:`InstanceSpec` to materialise lazily.
    backend:
        Fastpath backend override; default is the per-instance
        :func:`~repro.simulation.fastpath.choose_backend` heuristic.
    trials_backend:
        Backend override for :meth:`run_trials` only (the
        :envvar:`REPRO_TRIALS_BACKEND` environment variable is its
        process-wide twin, consulted by
        :func:`~repro.simulation.fastpath.choose_trials_backend`);
        default auto-selects per call.
    """

    __slots__ = (
        "source", "backend", "trials_backend",
        "_instance", "_lb", "_ctx", "_engine", "_vec_engine",
    )

    def __init__(
        self,
        source: BatchSource,
        backend: Optional[str] = None,
        trials_backend: Optional[str] = None,
    ) -> None:
        self.source = source
        self.backend = backend
        self.trials_backend = trials_backend
        self._instance: Optional[Instance] = source if isinstance(source, Instance) else None
        self._lb: Optional[float] = None
        self._ctx: Optional[ReplayContext] = None
        self._engine: Optional[FastEngine] = None
        self._vec_engine: Optional[FastEngine] = None

    @property
    def instance(self) -> Instance:
        """The materialised instance (lazy for spec sources)."""
        inst = self._instance
        if inst is None:
            inst = self._instance = materialize(self.source)
        return inst

    @property
    def lower_bound(self) -> float:
        """Lemma 1 lower bound, computed exactly once per instance."""
        lb = self._lb
        if lb is None:
            lb = self._lb = height_lower_bound(self.instance)
        return lb

    # ------------------------------------------------------------------
    def _fast_engine(self, policy: str, seed: int, collector) -> FastEngine:
        ctx = self._ctx
        if ctx is None:
            backend = self.backend if self.backend is not None else choose_backend(self.instance)
            ctx = self._ctx = ReplayContext(self.instance, backend)
        if self._engine is None:
            self._engine = FastEngine(
                ctx.instance, policy, seed=seed, collector=collector,
                backend=ctx.backend, context=ctx,
            )
        else:
            self._engine.reset(policy=policy, seed=seed, collector=collector, context=ctx)
        return self._engine

    def _cost_and_bins(self, assignment: Dict[int, int]) -> Tuple[float, int]:
        # Bit-identical twin of Packing.from_assignment + Packing.cost:
        # per bin the usage hull is (min arrival, max departure) over
        # members — order-independent for min/max — and the total is a
        # left-to-right Python float sum in bin-index order (bin ids are
        # assigned 0..k-1 in opening order, so sorted id order is the
        # Packing's bins order).
        opened: Dict[int, float] = {}
        closed: Dict[int, float] = {}
        for it in self.instance.items:
            b = assignment[it.uid]
            if b in opened:
                if it.arrival < opened[b]:
                    opened[b] = it.arrival
                if it.departure > closed[b]:
                    closed[b] = it.departure
            else:
                opened[b] = it.arrival
                closed[b] = it.departure
        cost = sum(closed[b] - opened[b] for b in sorted(opened))
        return cost, len(opened)

    # ------------------------------------------------------------------
    def run_units(
        self,
        entries: Sequence[Tuple[str, Optional[dict]]],
        instance_index: int = 0,
        collect_stats: bool = False,
        keep_assignments: bool = False,
    ):
        """Run ``(algorithm, kwargs)`` entries; return sweep unit results.

        Each entry yields one
        :class:`~repro.simulation.parallel.UnitResult` carrying the same
        aggregates (cost, bin count, shared lower bound) a per-unit
        dispatch would produce, bit for bit.  With
        ``keep_assignments=True`` returns ``(results, assignments)`` so
        oracles can check the full item → bin map too.

        An entry's kwargs may carry the reserved ``"_repack"`` key —
        ``{"policy": name, "budget": k}`` — which routes that entry
        through the migration-budget :mod:`repro.repacking` engine (the
        remaining kwargs still build the dispatch algorithm).  This is
        how the repacking bench frontier amortises one instance across
        a (policy x repacker x budget) grid.
        """
        from .parallel import UnitResult  # local: parallel imports stay one-way

        results: List["UnitResult"] = []
        assignments: List[Dict[int, int]] = []
        for name, kwargs in entries:
            kwargs = dict(kwargs or {})
            repack = kwargs.pop("_repack", None)
            collector = StatsCollector() if collect_stats else None
            algo = make_algorithm(name, **kwargs)
            if repack is not None:
                from ..repacking import repacking_run

                result = repacking_run(
                    algo, self.instance,
                    repacker=repack.get("policy", "no_repack"),
                    budget=repack.get("budget"),
                    collector=collector,
                )
                assignment = dict(result.packing.assignment)
                cost, num_bins = result.cost, result.num_bins
            elif (resolved := fast_policy_for(algo)) is not None:
                policy, seed = resolved
                engine = self._fast_engine(policy, seed, collector)
                assignment = engine.run_assignment()
                cost, num_bins = self._cost_and_bins(assignment)
            else:
                from .engine import _note_fallback
                from .fastpath import fast_ineligibility_reason
                from .runner import run

                _note_fallback(
                    algo.name,
                    fast_ineligibility_reason(algo) or "no fast kernel",
                    collector,
                )
                packing = run(algo, self.instance, collector=collector)
                assignment = dict(packing.assignment)
                cost, num_bins = packing.cost, packing.num_bins
            results.append(
                UnitResult(
                    algorithm=name,
                    instance_index=instance_index,
                    cost=cost,
                    num_bins=num_bins,
                    lower_bound=self.lower_bound,
                    stats=collector.snapshot() if collector is not None else None,
                )
            )
            if keep_assignments:
                assignments.append(assignment)
        if keep_assignments:
            return results, assignments
        return results

    def _trials_engine(self, backend: str, policy: str) -> FastEngine:
        """Build (or re-arm) the cached dedicated trials engine.

        Generalises the old lockstep-only engine cache to any backend:
        the context is rebuilt only when the cached one's array layout
        is incompatible (python lists vs numpy arrays), and the engine
        only when the backend actually changed.
        """
        from .fastpath import _context_compatible

        ctx = self._ctx
        if ctx is None or not _context_compatible(ctx.backend, backend):
            # a fresh context doubles as the shared one when none is
            # cached yet (all numpy-family layouts are identical)
            ctx = ReplayContext(self.instance, backend)
            if self._ctx is None:
                self._ctx = ctx
        if self._vec_engine is None or self._vec_engine.backend != backend:
            self._vec_engine = FastEngine(
                ctx.instance, policy, seed=0, backend=backend, context=ctx,
            )
        else:
            self._vec_engine.reset(policy=policy, seed=0, context=ctx)
        return self._vec_engine

    def run_trials(
        self,
        seeds: Iterable[int],
        policy: str = "random_fit",
        instance_index: int = 0,
        vectorized: Optional[bool] = None,
        trials_backend: Optional[str] = None,
    ):
        """M seeded ``random_fit`` trials through one batched invocation.

        One :meth:`FastEngine.run_trials
        <repro.simulation.fastpath.FastEngine.run_trials>` call serves
        every seed; each trial's aggregates are bit-identical to a fresh
        per-unit run with that seed.

        ``trials_backend`` pins the kernel tier for this call (any
        fastpath backend name; ``numba`` degrades gracefully), and the
        constructor's ``trials_backend`` pins it for every call.  The
        legacy ``vectorized`` flag is the boolean shorthand it
        supersedes: ``True`` forces the trial-lockstep tier, ``False``
        the sequential re-armed single-trial path.  The default
        auto-selects via
        :func:`~repro.simulation.fastpath.choose_trials_backend`
        (which itself honours :envvar:`REPRO_TRIALS_BACKEND` and
        :envvar:`REPRO_FASTPATH_BACKEND`): warm numba kernels first,
        lockstep whenever numpy is available and more than one seed is
        requested, unless this runner pins a different backend.
        """
        from .parallel import UnitResult
        from .fastpath import (
            NUMBA_BACKEND,
            VECTORIZED_BACKEND,
            choose_trials_backend,
            resolve_backend,
        )

        seed_list = [int(s) for s in seeds]
        pinned = trials_backend if trials_backend is not None else self.trials_backend
        if pinned is not None:
            backend: Optional[str] = resolve_backend(pinned)
        elif vectorized is not None:
            backend = VECTORIZED_BACKEND if vectorized else None
        else:
            chosen = self.backend
            if chosen is None:
                chosen = choose_trials_backend(self.instance, len(seed_list))
            # the single-engine tiers go through the shared per-instance
            # engine below, exactly as before the trials override existed
            backend = chosen if chosen in (VECTORIZED_BACKEND, NUMBA_BACKEND) else None

        if backend is not None:
            engine = self._trials_engine(backend, policy)
        else:
            engine = self._fast_engine(policy, 0, None)
        out: List["UnitResult"] = []
        for assignment in engine.run_trials(seed_list):
            cost, num_bins = self._cost_and_bins(assignment)
            out.append(
                UnitResult(
                    algorithm=policy,
                    instance_index=instance_index,
                    cost=cost,
                    num_bins=num_bins,
                    lower_bound=self.lower_bound,
                )
            )
        return out

    def run_packing(self, algorithm, collector: Optional[StatsCollector] = None) -> Packing:
        """One full :class:`~repro.core.packing.Packing` (runner integration).

        Fast-eligible algorithms replay through the shared
        context/buffers; others run classically.  Used by
        ``run(engine="batch")`` and ``run_many(batch=True)`` where the
        caller needs the packing object, not just sweep aggregates.
        """
        algo = make_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
        resolved = fast_policy_for(algo)
        if resolved is None:
            from .engine import _note_fallback
            from .fastpath import fast_ineligibility_reason
            from .runner import run

            _note_fallback(
                getattr(algo, "name", type(algo).__name__),
                fast_ineligibility_reason(algo) or "no fast kernel",
                collector,
            )
            return run(algo, self.instance, collector=collector)
        policy, seed = resolved
        engine = self._fast_engine(policy, seed, collector)
        return Packing.from_assignment(
            self.instance, engine.run_assignment(), algorithm=algo.name
        )


def batch_run_many(
    algorithm,
    sources: Iterable[BatchSource],
    validate: bool = False,
    collector: Optional[StatsCollector] = None,
) -> List[Packing]:
    """``run_many(batch=True)``: one algorithm over many instances.

    Reuses a single :class:`~repro.simulation.fastpath.FastEngine` (and
    its scratch buffers) across all instances via ``reset(context=...)``;
    results are bit-identical to per-instance ``run(engine="fast")``
    dispatch, with the classic engine as fallback for non-eligible
    algorithms.
    """
    algo = make_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    resolved = fast_policy_for(algo)
    packings: List[Packing] = []
    engine: Optional[FastEngine] = None
    for source in sources:
        inst = source if isinstance(source, Instance) else materialize(source)
        if resolved is None:
            from .engine import _note_fallback
            from .fastpath import fast_ineligibility_reason
            from .runner import run

            _note_fallback(
                getattr(algo, "name", type(algo).__name__),
                fast_ineligibility_reason(algo) or "no fast kernel",
                collector,
            )
            packings.append(run(algo, inst, validate=validate, collector=collector))
            continue
        policy, seed = resolved
        ctx = ReplayContext(inst, choose_backend(inst))
        if engine is None or engine.backend != ctx.backend:
            engine = FastEngine(
                inst, policy, seed=seed, collector=collector,
                backend=ctx.backend, context=ctx,
            )
        else:
            engine.reset(policy=policy, seed=seed, collector=collector, context=ctx)
        packing = Packing.from_assignment(
            inst, engine.run_assignment(), algorithm=algo.name
        )
        if validate:
            packing.validate()
        packings.append(packing)
    return packings
