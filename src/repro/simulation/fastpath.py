"""Flat-array fast-path twin of the classic simulation :class:`Engine`.

The classic engine replays Algorithm 1 over per-bin Python objects: every
arrival re-stacks the open bins' load vectors into a fresh matrix before
the vectorised fit check, and every bin transition walks observer hooks.
That object traversal — not the arithmetic — dominates the Table 2 /
Figure 4 sweeps and the ``repro verify`` fuzz harness.

:class:`FastEngine` keeps the *same decision procedure* in flat parallel
arrays instead:

* a dense residual-capacity matrix ``loads`` of shape ``(slots, d)`` with
  one row per ever-opened bin slot, updated incrementally on pack and
  recomputed per-row on departure (see below);
* ``alive`` open/closed flags plus tombstone compaction, so closed bins
  cost nothing after a compaction sweep and the matrix stays dense;
* a pre-sorted event-index array built once per run (``np.lexsort`` over
  ``(time, kind, seq)``) replacing the per-run event-object construction,
  preserving the exact departures-before-arrivals tie-break of
  :mod:`repro.core.events`;
* per-policy selection kernels: first-fit ``argmax`` over the fit mask,
  best/worst-fit masked ``argmax``/``argmin`` over row loads, Move To
  Front recency-list front-scan, Next Fit single-row cursor check, and a
  stream-compatible Random Fit draw.

Bit-identity contract
---------------------
For every policy in :data:`FAST_POLICIES` the engine produces the *same
item → bin assignment, bit for bit*, as the classic engine — not merely
the same cost.  Two details make this non-trivial:

1. **Departures re-sum, never subtract.**  :meth:`repro.core.bins.Bin.remove`
   recomputes the load by summing the remaining residents sequentially in
   pack order; ``(a + b) + c - b`` differs from ``a + c`` by an ulp in
   float64, so an incremental subtract would eventually flip a fit
   decision near the tolerance threshold.  The fast path performs the
   identical sequential re-sum on the affected row only.
2. **New bins copy, never accumulate.**  A fresh bin's load is
   ``0.0 + size`` elementwise, which is bitwise equal to ``size`` for the
   non-negative finite sizes :func:`repro.core.vectors.as_size_vector`
   admits, so opening writes the size row directly.

Backends
--------
Four interchangeable kernel backends produce identical decisions:

* ``"numpy"`` — vectorised mask/argmin/argmax kernels (auto-selected when
  numpy is importable, i.e. always in a standard install);
* ``"python"`` — pure-Python short-circuit scans over lists of floats.
  The scans stop at the first fitting bin where the policy allows, which
  changes nothing observable: the *selected* bin is the same, and the
  per-dimension float adds/compares are the same IEEE-754 double
  operations numpy performs elementwise;
* ``"vectorized"`` — the trial-lockstep tier: single runs route through
  the numpy kernels unchanged, while :meth:`FastEngine.run_trials`
  advances *all* M ``random_fit`` trials through the shared event array
  in lockstep — one 3-D residual tensor ``[trials, slots, d]``, one
  vectorised fit-mask per arrival, one ``reduceat`` departure re-sum —
  with one per-trial :class:`numpy.random.Generator` so every trial's
  draw stream (and therefore its assignment) is reproduced
  bit-identically;
* ``"numba"`` — the JIT-compiled tier (:mod:`repro.simulation.kernels_numba`):
  one ``@njit(cache=True)`` kernel replays any policy/measure over the
  same flat arrays with no per-event Python dispatch at all.  Requires
  the optional ``[fast]`` extra; auto-preferred by the choosers once
  the kernels are compiled and warm, and degraded to ``numpy`` with a
  once-per-cause warning when the extra is missing, too old, disabled
  (:envvar:`REPRO_NUMBA_DISABLE`), or broken.  Multi-trial fan-outs run
  the jitted kernel once per seed — the JIT removes the dispatch
  overhead the lockstep tier exists to amortise.

Select explicitly via ``FastEngine(..., backend=...)`` or globally with
the ``REPRO_FASTPATH_BACKEND`` environment variable (the CI fastpath
matrix leg pins each backend in turn); ``REPRO_TRIALS_BACKEND``
overrides only the M-trial chooser.  The replay loops are
deliberately written out long-hand per backend — factoring the shared
bookkeeping through per-event callables would put several Python method
calls back on the hot path, which is exactly the overhead this module
exists to remove.

Load-measure kernels
--------------------
``BestFit``/``WorstFit`` rank candidates by a configurable load measure
(``linf``/``l1``/``lp``, see :func:`repro.algorithms.best_fit.load_measure`).
All three measures have fast kernels: eligibility is keyed on the
``(class, measure, p)`` triple (see :func:`register_kernel_class`), and
the resolved policy spec carries the measure — ``"best_fit"`` (L-inf),
``"best_fit:l1"``, ``"best_fit:lp:3.0"`` — through every dispatch path.
``lp`` with ``p = 1`` is normalised to the ``l1`` kernel and ``p = inf``
to ``linf`` (both bitwise-identical weight computations, since
``x ** 1.0 == x`` exactly and the classic ``lp`` routes ``inf`` to
``linf`` itself).

Integration
-----------
``simulate(algorithm, instance, fast=True)`` auto-routes eligible runs
here (see :func:`fast_policy_for` for eligibility) and silently falls
back to the classic engine otherwise; ``repro run --engine fast`` and the
``parallel_sweep(..., engine="fast")`` chunked dispatch build on the same
resolution.  ``repro.verify`` holds the safety net: a classic-vs-fastpath
differential oracle in the harness, a three-way corpus test, and a
deliberately broken stale-residual mutant that must be caught.
"""

from __future__ import annotations

import operator
import os
import warnings
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

try:  # numpy is a hard dependency of repro.core, but the fast kernels
    # degrade to the pure-python backend if it ever goes missing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

if _np is not None:
    # The jitted-tier module needs numpy at import time; in a numpy-less
    # process the "numba" backend simply never appears.
    from . import kernels_numba as _knl
else:  # pragma: no cover - exercised via backend="python"
    _knl = None

from ..core.errors import AlgorithmError, ConfigurationError
from ..core.instance import Instance
from ..core.packing import Packing
from ..core.vectors import EPS
from ..observability.stats import StatsCollector

__all__ = [
    "BACKEND_ENV",
    "TRIALS_BACKEND_ENV",
    "NUMPY_BACKEND",
    "PYTHON_BACKEND",
    "VECTORIZED_BACKEND",
    "NUMBA_BACKEND",
    "FAST_POLICIES",
    "available_backends",
    "default_backend",
    "choose_backend",
    "choose_trials_backend",
    "resolve_backend",
    "backend_ineligibility_reason",
    "reset_backend_fallback_warnings",
    "register_kernel_class",
    "parse_policy_spec",
    "fast_policy_for",
    "fast_ineligibility_reason",
    "ReplayContext",
    "FastEngine",
    "fast_simulate",
]

NUMPY_BACKEND = "numpy"
PYTHON_BACKEND = "python"
#: The trial-lockstep tier: numpy kernels for single runs, plus the
#: all-trials-in-lockstep ``run_trials`` kernel (numpy required).
VECTORIZED_BACKEND = "vectorized"
#: The JIT-compiled tier (:mod:`repro.simulation.kernels_numba`): one
#: ``@njit(cache=True)`` replay kernel covering every registry policy
#: and measure.  Requires the optional ``[fast]`` extra (or the
#: uncompiled :envvar:`REPRO_NUMBA_PYFUNC` test mode); degrades to
#: ``numpy`` with a once-per-cause warning when unavailable.
NUMBA_BACKEND = "numba"

#: Environment variable overriding backend auto-selection
#: (``numpy`` | ``python`` | ``vectorized`` | ``numba``).  The CI
#: fastpath matrix legs set it.
BACKEND_ENV = "REPRO_FASTPATH_BACKEND"

#: Environment variable overriding the *trials* backend chooser only
#: (:func:`choose_trials_backend`), so an M-trial fan-out can be pinned
#: to a tier without also pinning single-run replays.
TRIALS_BACKEND_ENV = "REPRO_TRIALS_BACKEND"

_ALL_BACKENDS = (NUMPY_BACKEND, PYTHON_BACKEND, VECTORIZED_BACKEND, NUMBA_BACKEND)

#: The seven Section 7 registry policies the fast kernels implement.
FAST_POLICIES = frozenset(
    {
        "move_to_front",
        "first_fit",
        "next_fit",
        "best_fit",
        "worst_fit",
        "last_fit",
        "random_fit",
    }
)

_INITIAL_SLOTS = 64
#: Compact the slot arrays once at least this many tombstones exist *and*
#: they are at least half of all slots — amortised O(1) per close.
_COMPACT_MIN_DEAD = 32


def available_backends() -> Tuple[str, ...]:
    """Kernel backends usable in this process, preferred first.

    The ``numba`` tier appears (last) only when its kernels can execute
    here — the ``[fast]`` extra is importable, or the uncompiled
    :envvar:`REPRO_NUMBA_PYFUNC` test mode is on.
    """
    if _np is not None:
        if _knl is not None and _knl.kernels_ready():
            return (NUMPY_BACKEND, PYTHON_BACKEND, VECTORIZED_BACKEND, NUMBA_BACKEND)
        return (NUMPY_BACKEND, PYTHON_BACKEND, VECTORIZED_BACKEND)
    return (PYTHON_BACKEND,)


#: Once-per-cause registry of backend-degradation warnings ("numba
#: requested but not importable" and friends), mirroring the engine's
#: fallback-observability pattern.  :func:`reset_backend_fallback_warnings`
#: clears it (tests).
_BACKEND_FALLBACK_WARNED: set = set()


def reset_backend_fallback_warnings() -> None:
    """Forget which backend-degradation causes already warned (tests)."""
    _BACKEND_FALLBACK_WARNED.clear()


def backend_ineligibility_reason(backend: str) -> Optional[str]:
    """Why ``backend`` cannot execute in this process, or None if it can.

    The named-cause twin of :func:`fast_ineligibility_reason` for
    backends rather than algorithms: ``"numba"`` reports the probe
    result of :mod:`repro.simulation.kernels_numba` (not importable,
    too old, disabled, or marked broken), the numpy-family backends
    report a missing numpy, and unknown names raise.
    """
    if backend not in _ALL_BACKENDS:
        raise ConfigurationError(
            f"unknown fastpath backend {backend!r}; expected one of "
            f"{', '.join(repr(b) for b in _ALL_BACKENDS)}"
        )
    if backend != PYTHON_BACKEND and _np is None:
        return f"{backend} backend needs numpy, which is not importable"
    if backend == NUMBA_BACKEND:
        if _knl is None:
            return "numba kernels module unavailable (numpy missing)"
        if not _knl.kernels_ready():
            return _knl.unavailable_reason() or "numba is not importable"
    return None


def _numba_fallback(context: str) -> str:
    """Degrade a ``numba`` request to the best available tier, warning once.

    ``context`` names the request site (env var, constructor, chooser) so
    each distinct cause warns exactly once per process, like the
    engine's classic-fallback bookkeeping.
    """
    reason = backend_ineligibility_reason(NUMBA_BACKEND) or "numba unavailable"
    fallback = NUMPY_BACKEND if _np is not None else PYTHON_BACKEND
    key = (context, reason)
    if key not in _BACKEND_FALLBACK_WARNED:
        _BACKEND_FALLBACK_WARNED.add(key)
        warnings.warn(
            f"{context}: {reason}; falling back to the {fallback!r} backend "
            "(bit-identical results, no compiled kernels)",
            RuntimeWarning,
            stacklevel=3,
        )
    return fallback


def resolve_backend(requested: str) -> str:
    """Validate ``requested`` and degrade ``numba`` gracefully.

    Unknown names and numpy-family backends without numpy raise
    :class:`~repro.core.errors.ConfigurationError` exactly as before; a
    ``numba`` request on a process where the kernels cannot execute
    warns once per cause and returns the numpy fallback instead, so an
    optional-extra install difference never turns into an error.
    """
    reason = backend_ineligibility_reason(requested)
    if reason is None:
        return requested
    if requested == NUMBA_BACKEND:
        return _numba_fallback(f"fastpath backend {requested!r} requested")
    raise ConfigurationError(reason)


def default_backend() -> str:
    """Resolve the backend to use when none is requested explicitly.

    Honours :data:`BACKEND_ENV` when set (raising
    :class:`~repro.core.errors.ConfigurationError` on an unknown or
    unavailable value, except ``numba`` which degrades with a warning);
    otherwise auto-selects ``"numba"`` once its kernels are warm,
    ``"numpy"`` when numpy is importable, and ``"python"`` as the
    fallback.
    """
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    if env:
        if env not in _ALL_BACKENDS:
            raise ConfigurationError(
                f"{BACKEND_ENV}={env!r} is not a fastpath backend; "
                f"expected one of {', '.join(repr(b) for b in _ALL_BACKENDS)}"
            )
        if env == NUMBA_BACKEND:
            if backend_ineligibility_reason(NUMBA_BACKEND) is not None:
                return _numba_fallback(f"{BACKEND_ENV}={env!r}")
            return env
        if env != PYTHON_BACKEND and _np is None:
            raise ConfigurationError(
                f"{BACKEND_ENV}={env!r} but numpy is not importable"
            )
        return env
    if _numba_warm():
        return NUMBA_BACKEND
    return NUMPY_BACKEND if _np is not None else PYTHON_BACKEND


def _numba_warm() -> bool:
    """Whether auto-selection should prefer the compiled tier.

    True only when the jitted kernels are compiled and ready — the
    uncompiled :envvar:`REPRO_NUMBA_PYFUNC` mode is for testing, not
    speed, so it is never auto-preferred (pin it via the env override).
    """
    return (
        _np is not None
        and _knl is not None
        and _knl.is_warm()
        and not _knl.pyfunc_mode()
    )


#: Mean-concurrency threshold of :func:`choose_backend`.  Below it the
#: pure-python backend's short-circuit scans beat numpy's per-arrival
#: mask/argmax kernel overhead (few open bins, tiny masks); above it the
#: vectorised kernels win.  Calibrated on the bench grid: the Table 2 /
#: Figure 4 shapes (n=1000, mu<=100, ~5-50 concurrent items) sit well
#: below, the xlarge fastpath scenario (n=5000, mu=100, ~250 concurrent)
#: well above.
_PYTHON_MAX_MEAN_CONCURRENCY = 128.0


def choose_backend(instance: Instance) -> str:
    """Pick the likely-fastest backend for replaying ``instance``.

    An explicit :data:`BACKEND_ENV` override always wins (resolved via
    :func:`default_backend`, so bad values still raise).  Otherwise the
    decision keys on the estimated mean number of concurrently active
    items, ``total_duration / horizon length``: per-arrival work is
    proportional to the number of open bins, which this ratio bounds.
    Both backends produce bit-identical assignments, so this is purely a
    performance choice — :class:`BatchRunner
    <repro.simulation.batch.BatchRunner>` uses it per instance.
    """
    if os.environ.get(BACKEND_ENV, "").strip():
        return default_backend()
    if _np is None:
        return PYTHON_BACKEND
    if _numba_warm():
        # compiled kernels beat both tiers at every concurrency once the
        # JIT cost is already paid
        return NUMBA_BACKEND
    length = instance.horizon.length
    if length <= 0.0:
        return NUMPY_BACKEND
    mean_concurrency = instance.total_duration / length
    if mean_concurrency <= _PYTHON_MAX_MEAN_CONCURRENCY:
        return PYTHON_BACKEND
    return NUMPY_BACKEND


def choose_trials_backend(instance: Instance, n_trials: int) -> str:
    """Pick the backend for an M-trial ``random_fit`` fan-out.

    An explicit :data:`BACKEND_ENV` override always wins (so the CI
    matrix legs pin every tier).  Otherwise the trial-lockstep
    ``"vectorized"`` tier is auto-selected whenever numpy is importable
    and there is more than one trial to amortise the event sweep over —
    the lockstep kernel's per-arrival fit tensor costs the same numpy
    call count as a *single* trial's mask, so two trials already win.
    Single trials fall back to the per-instance
    :func:`choose_backend` heuristic.

    Overrides, strongest first: :data:`TRIALS_BACKEND_ENV` pins the
    trials tier alone (``numba`` degrading gracefully like everywhere
    else), then :data:`BACKEND_ENV` pins every tier.  With neither set,
    warm compiled kernels beat the lockstep tier — the JIT removes the
    per-event dispatch overhead lockstep exists to amortise.
    """
    env = os.environ.get(TRIALS_BACKEND_ENV, "").strip().lower()
    if env:
        if env not in _ALL_BACKENDS:
            raise ConfigurationError(
                f"{TRIALS_BACKEND_ENV}={env!r} is not a fastpath backend; "
                f"expected one of {', '.join(repr(b) for b in _ALL_BACKENDS)}"
            )
        if env == NUMBA_BACKEND:
            if backend_ineligibility_reason(NUMBA_BACKEND) is not None:
                return _numba_fallback(f"{TRIALS_BACKEND_ENV}={env!r}")
            return env
        if env != PYTHON_BACKEND and _np is None:
            raise ConfigurationError(
                f"{TRIALS_BACKEND_ENV}={env!r} but numpy is not importable"
            )
        return env
    if os.environ.get(BACKEND_ENV, "").strip():
        return default_backend()
    if _numba_warm() and n_trials > 1:
        return NUMBA_BACKEND
    if _np is not None and n_trials > 1:
        return VECTORIZED_BACKEND
    return choose_backend(instance)


# ----------------------------------------------------------------------
# eligibility: which algorithm objects may be routed to the fast path
# ----------------------------------------------------------------------

#: Load measures the BestFit/WorstFit kernels implement.
_MEASURES = ("linf", "l1", "lp")

#: ``(class, measure, p)`` triples whose dispatch the fast kernels
#: reproduce, mapped to the base kernel policy name.  Classes are
#: checked by *identity* — a subclass may override ``choose``/
#: ``on_packed`` and silently diverge, so it must opt in through
#: :func:`register_kernel_class`.  ``p = None`` under ``measure="lp"``
#: is a wildcard: any exponent ``p >= 1`` resolves through it (the
#: kernel takes ``p`` as data).
_KERNEL_CLASSES: Dict[Tuple[type, str, Optional[float]], str] = {}


def register_kernel_class(
    cls: type, policy: str, measure: str = "linf", p: Optional[float] = None
) -> None:
    """Declare that ``cls`` instances behave exactly like ``policy``.

    Extension hook for algorithm classes outside the stock seven (or
    subclasses of them) whose decisions provably match a fast kernel.
    Registered classes become eligible for :func:`fast_policy_for`
    resolution when their ``fast_kernel`` attribute names the policy and
    their ``measure``/``p`` attributes (default ``"linf"``/``None``)
    match a registered ``(class, measure, p)`` triple.  Registering
    ``measure="lp"`` with ``p=None`` covers every exponent ``p >= 1``.
    """
    if policy not in FAST_POLICIES:
        raise ConfigurationError(
            f"cannot register {cls!r} for unknown fast policy {policy!r}"
        )
    if measure not in _MEASURES:
        raise ConfigurationError(
            f"cannot register {cls!r} for unknown load measure {measure!r}; "
            f"expected one of {', '.join(_MEASURES)}"
        )
    _KERNEL_CLASSES[(cls, measure, None if p is None else float(p))] = policy


def _class_has_kernel(cls: type) -> bool:
    """True when any ``(measure, p)`` configuration of ``cls`` is registered."""
    return any(key[0] is cls for key in _KERNEL_CLASSES)


def parse_policy_spec(spec: str) -> Tuple[str, str, Optional[float]]:
    """Split a fast policy spec into ``(base, measure, p)``.

    Specs are the strings :func:`fast_policy_for` resolves to and every
    dispatch path (``FastEngine``, ``simulate(fast=True)``, the batch
    runner, the oracles) passes around: a bare policy name from
    :data:`FAST_POLICIES` (L-inf measure), ``"<policy>:l1"``, or
    ``"<policy>:lp:<p>"`` with ``p >= 1`` (``best_fit``/``worst_fit``
    only — the other kernels have no load-measure knob).  Raises
    :class:`~repro.core.errors.ConfigurationError` on malformed specs.
    """
    parts = str(spec).split(":")
    base = parts[0]
    if base not in FAST_POLICIES:
        raise ConfigurationError(
            f"fastpath does not implement policy {base!r}; supported: "
            f"{', '.join(sorted(FAST_POLICIES))}"
        )
    if len(parts) == 1:
        return base, "linf", None
    measure = parts[1]
    if base not in ("best_fit", "worst_fit"):
        raise ConfigurationError(
            f"policy {base!r} has no load-measure variants (spec {spec!r})"
        )
    if measure == "linf" and len(parts) == 2:
        return base, "linf", None
    if measure == "l1" and len(parts) == 2:
        return base, "l1", None
    if measure == "lp":
        if len(parts) != 3:
            raise ConfigurationError(
                f"lp spec needs an exponent, e.g. '{base}:lp:3.0' (got {spec!r})"
            )
        try:
            p = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"lp exponent {parts[2]!r} is not a float (spec {spec!r})"
            ) from None
        if not p >= 1:  # also rejects NaN
            raise ConfigurationError(
                f"lp measure requires p >= 1, got {p} (spec {spec!r})"
            )
        return base, "lp", p
    raise ConfigurationError(
        f"unknown load measure in fast policy spec {spec!r}; expected "
        f"'{base}', '{base}:l1', or '{base}:lp:<p>'"
    )


def fast_policy_for(algorithm: Union[str, object]) -> Optional[Tuple[str, int]]:
    """Resolve an algorithm spec to ``(policy_spec, seed)`` if fast-eligible.

    Accepts a registry name, a policy spec string (see
    :func:`parse_policy_spec`), or an algorithm object.  An object is
    eligible when (a) its class advertises a kernel via the
    ``fast_kernel`` attribute, (b) its ``(class, measure, p)`` triple is
    registered for that kernel (:func:`register_kernel_class` — exact
    class identity, so unregistered subclasses are rejected outright),
    and (c) its ``seed`` attribute, if any, is an actual integer.  The
    resolved spec carries the load measure (``"best_fit:l1"``,
    ``"worst_fit:lp:3.0"``), so every dispatch path replays the right
    kernel.  Returns ``None`` when the classic engine must be used.
    """
    if isinstance(algorithm, str):
        if algorithm in FAST_POLICIES:
            return algorithm, 0
        try:
            parse_policy_spec(algorithm)
        except ConfigurationError:
            return None
        return algorithm, 0
    kernel = getattr(algorithm, "fast_kernel", None)
    if kernel not in FAST_POLICIES:
        return None
    measure = getattr(algorithm, "measure", None) or "linf"
    if measure not in _MEASURES:
        return None
    cls = type(algorithm)
    p: Optional[float] = None
    if measure == "lp":
        raw_p = getattr(algorithm, "p", None)
        try:
            p = float(raw_p)
        except (TypeError, ValueError):
            return None
        if not p >= 1:  # also rejects NaN
            return None
    registered = _KERNEL_CLASSES.get((cls, measure, p))
    if registered is None and measure == "lp":
        registered = _KERNEL_CLASSES.get((cls, measure, None))  # wildcard p
    if registered != kernel:
        return None
    try:
        # operator.index rejects None/floats/strings instead of crashing
        # mid-dispatch with a bare TypeError (or silently truncating).
        seed = operator.index(getattr(algorithm, "seed", 0))
    except TypeError:
        return None
    if measure == "linf":
        spec = kernel
    elif measure == "l1":
        spec = f"{kernel}:l1"
    else:
        spec = f"{kernel}:lp:{p!r}"
    return spec, seed


def fast_ineligibility_reason(algorithm: Union[str, object]) -> Optional[str]:
    """Why :func:`fast_policy_for` rejects this spec (``None`` = eligible).

    The distinct causes matter operationally: a policy whose *class* has
    no kernel will never speed up, while a registered class whose
    *configuration* falls outside the registered ``(measure, p)``
    triples (or whose ``fast_kernel`` was cleared by a
    decision-changing option, e.g. the quantum-aware Move To Front
    variant) could gain a kernel in a later PR.  Engine fallbacks
    surface this reason through the once-per-cause
    :class:`RuntimeWarning` and the ``fastpath_fallbacks`` counter, so
    sweeps silently pinned to the classic engine are visible (ROADMAP
    item 2's eligibility gap).  Every reason contains the phrase
    ``"no fast kernel"``.
    """
    if fast_policy_for(algorithm) is not None:
        return None
    if isinstance(algorithm, str):
        try:
            parse_policy_spec(algorithm)
        except ConfigurationError as exc:
            return f"no fast kernel for policy {algorithm!r} ({exc})"
        return f"no fast kernel for policy {algorithm!r}"
    kernel = getattr(algorithm, "fast_kernel", None)
    cls = type(algorithm).__name__
    if kernel is None:
        # the stock classes set fast_kernel at class level; a cleared
        # instance attribute marks a decision-changing configuration
        if _class_has_kernel(type(algorithm)) or getattr(type(algorithm), "fast_kernel", None):
            return (
                f"no fast kernel for this {cls} configuration (a "
                f"decision-changing option cleared it)"
            )
        return f"no fast kernel for class {cls}"
    if kernel not in FAST_POLICIES:
        return f"no fast kernel named {kernel!r} (unknown fast policy)"
    try:
        operator.index(getattr(algorithm, "seed", 0))
    except TypeError:
        return (
            f"no fast kernel dispatch for {cls}: seed "
            f"{getattr(algorithm, 'seed', None)!r} is not an integer"
        )
    if not _class_has_kernel(type(algorithm)):
        return f"no fast kernel registration for class {cls} (kernel {kernel!r})"
    measure = getattr(algorithm, "measure", None) or "linf"
    return (
        f"no fast kernel for this {cls} configuration "
        f"(measure={measure!r}, p={getattr(algorithm, 'p', None)!r} "
        f"matches no registered (class, measure, p) triple)"
    )


# ----------------------------------------------------------------------
# shared replay inputs
# ----------------------------------------------------------------------
class ReplayContext:
    """Policy-independent replay inputs for one ``(instance, backend)``.

    Everything a kernel reads but never writes: the stacked size matrix,
    the tolerance-adjusted capacity slack, the lexsorted flat event-index
    array (the ``(time, kind, seq)`` order of :mod:`repro.core.events`,
    encoded as ``pos`` for arrivals and ``n + pos`` for departures), and
    the uid list used to emit the final assignment.  Building these is
    roughly half the cost of a single replay at Table 2 scale, so
    :class:`~repro.simulation.batch.BatchRunner` builds one context per
    instance and shares it across all N policies x M trials; a lone
    :class:`FastEngine` builds its own lazily on first run.
    """

    __slots__ = (
        "instance",
        "backend",
        "n",
        "d",
        "sizes",
        "slack",
        "order",
        "uids",
        "_order_arr",
    )

    def __init__(self, instance: Instance, backend: Optional[str] = None) -> None:
        resolved = default_backend() if backend is None else resolve_backend(backend)
        items = instance.items
        n = len(items)
        self.instance = instance
        self.backend = resolved
        self.n = n
        self.d = instance.d
        self.uids = [it.uid for it in items]
        if resolved != PYTHON_BACKEND:
            np = _np
            capacity = np.asarray(instance.capacity, dtype=np.float64)
            self.slack = capacity + EPS * np.maximum(capacity, 1.0)
            # concatenate+reshape copies the same per-item rows np.stack
            # would, without stack's per-array shape bookkeeping
            if n:
                self.sizes = np.concatenate([it.size for it in items]).reshape(
                    n, instance.d
                )
            else:
                self.sizes = np.zeros((0, instance.d), dtype=np.float64)
            # Pre-sorted event indices: value < n is the arrival of item
            # position `value`; value >= n is the departure of `value - n`.
            # lexsort's last key is primary, matching the classic engine's
            # (time, kind, seq) sort with DEPARTURE(0) < ARRIVAL(1),
            # arrival seq = instance position, departure seq = uid.
            times = np.empty(2 * n, dtype=np.float64)
            seqs = np.empty(2 * n, dtype=np.int64)
            kinds = np.empty(2 * n, dtype=np.int64)
            times[:n] = [it.arrival for it in items]
            times[n:] = [it.departure for it in items]
            seqs[:n] = np.arange(n)
            seqs[n:] = self.uids
            kinds[:n] = 1
            kinds[n:] = 0
            order_arr = np.lexsort((seqs, kinds, times))
            self.order = order_arr.tolist()
            # int64 view of the same order for the jitted kernels
            self._order_arr = order_arr.astype(np.int64, copy=False)
        else:
            self.slack = [float(c) + EPS * max(float(c), 1.0) for c in instance.capacity]
            self.sizes = [it.size.tolist() for it in items]
            keys = []
            for pos, it in enumerate(items):
                keys.append((it.arrival, 1, pos, pos))
                keys.append((it.departure, 0, it.uid, n + pos))
            keys.sort(key=lambda k: (k[0], k[1], k[2]))
            self.order = [k[3] for k in keys]
            self._order_arr = None

    def order_array(self):
        """The lexsorted event indices as an int64 array (jitted kernels).

        Python-layout contexts build it on first use; numpy-layout
        contexts share the array the lexsort already produced.
        """
        arr = self._order_arr
        if arr is None:
            arr = self._order_arr = _np.asarray(self.order, dtype=_np.int64)
        return arr


#: Sentinel distinguishing "leave the collector alone" from "clear it"
#: in :meth:`FastEngine.reset`.
_UNSET = object()


def _context_compatible(ctx_backend: str, engine_backend: str) -> bool:
    """Whether a context's arrays serve an engine's backend.

    The ``numpy`` and ``vectorized`` tiers share the same array layout
    (the lockstep kernel reads the same sizes/slack/order arrays), so
    their contexts are interchangeable; the ``python`` tier uses plain
    lists and is not.
    """
    if ctx_backend == engine_backend:
        return True
    return ctx_backend != PYTHON_BACKEND and engine_backend != PYTHON_BACKEND


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class FastEngine:
    """Replays one instance through one fast policy kernel.

    Drop-in counterpart of :class:`~repro.simulation.engine.Engine` for
    the policies in :data:`FAST_POLICIES`: same single-use contract, same
    returned :class:`~repro.core.packing.Packing`, bit-identical item →
    bin assignment.  It does **not** support observers — observer fan-out
    is per-event Python dispatch, the cost the fast path removes; runs
    that need observers go through the classic engine (``simulate``'s
    auto-selection enforces this).

    Parameters
    ----------
    instance:
        The instance to replay.
    policy:
        A policy name from :data:`FAST_POLICIES`.
    seed:
        Random stream seed (``random_fit`` only; ignored otherwise).
    collector:
        Optional :class:`~repro.observability.stats.StatsCollector`.
        When given, the run records the same counters as an instrumented
        classic run — identical deterministic part — plus the
        ``fastpath_runs`` tally.
    backend:
        ``"numpy"`` or ``"python"``; default :func:`default_backend`.
    context:
        Optional pre-built :class:`ReplayContext` for this instance and
        backend — the batched sweep path builds one per instance and
        shares it across policies/trials.  Built lazily when omitted.
    """

    __slots__ = (
        "instance",
        "policy",
        "name",
        "seed",
        "collector",
        "backend",
        "_base",
        "_measure",
        "_p",
        "_ran",
        "_ctx",
        "_kernel_backend",
        "_scratch_loads",
        "_scratch_fit",
        "_scratch_ok",
        "_scratch_mask",
        "_scratch_w",
        "_scratch_stamp",
    )

    #: Mutation hook for :mod:`repro.verify.mutation`: the stale-residual
    #: mutant subclass flips this to skip the departure re-sum, which the
    #: classic-vs-fastpath differential oracle must catch.
    _stale_residual_bug = False

    def __init__(
        self,
        instance: Instance,
        policy: str,
        seed: int = 0,
        collector: Optional[StatsCollector] = None,
        backend: Optional[str] = None,
        context: Optional[ReplayContext] = None,
    ) -> None:
        resolved = default_backend() if backend is None else resolve_backend(backend)
        self._apply_policy(policy)
        if self._base == "random_fit" and _np is None:
            raise ConfigurationError(
                "random_fit needs numpy's Generator to reproduce the classic "
                "engine's random stream"
            )
        if context is not None:
            if context.instance is not instance:
                raise ConfigurationError(
                    "replay context was built for a different instance"
                )
            if not _context_compatible(context.backend, resolved):
                raise ConfigurationError(
                    f"replay context targets backend {context.backend!r}, "
                    f"engine uses {resolved!r}"
                )
        self.instance = instance
        self.seed = int(seed)
        self.collector = collector
        self.backend = resolved
        self._kernel_backend = resolved
        self._ran = False
        self._ctx = context
        # numpy scratch buffers (residual matrix + bookkeeping), kept
        # across reset() so re-armed replays skip the reallocation.
        self._scratch_loads = None
        self._scratch_fit = None
        self._scratch_ok = None
        self._scratch_mask = None
        self._scratch_w = None
        self._scratch_stamp = None

    def _apply_policy(self, policy: str) -> None:
        """Parse and install a policy spec (see :func:`parse_policy_spec`).

        ``self.policy`` keeps the spec as given; ``self.name`` mirrors the
        classic algorithm object's ``name`` for that configuration
        (``"best_fit_l1"``, ``"best_fit_lp3"``), so collectors and packing
        labels match classic runs.  The kernel-facing measure is
        normalised: ``lp`` with ``p = 1`` runs the ``l1`` kernel and
        ``p = inf`` the ``linf`` kernel — both produce bitwise-identical
        weights to the classic measure functions.
        """
        base, measure, p = parse_policy_spec(policy)
        self.policy = str(policy)
        if measure == "linf":
            self.name = base
        elif measure == "l1":
            self.name = f"{base}_l1"
        else:
            self.name = f"{base}_lp{p:g}"
        if measure == "lp":
            if p == float("inf"):
                measure, p = "linf", None
            elif p == 1.0:
                measure, p = "l1", None
        self._base = base
        self._measure = measure
        self._p = p

    # ------------------------------------------------------------------
    def reset(
        self,
        policy: Optional[str] = None,
        seed: Optional[int] = None,
        context: Optional[ReplayContext] = None,
        instance: Optional[Instance] = None,
        collector=_UNSET,
    ) -> "FastEngine":
        """Re-arm the engine for another replay, reusing scratch buffers.

        The single-use contract of :meth:`run` still holds between
        resets — ``reset()`` is the *explicit* opt-in that makes reuse
        safe: it clears the ran flag and (optionally) swaps the policy,
        seed, collector, instance, or shared :class:`ReplayContext`,
        while the residual-matrix scratch buffers stay allocated.  This
        is what lets :class:`~repro.simulation.batch.BatchRunner` replay
        one instance under N policies x M trials without N*M
        reallocations.  Returns ``self`` for chaining.
        """
        if context is not None:
            if instance is not None and context.instance is not instance:
                raise ConfigurationError(
                    "reset(): context and instance arguments disagree"
                )
            if not _context_compatible(context.backend, self.backend):
                raise ConfigurationError(
                    f"replay context targets backend {context.backend!r}, "
                    f"engine uses {self.backend!r}"
                )
            instance = context.instance
        if instance is not None and instance is not self.instance:
            self.instance = instance
            self._ctx = None  # stale context: rebuilt lazily (or adopted below)
        if context is not None:
            self._ctx = context
        if policy is not None:
            self._apply_policy(policy)
        if self._base == "random_fit" and _np is None:
            raise ConfigurationError(
                "random_fit needs numpy's Generator to reproduce the classic "
                "engine's random stream"
            )
        if seed is not None:
            self.seed = int(seed)
        if collector is not _UNSET:
            self.collector = collector
        self._ran = False
        return self

    # ------------------------------------------------------------------
    def run(self) -> Packing:
        """Execute the full event stream and return the final packing.

        Like the classic engine, a :class:`FastEngine` is single-use: a
        second call raises :class:`~repro.core.errors.AlgorithmError`
        unless the engine is explicitly re-armed with :meth:`reset`.
        """
        return Packing.from_assignment(
            self.instance, self._execute(), algorithm=self.name
        )

    def run_assignment(self) -> Dict[int, int]:
        """Execute the replay and return the raw uid → bin-id assignment.

        Skips :class:`~repro.core.packing.Packing` construction — the
        batched sweep path derives Eq. 1 cost and the bin count directly
        from the assignment (bit-identically) instead of materialising
        per-bin objects.  Same single-use/:meth:`reset` contract as
        :meth:`run`.
        """
        return self._execute()

    def run_trials(self, seeds) -> List[Dict[int, int]]:
        """Replay one instance under many ``random_fit`` seeds in one call.

        The batched-trials kernel invocation: one shared
        :class:`ReplayContext` (event index, sizes, slack) serves every
        seed; only the draw stream differs per trial.  Returns one
        assignment per seed, each bit-identical to a fresh single run
        with that seed.

        On the ``"vectorized"`` backend (and with no collector attached —
        per-trial counters are per-trial by definition) all trials
        advance through the event array **in lockstep**: one
        ``[trials, slots, d]`` residual tensor, one vectorised fit-mask
        per arrival, one per-trial :class:`numpy.random.Generator` so
        each trial's draw stream is reproduced exactly.  The other
        backends replay trials sequentially through the re-armed
        single-trial kernels.
        """
        if self._base != "random_fit":
            raise ConfigurationError(
                "run_trials() batches seeded trials; only random_fit consumes "
                f"the seed (engine policy is {self.policy!r})"
            )
        seed_list = [int(s) for s in seeds]
        if (
            self.backend == VECTORIZED_BACKEND
            and self.collector is None
            and len(seed_list) > 0
        ):
            return self._replay_lockstep(seed_list)
        if (
            self.backend == NUMBA_BACKEND
            and self.collector is None
            and len(seed_list) > 0
        ):
            return self._replay_trials_numba(seed_list)
        out: List[Dict[int, int]] = []
        for s in seed_list:
            self.reset(seed=s)
            out.append(self._execute())
        return out

    def _execute(self) -> Dict[int, int]:
        if self._ran:
            raise AlgorithmError(
                "FastEngine instances are single-use; build a new one or call reset()"
            )
        self._ran = True
        col = self.collector
        t_run = perf_counter() if col is not None else 0.0
        if col is not None:
            col.run_started(self.instance, self)
        self._kernel_backend = self.backend
        if self.backend == PYTHON_BACKEND:
            assignment = self._replay_python(col)
        elif self.backend == NUMBA_BACKEND:
            assignment = self._replay_numba(col)
        elif self._base == "next_fit":
            # Next Fit inspects exactly one bin per arrival, so numpy
            # row operations cost more in dispatch overhead than they
            # compute; the numpy-family backends route it to the scalar
            # kernel (bit-identical: same IEEE-754 adds/compares).
            assignment = self._replay_next_fit(col)
        else:
            # the "vectorized" tier shares the numpy single-run kernels
            assignment = self._replay_numpy(col)
        if col is not None:
            col.fastpath_runs += 1
            col.note_fastpath_backend(self._kernel_backend)
            col.run_finished(
                perf_counter() - t_run,
                context={"instance": self.instance.name, "n": self.instance.n,
                         "engine": "fast", "backend": self._kernel_backend},
            )
        return assignment

    def _context(self) -> ReplayContext:
        ctx = self._ctx
        if ctx is None or ctx.instance is not self.instance:
            ctx = self._ctx = ReplayContext(self.instance, self.backend)
        return ctx

    # ------------------------------------------------------------------
    # numba backend
    # ------------------------------------------------------------------
    def _numba_degrade(self, reason: str) -> None:
        """Fall off the compiled tier mid-run (kernel fault), warning once."""
        key = ("numba runtime", reason)
        if key not in _BACKEND_FALLBACK_WARNED:
            _BACKEND_FALLBACK_WARNED.add(key)
            warnings.warn(
                f"numba kernel failed at runtime: {reason}; this process "
                "falls back to the 'numpy' backend (bit-identical results)",
                RuntimeWarning,
                stacklevel=4,
            )
        self.backend = NUMPY_BACKEND
        self._kernel_backend = NUMPY_BACKEND

    def _replay_numba(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        """Replay through the jitted kernel of :mod:`kernels_numba`.

        Counters come from inside the kernel (same integer semantics as
        the numpy kernels — verified field by field by the collector
        differential tests); ``dispatch_time_s`` is the whole-kernel
        wall time, since there is no per-event Python boundary left to
        time.  Two degradation paths both land on the numpy kernel with
        results unchanged: a generic-exponent Lp spec whose compiled
        ``pow`` drifts from numpy's on this host (probed once per
        exponent), and a runtime kernel fault (which also marks the
        tier broken for the process).
        """
        inst = self.instance
        n = len(inst.items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        if self._measure == "lp" and not _knl.lp_pow_exact(self._p):
            # the compiled generic-exponent pow drifts from numpy's SIMD
            # power loop on this host; keep the bit-identity contract by
            # routing this spec to the numpy kernel
            key = ("numba lp pow drift", float(self._p))
            if key not in _BACKEND_FALLBACK_WARNED:
                _BACKEND_FALLBACK_WARNED.add(key)
                warnings.warn(
                    f"numba lp(p={self._p:g}) kernel: compiled pow drifts "
                    "from numpy's on this host; using the numpy kernel for "
                    "this measure (bit-identical results)",
                    RuntimeWarning,
                    stacklevel=4,
                )
            self._kernel_backend = NUMPY_BACKEND
            return self._replay_numpy(col)
        ctx = self._context()
        try:
            t0 = perf_counter() if timing else 0.0
            bin_of, opened, closed, peak, scans, checks = _knl.replay(
                ctx.order_array(),
                ctx.sizes,
                ctx.slack,
                n,
                inst.d,
                self._base,
                self._measure,
                self._p or None,
                seed=self.seed,
                stale=self._stale_residual_bug,
            )
        except ConfigurationError:
            raise
        except Exception as exc:  # pragma: no cover - depends on install
            reason = f"{exc.__class__.__name__}: {exc}"
            _knl.mark_broken(f"runtime kernel failure ({reason})")
            self._numba_degrade(reason)
            if self._base == "next_fit":
                return self._replay_next_fit(col)
            return self._replay_numpy(col)
        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=int(opened),
                bins_closed=int(closed),
                peak_open_bins=int(peak),
                dispatch_time_s=perf_counter() - t0,
            )
            col.candidate_scans += int(scans)
            col.fit_checks += int(checks)
        uids = ctx.uids
        lst = bin_of.tolist()
        return {uids[pos]: lst[pos] for pos in range(n)}

    def _replay_trials_numba(self, seed_list: List[int]) -> List[Dict[int, int]]:
        """Per-trial ``random_fit`` fan-out through the jitted kernel."""
        self._ran = True
        inst = self.instance
        n = len(inst.items)
        if n == 0:
            return [{} for _ in seed_list]
        ctx = self._context()
        try:
            mat = _knl.replay_trials(
                ctx.order_array(),
                ctx.sizes,
                ctx.slack,
                n,
                inst.d,
                seed_list,
                stale=self._stale_residual_bug,
            )
        except ConfigurationError:
            raise
        except Exception as exc:  # pragma: no cover - depends on install
            reason = f"{exc.__class__.__name__}: {exc}"
            _knl.mark_broken(f"runtime kernel failure ({reason})")
            self._numba_degrade(reason)
            out: List[Dict[int, int]] = []
            for s in seed_list:
                self.reset(seed=s)
                out.append(self._execute())
            return out
        uids = ctx.uids
        out = []
        for row in mat:
            lst = row.tolist()
            out.append({uids[pos]: lst[pos] for pos in range(n)})
        return out

    # ------------------------------------------------------------------
    # numpy backend
    # ------------------------------------------------------------------
    def _replay_numpy(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        np = _np
        inst = self.instance
        items = inst.items
        n = len(items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order

        base = self._base
        measure = self._measure
        p_exp = self._p
        inv_p = 1.0 / p_exp if p_exp else 0.0
        mtf = base == "move_to_front"
        bf = base == "best_fit"
        wf = base == "worst_fit"
        ff = base == "first_fit"
        lf = base == "last_fit"
        ranked = bf or wf
        linf_m = measure == "linf"
        l1_m = measure == "l1"
        rng = np.random.default_rng(self.seed) if base == "random_fit" else None

        # Residuals live **transposed** -- one (d, slots) matrix -- so the
        # fit test runs as d - 1 chained row ANDs over contiguous rows
        # instead of an axis-1 logical_and.reduce, which costs ~2x as
        # much at this kernel's slot counts (tens of open bins).  Reuse
        # the scratch buffers from a previous (reset) run when the
        # dimensionality matches.  No zeroing needed: a slot column only
        # becomes visible to the kernels (all reads are over [:n_slots])
        # after an open writes that column, and compaction shrinks the
        # visible prefix.
        loads = self._scratch_loads
        if loads is not None and loads.shape[0] == d:
            cap_slots = loads.shape[1]
            fit_buf = self._scratch_fit
            ok_buf = self._scratch_ok
            mask_buf = self._scratch_mask
            w_buf = self._scratch_w
            stamp_buf = self._scratch_stamp
        else:
            cap_slots = _INITIAL_SLOTS
            loads = np.zeros((d, cap_slots), dtype=np.float64)
            # out= targets of the per-arrival kernels: loads + size, the
            # per-dimension comparison, and the fit mask; plus the
            # per-slot weight (best/worst fit) and recency-stamp
            # (move_to_front) vectors.  Preallocating removes every
            # per-arrival temporary allocation from the hot loop.
            fit_buf = np.empty((d, cap_slots), dtype=np.float64)
            ok_buf = np.empty((d, cap_slots), dtype=bool)
            mask_buf = np.empty(cap_slots, dtype=bool)
            w_buf = np.empty(cap_slots, dtype=np.float64)
            stamp_buf = np.empty(cap_slots, dtype=np.float64)
        sizes_col = sizes.reshape(n, d, 1)  # per-item (d, 1) broadcast views
        slack_col = slack.reshape(d, 1)
        residents: List[List[int]] = []  # item positions per slot, pack order
        slot_bin: List[int] = []  # slot -> bin id
        alive: List[bool] = []  # compaction bookkeeping; not in the hot path
        slot_of: Dict[int, int] = {}  # bin id -> slot
        bin_of = [0] * n  # item position -> bin id
        n_slots = n_dead = open_count = bin_count = 0
        tcount = 0  # MTF recency stamps: later placement = higher stamp
        stale = self._stale_residual_bug
        neg_inf = -np.inf
        pos_inf = np.inf

        # Hoisted C entry points.  ``np.add.reduce`` is deliberate where
        # it appears: the ``np.sum`` wrapper adds several microseconds of
        # pure-Python dispatch per call and reduces with the identical
        # pairwise routine.
        np_add = np.add
        np_less_equal = np.less_equal
        np_logical_and = np.logical_and
        np_add_reduce = np.add.reduce
        np_power = np.power
        np_where = np.where
        np_accumulate = np.add.accumulate

        pc = perf_counter
        scans = checks = peak_open = closed = 0
        dispatch_s = 0.0

        # Per-``m`` view cache: slicing the buffers per arrival costs
        # more than the kernels themselves when the open list is stable,
        # and ``m`` only changes on open/compact/grow.
        view_m = -1
        loads_m = tmp = ok2 = mask = wv = st = None
        ok_rows: List = []

        for ev in order:  # already python ints (ReplayContext pre-lists)
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                if timing:
                    t0 = pc()
                slot = -1
                if n_slots:
                    if timing and open_count:
                        # Same semantics as the classic hot path: one
                        # scan per arrival with a non-empty open list,
                        # one fit check per open bin it inspects.
                        scans += 1
                        checks += open_count
                    m = n_slots
                    if m != view_m:
                        view_m = m
                        loads_m = loads[:, :m]
                        tmp = fit_buf[:, :m]
                        ok2 = ok_buf[:, :m]
                        ok_rows = [ok2[j] for j in range(d)]
                        mask = ok_rows[0] if d == 1 else mask_buf[:m]
                        wv = w_buf[:m]
                        st = stamp_buf[:m]
                    np_add(loads_m, sizes_col[pos], out=tmp)
                    np_less_equal(tmp, slack_col, out=ok2)
                    if d > 1:
                        np_logical_and(ok_rows[0], ok_rows[1], out=mask)
                        for j in range(2, d):
                            np_logical_and(mask, ok_rows[j], out=mask)
                    # Closed slots hold +inf residuals (written at close
                    # time), so the fit test rejects them without a
                    # separate alive conjunction.
                    if mtf:
                        # first fitting bin in recency order == fitting
                        # slot with the highest (unique) stamp
                        sel = int(np_where(mask, st, neg_inf).argmax())
                        if mask[sel]:
                            slot = sel
                    elif ff:
                        sel = int(mask.argmax())
                        if mask[sel]:
                            slot = sel
                    elif lf:
                        sel = m - 1 - int(mask[::-1].argmax())
                        if mask[sel]:
                            slot = sel
                    elif ranked:
                        # argmax/argmin keep the first occurrence, i.e.
                        # the earliest-opened bin -- the classic
                        # tie-break.
                        if bf:
                            sel = int(np_where(mask, wv, neg_inf).argmax())
                        else:
                            sel = int(np_where(mask, wv, pos_inf).argmin())
                        if mask[sel]:
                            slot = sel
                    else:  # random_fit: same draw count/modulus as classic
                        fitting = mask.nonzero()[0]
                        if fitting.size:
                            slot = int(fitting[int(rng.integers(fitting.size))])

                size = sizes[pos]
                if slot >= 0:
                    opened_new = False
                    bid = slot_bin[slot]
                    colv = loads[:, slot]
                    np_add(colv, size, out=colv)
                    residents[slot].append(pos)
                else:
                    opened_new = True
                    bid = bin_count
                    bin_count += 1
                    if n_slots == cap_slots:
                        cap_slots *= 2
                        grown = np.zeros((d, cap_slots), dtype=np.float64)
                        grown[:, :n_slots] = loads
                        loads = grown
                        fit_buf = np.empty((d, cap_slots), dtype=np.float64)
                        ok_buf = np.empty((d, cap_slots), dtype=bool)
                        mask_buf = np.empty(cap_slots, dtype=bool)
                        grown_w = np.empty(cap_slots, dtype=np.float64)
                        grown_w[:n_slots] = w_buf[:n_slots]
                        w_buf = grown_w
                        grown_s = np.empty(cap_slots, dtype=np.float64)
                        grown_s[:n_slots] = stamp_buf[:n_slots]
                        stamp_buf = grown_s
                        view_m = -1  # views point at the old buffers
                    slot = n_slots
                    n_slots += 1
                    slot_bin.append(bid)
                    alive.append(True)
                    colv = loads[:, slot]
                    colv[:] = size  # bitwise equal to zeros + size
                    residents.append([pos])
                    slot_of[bid] = slot
                    open_count += 1
                bin_of[pos] = bid
                if ranked:
                    # Incremental per-slot weight: the same measure
                    # function of the same load vector the classic scan
                    # would evaluate, computed once per mutation instead
                    # of once per candidate per arrival.
                    if linf_m:
                        w_buf[slot] = max(colv.tolist())  # exact: no rounding
                    elif l1_m:
                        # contiguous copy so np.add.reduce follows the
                        # same pairwise routine as the classic np.sum
                        # over a bin's (contiguous) load vector
                        w_buf[slot] = np_add_reduce(colv.copy())
                    else:  # lp: (sum(v**p)) ** (1/p)
                        rc = colv.copy()
                        np_power(rc, p_exp, out=rc)  # ufunc pow, as classic v**p
                        # outer root via C pow (python float **), matching
                        # the classic np.float64.__pow__ -- numpy's
                        # vectorized power loop drifts from it in the
                        # last ulp
                        w_buf[slot] = float(np_add_reduce(rc)) ** inv_p
                elif mtf:
                    stamp_buf[slot] = tcount  # move to front of recency order
                    tcount += 1
                if timing:
                    dispatch_s += pc() - t0
                    if opened_new and open_count > peak_open:
                        peak_open = open_count
            else:  # ---------------------------------------- departure
                pos = ev - n
                bid = bin_of[pos]
                slot = slot_of[bid]
                res = residents[slot]
                res.remove(pos)
                if res:
                    if not stale:
                        # Re-sum sequentially in pack order, exactly like
                        # Bin.remove -- see "Bit-identity contract" above.
                        # ufunc.accumulate is a sequential left-to-right
                        # recurrence (never pairwise), so the running sum
                        # is bitwise identical to the explicit loop; the
                        # one- and two-resident shortcuts are the same
                        # sum with fewer dispatches (0 + a == a and
                        # (0 + a) + b == a + b exactly).
                        lr = len(res)
                        colv = loads[:, slot]
                        if lr == 1:
                            colv[:] = sizes[res[0]]
                        elif lr == 2:
                            np_add(sizes[res[0]], sizes[res[1]], out=colv)
                        else:
                            acc = sizes[res]
                            np_accumulate(acc, axis=0, out=acc)
                            colv[:] = acc[-1]
                        if ranked:
                            if linf_m:
                                w_buf[slot] = max(colv.tolist())
                            elif l1_m:
                                w_buf[slot] = np_add_reduce(colv.copy())
                            else:
                                rc = colv.copy()
                                np_power(rc, p_exp, out=rc)
                                w_buf[slot] = float(np_add_reduce(rc)) ** inv_p
                else:
                    alive[slot] = False
                    loads[:, slot] = pos_inf  # hard-reject in the fit test
                    del slot_of[bid]
                    n_dead += 1
                    open_count -= 1
                    if timing:
                        closed += 1
                    if n_dead >= _COMPACT_MIN_DEAD and 2 * n_dead >= n_slots:
                        keep = [s for s in range(n_slots) if alive[s]]
                        k = len(keep)
                        idx = np.asarray(keep, dtype=np.intp)
                        loads[:, :k] = loads[:, idx]  # stable: opening order
                        if ranked:
                            w_buf[:k] = w_buf[idx]
                        elif mtf:
                            stamp_buf[:k] = stamp_buf[idx]
                        slot_bin[:] = [slot_bin[s] for s in keep]
                        alive[:] = [True] * k
                        residents[:] = [residents[s] for s in keep]
                        slot_of.clear()
                        for s in range(k):
                            slot_of[slot_bin[s]] = s
                        n_slots = k
                        n_dead = 0
                        view_m = -1  # the open prefix shrank

        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=bin_count,
                bins_closed=closed,
                peak_open_bins=peak_open,
                dispatch_time_s=dispatch_s,
            )
            col.candidate_scans += scans
            col.fit_checks += checks
        self._scratch_loads = loads
        self._scratch_fit = fit_buf
        self._scratch_ok = ok_buf
        self._scratch_mask = mask_buf
        self._scratch_w = w_buf
        self._scratch_stamp = stamp_buf
        uids = ctx.uids
        return {uids[pos]: bin_of[pos] for pos in range(n)}

    # ------------------------------------------------------------------
    # scalar next_fit kernel (numpy-family backends)
    # ------------------------------------------------------------------
    def _replay_next_fit(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        """Next Fit replay on plain Python floats.

        The policy touches one bin per arrival, so the per-event cost is
        a handful of scalar adds and compares — numpy row kernels spend
        more on dispatch than on arithmetic here.  Python float ``+``
        and ``<=`` are the same IEEE-754 double operations numpy applies
        elementwise, and the departure re-sum runs left-to-right in pack
        order, so the replay stays bit-identical to the classic engine.
        Slots are never scanned, which also makes the alive/compaction
        machinery of the other kernels unnecessary.
        """
        inst = self.instance
        items = inst.items
        n = len(items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order
        if not isinstance(sizes, list):  # numpy-layout context
            slack = slack.tolist()
            sizes = sizes.tolist()
        if not timing and d <= 2:
            # the untimed replay is the bench hot path; Next Fit's
            # classic loop is already O(1) per event, so clearing the
            # suite's speedup bar needs the d<=2 loop specialised down
            # to scalar locals (no per-event row lists, no dim loop)
            return self._replay_next_fit_scalar(slack, sizes, ctx.order, ctx.uids, n, d)
        dims = range(d)

        loads: List[List[float]] = []  # one row per slot; closed rows linger
        residents: List[List[int]] = []
        slot_of: Dict[int, int] = {}  # bin id -> slot
        bin_of = [0] * n
        current = -1  # Next Fit cursor (bin id)
        open_count = bin_count = 0
        stale = self._stale_residual_bug

        pc = perf_counter
        scans = checks = peak_open = closed = 0
        dispatch_s = 0.0

        for ev in order:
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                if timing:
                    t0 = pc()
                size = sizes[pos]
                slot = -1
                if current >= 0:
                    if timing:
                        scans += 1
                        checks += 1
                    s = slot_of[current]
                    row = loads[s]
                    for j in dims:
                        if row[j] + size[j] > slack[j]:
                            break
                    else:
                        slot = s
                if slot >= 0:
                    opened_new = False
                    bid = current
                    row = loads[slot]
                    for j in dims:
                        row[j] += size[j]
                    residents[slot].append(pos)
                else:
                    opened_new = True
                    bid = bin_count
                    bin_count += 1
                    slot = len(loads)
                    loads.append(list(size))  # 0.0 + x == x exactly
                    residents.append([pos])
                    slot_of[bid] = slot
                    open_count += 1
                    current = bid
                bin_of[pos] = bid
                if timing:
                    dispatch_s += pc() - t0
                    if opened_new and open_count > peak_open:
                        peak_open = open_count
            else:  # ---------------------------------------- departure
                pos = ev - n
                bid = bin_of[pos]
                slot = slot_of[bid]
                res = residents[slot]
                res.remove(pos)
                if res:
                    if not stale:
                        row = [0.0] * d
                        for p in res:
                            sp = sizes[p]
                            for j in dims:
                                row[j] += sp[j]
                        loads[slot] = row
                else:
                    del slot_of[bid]
                    open_count -= 1
                    if timing:
                        closed += 1
                    if current == bid:
                        current = -1

        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=bin_count,
                bins_closed=closed,
                peak_open_bins=peak_open,
                dispatch_time_s=dispatch_s,
            )
            col.candidate_scans += scans
            col.fit_checks += checks
        uids = ctx.uids
        return {uids[pos]: bin_of[pos] for pos in range(n)}

    def _replay_next_fit_scalar(self, slack, sizes, order, uids, n, d):
        """Untimed Next Fit replay specialised to ``d <= 2``.

        Scalar locals replace the per-slot row lists: one flat
        per-dimension load list, the cursor bin's slot cached in a
        local, and the ``d``-loop unrolled.  Every arithmetic operation
        (`+`, `<=`, and the left-to-right departure re-sum) is the same
        IEEE-754 double op in the same order as the generic loop, so
        the assignment stays bit-identical.
        """
        one_dim = d == 1
        s0 = [row[0] for row in sizes]
        s1 = None if one_dim else [row[1] for row in sizes]
        k0 = slack[0]
        k1 = None if one_dim else slack[1]
        l0: List[float] = []  # per-slot loads, one flat list per dim
        l1: List[float] = []
        residents: List[List[int]] = []
        slot_of: Dict[int, int] = {}  # bin id -> slot
        bin_of = [0] * n
        current = -1  # Next Fit cursor (bin id)
        cur_slot = -1
        bin_count = 0
        stale = self._stale_residual_bug

        if one_dim:
            for ev in order:
                if ev < n:  # ------------------------------ arrival
                    sz = s0[ev]
                    if current >= 0:
                        a = l0[cur_slot] + sz
                        if a <= k0:
                            l0[cur_slot] = a
                            residents[cur_slot].append(ev)
                            bin_of[ev] = current
                            continue
                    bid = bin_count
                    bin_count = bid + 1
                    cur_slot = len(l0)
                    l0.append(sz)  # 0.0 + x == x exactly
                    residents.append([ev])
                    slot_of[bid] = cur_slot
                    current = bid
                    bin_of[ev] = bid
                else:  # ------------------------------------ departure
                    pos = ev - n
                    bid = bin_of[pos]
                    slot = slot_of[bid]
                    res = residents[slot]
                    res.remove(pos)
                    if res:
                        if not stale:
                            a = 0.0
                            for p in res:
                                a += s0[p]
                            l0[slot] = a
                    else:
                        del slot_of[bid]
                        if current == bid:
                            current = -1
        else:
            for ev in order:
                if ev < n:  # ------------------------------ arrival
                    sa = s0[ev]
                    sb = s1[ev]
                    if current >= 0:
                        a = l0[cur_slot] + sa
                        if a <= k0:
                            b = l1[cur_slot] + sb
                            if b <= k1:
                                l0[cur_slot] = a
                                l1[cur_slot] = b
                                residents[cur_slot].append(ev)
                                bin_of[ev] = current
                                continue
                    bid = bin_count
                    bin_count = bid + 1
                    cur_slot = len(l0)
                    l0.append(sa)  # 0.0 + x == x exactly
                    l1.append(sb)
                    residents.append([ev])
                    slot_of[bid] = cur_slot
                    current = bid
                    bin_of[ev] = bid
                else:  # ------------------------------------ departure
                    pos = ev - n
                    bid = bin_of[pos]
                    slot = slot_of[bid]
                    res = residents[slot]
                    res.remove(pos)
                    if res:
                        if not stale:
                            a = 0.0
                            b = 0.0
                            for p in res:
                                a += s0[p]
                                b += s1[p]
                            l0[slot] = a
                            l1[slot] = b
                    else:
                        del slot_of[bid]
                        if current == bid:
                            current = -1

        return {uids[pos]: bin_of[pos] for pos in range(n)}

    # ------------------------------------------------------------------
    # pure-python backend
    # ------------------------------------------------------------------
    def _replay_python(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        inst = self.instance
        items = inst.items
        n = len(items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order

        base = self._base
        measure = self._measure
        p_exp = self._p
        mtf = base == "move_to_front"
        nf = base == "next_fit"
        rng = _np.random.default_rng(self.seed) if base == "random_fit" else None

        if measure == "linf":
            # builtin max performs no arithmetic, so it agrees bitwise
            # with the classic float(np.max(load)).
            def slot_weight(s: int) -> float:
                return max(loads[s])

        elif measure == "l1":
            # The classic l1 is float(np.sum(load)) — numpy's pairwise
            # reduction, which differs bitwise from Python's sequential
            # builtin sum for d >= 8.  Route through numpy to match.
            def slot_weight(s: int) -> float:
                return float(_np.sum(_np.asarray(loads[s])))

        else:  # lp

            def slot_weight(s: int) -> float:
                row = _np.asarray(loads[s])
                return float(_np.sum(row**p_exp) ** (1.0 / p_exp))

        loads: List[List[float]] = []  # one row per slot (no preallocation)
        slot_bin: List[int] = []
        alive: List[bool] = []
        residents: List[List[int]] = []
        slot_of: Dict[int, int] = {}
        bin_of = [0] * n
        recency: List[int] = []
        current = -1
        n_slots = n_dead = open_count = bin_count = 0
        stale = self._stale_residual_bug
        dims = range(d)

        pc = perf_counter
        scans = checks = peak_open = closed = 0
        dispatch_s = 0.0

        def fits_slot(s: int, size: List[float]) -> bool:
            # Same IEEE-754 double add/compare numpy applies elementwise.
            row = loads[s]
            for j in dims:
                if row[j] + size[j] > slack[j]:
                    return False
            return True

        for ev in order:
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                if timing:
                    t0 = pc()
                size = sizes[pos]
                slot = -1
                if nf:
                    if current >= 0:
                        if timing:
                            scans += 1
                            checks += 1
                        s = slot_of[current]
                        if fits_slot(s, size):
                            slot = s
                elif open_count:
                    if timing:
                        scans += 1
                        checks += open_count
                    if mtf:
                        for bid in recency:
                            s = slot_of[bid]
                            if fits_slot(s, size):
                                slot = s
                                break
                    elif base == "first_fit":
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                slot = s
                                break
                    elif base == "last_fit":
                        for s in range(n_slots - 1, -1, -1):
                            if alive[s] and fits_slot(s, size):
                                slot = s
                                break
                    elif base == "best_fit":
                        best_w = 0.0
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                w = slot_weight(s)
                                # strict > keeps the earliest-opened bin
                                # on ties, the classic tie-break
                                if slot < 0 or w > best_w:
                                    slot, best_w = s, w
                    elif base == "worst_fit":
                        worst_w = 0.0
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                w = slot_weight(s)
                                if slot < 0 or w < worst_w:
                                    slot, worst_w = s, w
                    else:  # random_fit
                        fitting = [
                            s for s in range(n_slots) if alive[s] and fits_slot(s, size)
                        ]
                        if fitting:
                            slot = fitting[int(rng.integers(len(fitting)))]

                if slot >= 0:
                    opened_new = False
                    bid = slot_bin[slot]
                    row = loads[slot]
                    for j in dims:
                        row[j] += size[j]
                    residents[slot].append(pos)
                else:
                    opened_new = True
                    bid = bin_count
                    bin_count += 1
                    slot = n_slots
                    n_slots += 1
                    slot_bin.append(bid)
                    alive.append(True)
                    loads.append(list(size))  # 0.0 + x == x exactly
                    residents.append([pos])
                    slot_of[bid] = slot
                    open_count += 1
                    if nf:
                        current = bid
                bin_of[pos] = bid
                if mtf and (not recency or recency[0] != bid):
                    if not opened_new:
                        recency.remove(bid)
                    recency.insert(0, bid)
                if timing:
                    dispatch_s += pc() - t0
                    if opened_new and open_count > peak_open:
                        peak_open = open_count
            else:  # ---------------------------------------- departure
                pos = ev - n
                bid = bin_of[pos]
                slot = slot_of[bid]
                res = residents[slot]
                res.remove(pos)
                if res:
                    if not stale:
                        row = [0.0] * d
                        for p in res:
                            sp = sizes[p]
                            for j in dims:
                                row[j] += sp[j]
                        loads[slot] = row
                else:
                    alive[slot] = False
                    del slot_of[bid]
                    n_dead += 1
                    open_count -= 1
                    if timing:
                        closed += 1
                    if mtf:
                        recency.remove(bid)
                    elif nf and current == bid:
                        current = -1
                    if n_dead >= _COMPACT_MIN_DEAD and 2 * n_dead >= n_slots:
                        keep = [s for s in range(n_slots) if alive[s]]
                        loads[:] = [loads[s] for s in keep]
                        slot_bin[:] = [slot_bin[s] for s in keep]
                        residents[:] = [residents[s] for s in keep]
                        alive[:] = [True] * len(keep)
                        slot_of.clear()
                        for s, bid_ in enumerate(slot_bin):
                            slot_of[bid_] = s
                        n_slots = len(keep)
                        n_dead = 0

        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=bin_count,
                bins_closed=closed,
                peak_open_bins=peak_open,
                dispatch_time_s=dispatch_s,
            )
            col.candidate_scans += scans
            col.fit_checks += checks
        uids = ctx.uids
        return {uids[pos]: bin_of[pos] for pos in range(n)}


    # ------------------------------------------------------------------
    # vectorized backend: trial-lockstep random_fit kernel
    # ------------------------------------------------------------------
    def _replay_lockstep(self, seeds: List[int]) -> List[Dict[int, int]]:
        """Advance all ``random_fit`` trials through one event pass.

        One residual tensor ``loads[d, slots, trials]`` (dimension- and
        slot-major, so each arrival's fit test is one preallocated add +
        compare per dimension over a *contiguous* ``(m, trials)`` block,
        chained with ``logical_and``) replaces the per-trial residual
        matrix; each arrival computes every trial's fit-mask in a single
        batched pass, then draws one slot per trial from that trial's
        own :class:`numpy.random.Generator` (exactly one ``integers``
        call per non-empty candidate set, so the draw stream is
        bit-identical to a fresh single-seed run).

        Trials diverge structurally — different bins open and close per
        trial — so slot bookkeeping (residents, bin ids, compaction) is
        per-trial while the arithmetic stays batched:

        * fit masks:   closed and never-opened slots hold ``+inf`` load,
          so the add + compare rejects them with no aliveness
          conjunction and no per-trial width bookkeeping in the hot
          path;
        * placement:   cumulative-count selection of each trial's k-th
          fitting slot, then one fancy-indexed ``+= size`` update per
          dimension;
        * departures:  surviving residents re-summed across trials with
          one zero-padded :func:`numpy.add.accumulate` per event.
          ``ufunc.accumulate`` is a strict left-to-right recurrence
          (unlike ``reduceat``/``np.sum``, which reduce pairwise and
          drift in the last ulp), so each prefix row is bitwise equal
          to the classic pack-order re-sum loop; trailing zero-row
          padding never enters the prefix that is read back.
        """
        np = _np
        inst = self.instance
        items = inst.items
        n = len(items)
        T = len(seeds)
        if self._ran:
            raise AlgorithmError(
                "FastEngine instances are single-use; build a new one or call reset()"
            )
        self._ran = True
        if n == 0:
            return [{} for _ in range(T)]
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order
        uids = ctx.uids

        rng_draw = [np.random.default_rng(s).integers for s in seeds]
        trange = range(T)
        # sizes with one trailing zero row: departure re-sum segments are
        # ragged across trials, so the gather matrix pads with index n
        # (the zero row) and the padded tail is never read back.
        sizes_ext = np.vstack([sizes, np.zeros((1, d), dtype=np.float64)])
        slack_l = slack.tolist()
        pos_inf = float("inf")
        intp = np.intp
        np_add = np.add
        np_less_equal = np.less_equal
        np_logical_and = np.logical_and
        np_greater = np.greater
        np_asarray = np.asarray
        np_accumulate = np.add.accumulate

        # Slot-major layout: ``loads[j, :m]`` (and every other hot view)
        # is a contiguous ``(m, T)`` block, so the per-arrival ufunc
        # chain never pays the strided-view penalty of a trial-major
        # ``(T, cap)`` residual.  Counts fit int32 comfortably (m slots
        # per trial), which halves the cumsum's memory traffic.
        cap = _INITIAL_SLOTS
        loads = np.full((d, cap, T), pos_inf, dtype=np.float64)
        alive = np.zeros((T, cap), dtype=bool)
        slot_bin = np.zeros((T, cap), dtype=np.int64)
        tmp = np.empty((cap, T), dtype=np.float64)
        ok_buf = np.empty((d, cap, T), dtype=bool)
        mask_buf = np.empty((cap, T), dtype=bool)
        cum_buf = np.empty((cap, T), dtype=np.int32)
        gt_buf = np.empty((cap, T), dtype=bool)
        draws = np.zeros(T, dtype=np.int32)
        all_trials = list(trange)
        rows_all = np.arange(T, dtype=intp)
        bin_of = np.zeros((T, n), dtype=np.int64)
        n_slots = [0] * T
        residents: List[List[List[int]]] = [[] for _ in trange]
        slot_of: List[Dict[int, int]] = [{} for _ in trange]
        n_dead = [0] * T
        open_count = [0] * T
        bin_count = [0] * T
        stale = self._stale_residual_bug
        m_hot = 0  # max open-slot width over trials: the batched-op width
        view_m = -1  # width the cached sub-views below were built for
        loads_rows: list = []
        ok_rows: list = []
        tmp_m = mask_m = cum_m = gt_m = None

        for ev in order:
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                size = sizes[pos]
                size_l = size.tolist()
                m = m_hot
                openers: List[int] = []
                if m:
                    if m != view_m:
                        view_m = m
                        loads_rows = [loads[j, :m] for j in range(d)]
                        ok_rows = [ok_buf[j, :m] for j in range(d)]
                        tmp_m = tmp[:m]
                        cum_m = cum_buf[:m]
                        gt_m = gt_buf[:m]
                        mask_m = mask_buf[:m] if d > 1 else ok_rows[0]
                    for j in range(d):
                        np_add(loads_rows[j], size_l[j], out=tmp_m)
                        np_less_equal(tmp_m, slack_l[j], out=ok_rows[j])
                    if d > 1:
                        np_logical_and(ok_rows[0], ok_rows[1], out=mask_m)
                        for j in range(2, d):
                            np_logical_and(mask_m, ok_rows[j], out=mask_m)
                    # candidate counts come free as the cumsum's last
                    # row (the cumsum is needed for selection anyway)
                    mask_m.cumsum(axis=0, out=cum_m)
                    counts_l = cum_m[m - 1].tolist()
                    # One Generator call per trial with candidates — the
                    # same call count and modulus as the classic engine,
                    # so every trial's stream stays reproducible.
                    for t, c in enumerate(counts_l):
                        if c:
                            draws[t] = rng_draw[t](c)
                        else:
                            openers.append(t)
                    if len(openers) < T:
                        # k-th fitting slot per trial: first row where
                        # the cumulative fit count exceeds the draw.
                        np_greater(cum_m, draws, out=gt_m)
                        sel = gt_m.argmax(axis=0)
                        if openers:
                            placers = [t for t, c in enumerate(counts_l) if c]
                            rows = np_asarray(placers, dtype=intp)
                            cols = sel[rows]
                        else:
                            placers = all_trials
                            rows = rows_all
                            cols = sel
                        for j in range(d):
                            loads[j][cols, rows] += size_l[j]
                        bin_of[rows, pos] = slot_bin[rows, cols]
                        for t, s in zip(placers, cols.tolist()):
                            residents[t][s].append(pos)
                else:
                    openers = list(trange)
                if openers:
                    mx = 0
                    for t in openers:
                        if n_slots[t] > mx:
                            mx = n_slots[t]
                    if mx >= cap:
                        cap *= 2
                        grown = np.full((d, cap, T), pos_inf, dtype=np.float64)
                        grown[:, : cap // 2] = loads
                        loads = grown
                        grown_a = np.zeros((T, cap), dtype=bool)
                        grown_a[:, : cap // 2] = alive
                        alive = grown_a
                        grown_b = np.zeros((T, cap), dtype=np.int64)
                        grown_b[:, : cap // 2] = slot_bin
                        slot_bin = grown_b
                        tmp = np.empty((cap, T), dtype=np.float64)
                        ok_buf = np.empty((d, cap, T), dtype=bool)
                        mask_buf = np.empty((cap, T), dtype=bool)
                        cum_buf = np.empty((cap, T), dtype=np.int32)
                        gt_buf = np.empty((cap, T), dtype=bool)
                        view_m = -1
                    cols_l = [n_slots[t] for t in openers]
                    rows = np_asarray(openers, dtype=intp)
                    cols = np_asarray(cols_l, dtype=intp)
                    bids: List[int] = []
                    for t, s in zip(openers, cols_l):
                        bid = bin_count[t]
                        bin_count[t] = bid + 1
                        bids.append(bid)
                        slot_of[t][bid] = s
                        residents[t].append([pos])
                        open_count[t] += 1
                        n_slots[t] = s + 1
                    barr = np_asarray(bids, dtype=np.int64)
                    for j in range(d):
                        # bitwise equal to zeros + size
                        loads[j][cols, rows] = size_l[j]
                    alive[rows, cols] = True
                    slot_bin[rows, cols] = barr
                    bin_of[rows, pos] = barr
                    if mx + 1 > m_hot:
                        m_hot = mx + 1
            else:  # ---------------------------------------- departure
                pos = ev - n
                # Per-trial bookkeeping first; batch the surviving-bin
                # re-sums into one padded accumulate at the end of the
                # event.
                flat: List[int] = []
                lens: List[int] = []
                tr_idx: List[int] = []
                sl_idx: List[int] = []
                cl_t: List[int] = []
                cl_s: List[int] = []
                compacted = False
                bids_l = bin_of[:, pos].tolist()
                for t in trange:
                    bid = bids_l[t]
                    s = slot_of[t][bid]
                    res = residents[t][s]
                    res.remove(pos)
                    if res:
                        if not stale:
                            flat.extend(res)
                            lens.append(len(res))
                            tr_idx.append(t)
                            sl_idx.append(s)
                    else:
                        alive[t, s] = False
                        cl_t.append(t)
                        cl_s.append(s)
                        del slot_of[t][bid]
                        n_dead[t] += 1
                        open_count[t] -= 1
                        ns_t = n_slots[t]
                        if n_dead[t] >= _COMPACT_MIN_DEAD and 2 * n_dead[t] >= ns_t:
                            keep = np.flatnonzero(alive[t, :ns_t])
                            k = keep.size
                            for j in range(d):
                                lj = loads[j]
                                lj[:k, t] = lj[keep, t]
                                lj[k:ns_t, t] = pos_inf
                            slot_bin[t, :k] = slot_bin[t, keep]
                            alive[t, :k] = True
                            alive[t, k:ns_t] = False
                            rt = residents[t]
                            residents[t] = [rt[s2] for s2 in keep.tolist()]
                            so = slot_of[t]
                            so.clear()
                            sbt = slot_bin[t]
                            for s2 in range(k):
                                so[int(sbt[s2])] = s2
                            n_slots[t] = k
                            n_dead[t] = 0
                            compacted = True
                            # compaction rewrote this trial's whole slot
                            # range (dead tail poisoned above), so its
                            # pending close-poison writes would now land
                            # on relocated live slots — drop them
                            if t in cl_t:
                                pairs = [p for p in zip(cl_t, cl_s) if p[0] != t]
                                cl_t = [p[0] for p in pairs]
                                cl_s = [p[1] for p in pairs]
                if cl_t:
                    # one batched poison per event: the fit test rejects
                    # closed slots because their load reads +inf
                    rows = np_asarray(cl_t, dtype=intp)
                    cols = np_asarray(cl_s, dtype=intp)
                    for j in range(d):
                        loads[j][cols, rows] = pos_inf
                if compacted:
                    m_hot = max(n_slots)
                    view_m = -1
                if flat:
                    lens_arr = np_asarray(lens, dtype=intp)
                    nseg = lens_arr.size
                    maxlen = int(lens_arr.max())
                    if maxlen == 1:
                        # every surviving bin holds one resident: its
                        # load is exactly that item's size vector
                        vals = sizes[np_asarray(flat, dtype=intp)]
                    else:
                        # One left-to-right accumulate over a zero-padded
                        # (segments, maxlen, d) gather; row lens[i]-1 of
                        # segment i is the sequential pack-order sum,
                        # bitwise identical to the classic re-sum loop.
                        idxm = np.full((nseg, maxlen), n, dtype=intp)
                        idxm[np.arange(maxlen) < lens_arr[:, None]] = np_asarray(
                            flat, dtype=intp
                        )
                        acc = sizes_ext[idxm]
                        np_accumulate(acc, axis=1, out=acc)
                        vals = acc[np.arange(nseg), lens_arr - 1]
                    rows = np_asarray(tr_idx, dtype=intp)
                    cols = np_asarray(sl_idx, dtype=intp)
                    for j in range(d):
                        loads[j][cols, rows] = vals[:, j]

        out: List[Dict[int, int]] = []
        for t in trange:
            row = bin_of[t].tolist()
            out.append({uids[pos]: row[pos] for pos in range(n)})
        return out


def fast_simulate(
    policy: str,
    instance: Instance,
    seed: int = 0,
    collector: Optional[StatsCollector] = None,
    backend: Optional[str] = None,
) -> Packing:
    """Convenience wrapper: one fast run of ``policy`` on ``instance``.

    Equivalent to ``FastEngine(instance, policy, seed, collector,
    backend).run()``.
    """
    return FastEngine(instance, policy, seed=seed, collector=collector, backend=backend).run()


# Stock registrations: the seven Section 7 policy classes whose default
# configuration the kernels reproduce bit-for-bit.  Imported down here so
# the eligibility table never participates in an import cycle with
# repro.algorithms (whose modules only depend on repro.core).
from ..algorithms.best_fit import BestFit, WorstFit  # noqa: E402
from ..algorithms.first_fit import FirstFit  # noqa: E402
from ..algorithms.last_fit import LastFit  # noqa: E402
from ..algorithms.move_to_front import MoveToFront  # noqa: E402
from ..algorithms.next_fit import NextFit  # noqa: E402
from ..algorithms.random_fit import RandomFit  # noqa: E402

register_kernel_class(MoveToFront, "move_to_front")
register_kernel_class(FirstFit, "first_fit")
register_kernel_class(NextFit, "next_fit")
register_kernel_class(BestFit, "best_fit")
register_kernel_class(WorstFit, "worst_fit")
register_kernel_class(LastFit, "last_fit")
register_kernel_class(RandomFit, "random_fit")

# Load-measure variants: the ranked policies carry L1/Lp fast kernels
# too.  p=None registers the whole p >= 1 family (the kernel takes the
# exponent from the policy spec, e.g. "best_fit:lp:3.0").
register_kernel_class(BestFit, "best_fit", measure="l1")
register_kernel_class(BestFit, "best_fit", measure="lp")
register_kernel_class(WorstFit, "worst_fit", measure="l1")
register_kernel_class(WorstFit, "worst_fit", measure="lp")
