"""Flat-array fast-path twin of the classic simulation :class:`Engine`.

The classic engine replays Algorithm 1 over per-bin Python objects: every
arrival re-stacks the open bins' load vectors into a fresh matrix before
the vectorised fit check, and every bin transition walks observer hooks.
That object traversal — not the arithmetic — dominates the Table 2 /
Figure 4 sweeps and the ``repro verify`` fuzz harness.

:class:`FastEngine` keeps the *same decision procedure* in flat parallel
arrays instead:

* a dense residual-capacity matrix ``loads`` of shape ``(slots, d)`` with
  one row per ever-opened bin slot, updated incrementally on pack and
  recomputed per-row on departure (see below);
* ``alive`` open/closed flags plus tombstone compaction, so closed bins
  cost nothing after a compaction sweep and the matrix stays dense;
* a pre-sorted event-index array built once per run (``np.lexsort`` over
  ``(time, kind, seq)``) replacing the per-run event-object construction,
  preserving the exact departures-before-arrivals tie-break of
  :mod:`repro.core.events`;
* per-policy selection kernels: first-fit ``argmax`` over the fit mask,
  best/worst-fit masked ``argmax``/``argmin`` over row loads, Move To
  Front recency-list front-scan, Next Fit single-row cursor check, and a
  stream-compatible Random Fit draw.

Bit-identity contract
---------------------
For every policy in :data:`FAST_POLICIES` the engine produces the *same
item → bin assignment, bit for bit*, as the classic engine — not merely
the same cost.  Two details make this non-trivial:

1. **Departures re-sum, never subtract.**  :meth:`repro.core.bins.Bin.remove`
   recomputes the load by summing the remaining residents sequentially in
   pack order; ``(a + b) + c - b`` differs from ``a + c`` by an ulp in
   float64, so an incremental subtract would eventually flip a fit
   decision near the tolerance threshold.  The fast path performs the
   identical sequential re-sum on the affected row only.
2. **New bins copy, never accumulate.**  A fresh bin's load is
   ``0.0 + size`` elementwise, which is bitwise equal to ``size`` for the
   non-negative finite sizes :func:`repro.core.vectors.as_size_vector`
   admits, so opening writes the size row directly.

Backends
--------
Two interchangeable kernel backends produce identical decisions:

* ``"numpy"`` — vectorised mask/argmin/argmax kernels (auto-selected when
  numpy is importable, i.e. always in a standard install);
* ``"python"`` — pure-Python short-circuit scans over lists of floats.
  The scans stop at the first fitting bin where the policy allows, which
  changes nothing observable: the *selected* bin is the same, and the
  per-dimension float adds/compares are the same IEEE-754 double
  operations numpy performs elementwise.

Select explicitly via ``FastEngine(..., backend=...)`` or globally with
the ``REPRO_FASTPATH_BACKEND`` environment variable (the CI fastpath
matrix leg pins each backend in turn).  The two replay loops are
deliberately written out long-hand per backend — factoring the shared
bookkeeping through per-event callables would put several Python method
calls back on the hot path, which is exactly the overhead this module
exists to remove.

Integration
-----------
``simulate(algorithm, instance, fast=True)`` auto-routes eligible runs
here (see :func:`fast_policy_for` for eligibility) and silently falls
back to the classic engine otherwise; ``repro run --engine fast`` and the
``parallel_sweep(..., engine="fast")`` chunked dispatch build on the same
resolution.  ``repro.verify`` holds the safety net: a classic-vs-fastpath
differential oracle in the harness, a three-way corpus test, and a
deliberately broken stale-residual mutant that must be caught.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union

try:  # numpy is a hard dependency of repro.core, but the fast kernels
    # degrade to the pure-python backend if it ever goes missing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

from ..core.errors import AlgorithmError, ConfigurationError
from ..core.instance import Instance
from ..core.packing import Packing
from ..core.vectors import EPS
from ..observability.stats import StatsCollector

__all__ = [
    "BACKEND_ENV",
    "NUMPY_BACKEND",
    "PYTHON_BACKEND",
    "FAST_POLICIES",
    "available_backends",
    "default_backend",
    "choose_backend",
    "register_kernel_class",
    "fast_policy_for",
    "fast_ineligibility_reason",
    "ReplayContext",
    "FastEngine",
    "fast_simulate",
]

NUMPY_BACKEND = "numpy"
PYTHON_BACKEND = "python"

#: Environment variable overriding backend auto-selection
#: (``numpy`` | ``python``).  The CI fastpath matrix leg sets it.
BACKEND_ENV = "REPRO_FASTPATH_BACKEND"

#: The seven Section 7 registry policies the fast kernels implement.
FAST_POLICIES = frozenset(
    {
        "move_to_front",
        "first_fit",
        "next_fit",
        "best_fit",
        "worst_fit",
        "last_fit",
        "random_fit",
    }
)

_INITIAL_SLOTS = 64
#: Compact the slot arrays once at least this many tombstones exist *and*
#: they are at least half of all slots — amortised O(1) per close.
_COMPACT_MIN_DEAD = 32


def available_backends() -> Tuple[str, ...]:
    """Kernel backends usable in this process, preferred first."""
    if _np is not None:
        return (NUMPY_BACKEND, PYTHON_BACKEND)
    return (PYTHON_BACKEND,)


def default_backend() -> str:
    """Resolve the backend to use when none is requested explicitly.

    Honours :data:`BACKEND_ENV` when set (raising
    :class:`~repro.core.errors.ConfigurationError` on an unknown or
    unavailable value); otherwise auto-selects ``"numpy"`` when numpy is
    importable and ``"python"`` as the fallback.
    """
    env = os.environ.get(BACKEND_ENV, "").strip().lower()
    if env:
        if env not in (NUMPY_BACKEND, PYTHON_BACKEND):
            raise ConfigurationError(
                f"{BACKEND_ENV}={env!r} is not a fastpath backend; "
                f"expected {NUMPY_BACKEND!r} or {PYTHON_BACKEND!r}"
            )
        if env == NUMPY_BACKEND and _np is None:
            raise ConfigurationError(
                f"{BACKEND_ENV}={NUMPY_BACKEND!r} but numpy is not importable"
            )
        return env
    return NUMPY_BACKEND if _np is not None else PYTHON_BACKEND


#: Mean-concurrency threshold of :func:`choose_backend`.  Below it the
#: pure-python backend's short-circuit scans beat numpy's per-arrival
#: mask/argmax kernel overhead (few open bins, tiny masks); above it the
#: vectorised kernels win.  Calibrated on the bench grid: the Table 2 /
#: Figure 4 shapes (n=1000, mu<=100, ~5-50 concurrent items) sit well
#: below, the xlarge fastpath scenario (n=5000, mu=100, ~250 concurrent)
#: well above.
_PYTHON_MAX_MEAN_CONCURRENCY = 128.0


def choose_backend(instance: Instance) -> str:
    """Pick the likely-fastest backend for replaying ``instance``.

    An explicit :data:`BACKEND_ENV` override always wins (resolved via
    :func:`default_backend`, so bad values still raise).  Otherwise the
    decision keys on the estimated mean number of concurrently active
    items, ``total_duration / horizon length``: per-arrival work is
    proportional to the number of open bins, which this ratio bounds.
    Both backends produce bit-identical assignments, so this is purely a
    performance choice — :class:`BatchRunner
    <repro.simulation.batch.BatchRunner>` uses it per instance.
    """
    if os.environ.get(BACKEND_ENV, "").strip():
        return default_backend()
    if _np is None:
        return PYTHON_BACKEND
    length = instance.horizon.length
    if length <= 0.0:
        return NUMPY_BACKEND
    mean_concurrency = instance.total_duration / length
    if mean_concurrency <= _PYTHON_MAX_MEAN_CONCURRENCY:
        return PYTHON_BACKEND
    return NUMPY_BACKEND


# ----------------------------------------------------------------------
# eligibility: which algorithm objects may be routed to the fast path
# ----------------------------------------------------------------------

#: Exact algorithm classes whose dispatch the fast kernels reproduce,
#: mapped to their kernel policy name.  Checked by *identity* — a
#: subclass may override ``choose``/``on_packed`` and silently diverge,
#: so it must opt in through :func:`register_kernel_class`.
_KERNEL_CLASSES: Dict[type, str] = {}


def register_kernel_class(cls: type, policy: str) -> None:
    """Declare that ``cls`` instances behave exactly like ``policy``.

    Extension hook for algorithm classes outside the stock seven (or
    subclasses of them) whose decisions provably match a fast kernel.
    Registered classes become eligible for :func:`fast_policy_for`
    resolution when their ``fast_kernel`` attribute names the policy.
    """
    if policy not in FAST_POLICIES:
        raise ConfigurationError(
            f"cannot register {cls!r} for unknown fast policy {policy!r}"
        )
    _KERNEL_CLASSES[cls] = policy


def fast_policy_for(algorithm: Union[str, object]) -> Optional[Tuple[str, int]]:
    """Resolve an algorithm spec to ``(policy, seed)`` if fast-eligible.

    Accepts a registry name or an algorithm object.  An object is
    eligible when (a) its class advertises a kernel via the
    ``fast_kernel`` attribute, and (b) its *exact* class is registered
    for that kernel (:func:`register_kernel_class`) — configuration that
    changes decisions (e.g. ``BestFit(measure="l1")``) clears
    ``fast_kernel`` on the instance, and unregistered subclasses are
    rejected outright.  Returns ``None`` when the classic engine must be
    used.
    """
    if isinstance(algorithm, str):
        return (algorithm, 0) if algorithm in FAST_POLICIES else None
    kernel = getattr(algorithm, "fast_kernel", None)
    if kernel not in FAST_POLICIES:
        return None
    if _KERNEL_CLASSES.get(type(algorithm)) != kernel:
        return None
    return kernel, int(getattr(algorithm, "seed", 0))


def fast_ineligibility_reason(algorithm: Union[str, object]) -> Optional[str]:
    """Why :func:`fast_policy_for` rejects this spec (``None`` = eligible).

    The distinct causes matter operationally: a policy whose *class* has
    no kernel will never speed up, while a stock class whose
    *configuration* cleared ``fast_kernel`` (e.g.
    ``BestFit(measure="l1")`` — the decision-changing non-L-infinity
    load measures) could gain a kernel in a later PR.  Engine fallbacks
    surface this reason through the once-per-cause
    :class:`RuntimeWarning` and the ``fastpath_fallbacks`` counter, so
    sweeps silently pinned to the classic engine are visible (ROADMAP
    item 2's eligibility gap).  Every reason contains the phrase
    ``"no fast kernel"``.
    """
    if fast_policy_for(algorithm) is not None:
        return None
    if isinstance(algorithm, str):
        return f"no fast kernel for policy {algorithm!r}"
    kernel = getattr(algorithm, "fast_kernel", None)
    cls = type(algorithm).__name__
    if kernel is None:
        # the stock classes set fast_kernel at class level and clear it
        # on the instance for decision-changing configurations
        if type(algorithm) in _KERNEL_CLASSES or getattr(type(algorithm), "fast_kernel", None):
            return (
                f"no fast kernel for this {cls} configuration (a "
                f"decision-changing option, e.g. a non-L-infinity load "
                f"measure, cleared it)"
            )
        return f"no fast kernel for class {cls}"
    if kernel not in FAST_POLICIES:
        return f"no fast kernel named {kernel!r} (unknown fast policy)"
    return f"no fast kernel registration for class {cls} (kernel {kernel!r})"


# ----------------------------------------------------------------------
# shared replay inputs
# ----------------------------------------------------------------------
class ReplayContext:
    """Policy-independent replay inputs for one ``(instance, backend)``.

    Everything a kernel reads but never writes: the stacked size matrix,
    the tolerance-adjusted capacity slack, the lexsorted flat event-index
    array (the ``(time, kind, seq)`` order of :mod:`repro.core.events`,
    encoded as ``pos`` for arrivals and ``n + pos`` for departures), and
    the uid list used to emit the final assignment.  Building these is
    roughly half the cost of a single replay at Table 2 scale, so
    :class:`~repro.simulation.batch.BatchRunner` builds one context per
    instance and shares it across all N policies x M trials; a lone
    :class:`FastEngine` builds its own lazily on first run.
    """

    __slots__ = ("instance", "backend", "n", "d", "sizes", "slack", "order", "uids")

    def __init__(self, instance: Instance, backend: Optional[str] = None) -> None:
        resolved = default_backend() if backend is None else backend
        if resolved not in (NUMPY_BACKEND, PYTHON_BACKEND):
            raise ConfigurationError(
                f"unknown fastpath backend {resolved!r}; expected "
                f"{NUMPY_BACKEND!r} or {PYTHON_BACKEND!r}"
            )
        if resolved == NUMPY_BACKEND and _np is None:
            raise ConfigurationError("numpy backend requested but numpy is unavailable")
        items = instance.items
        n = len(items)
        self.instance = instance
        self.backend = resolved
        self.n = n
        self.d = instance.d
        self.uids = [it.uid for it in items]
        if resolved == NUMPY_BACKEND:
            np = _np
            capacity = np.asarray(instance.capacity, dtype=np.float64)
            self.slack = capacity + EPS * np.maximum(capacity, 1.0)
            self.sizes = np.stack([it.size for it in items])
            # Pre-sorted event indices: value < n is the arrival of item
            # position `value`; value >= n is the departure of `value - n`.
            # lexsort's last key is primary, matching the classic engine's
            # (time, kind, seq) sort with DEPARTURE(0) < ARRIVAL(1),
            # arrival seq = instance position, departure seq = uid.
            times = np.empty(2 * n, dtype=np.float64)
            kinds = np.empty(2 * n, dtype=np.int64)
            seqs = np.empty(2 * n, dtype=np.int64)
            for pos, it in enumerate(items):
                times[pos] = it.arrival
                times[n + pos] = it.departure
                seqs[pos] = pos
                seqs[n + pos] = it.uid
            kinds[:n] = 1
            kinds[n:] = 0
            self.order = np.lexsort((seqs, kinds, times)).tolist()
        else:
            self.slack = [float(c) + EPS * max(float(c), 1.0) for c in instance.capacity]
            self.sizes = [it.size.tolist() for it in items]
            keys = []
            for pos, it in enumerate(items):
                keys.append((it.arrival, 1, pos, pos))
                keys.append((it.departure, 0, it.uid, n + pos))
            keys.sort(key=lambda k: (k[0], k[1], k[2]))
            self.order = [k[3] for k in keys]


#: Sentinel distinguishing "leave the collector alone" from "clear it"
#: in :meth:`FastEngine.reset`.
_UNSET = object()


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class FastEngine:
    """Replays one instance through one fast policy kernel.

    Drop-in counterpart of :class:`~repro.simulation.engine.Engine` for
    the policies in :data:`FAST_POLICIES`: same single-use contract, same
    returned :class:`~repro.core.packing.Packing`, bit-identical item →
    bin assignment.  It does **not** support observers — observer fan-out
    is per-event Python dispatch, the cost the fast path removes; runs
    that need observers go through the classic engine (``simulate``'s
    auto-selection enforces this).

    Parameters
    ----------
    instance:
        The instance to replay.
    policy:
        A policy name from :data:`FAST_POLICIES`.
    seed:
        Random stream seed (``random_fit`` only; ignored otherwise).
    collector:
        Optional :class:`~repro.observability.stats.StatsCollector`.
        When given, the run records the same counters as an instrumented
        classic run — identical deterministic part — plus the
        ``fastpath_runs`` tally.
    backend:
        ``"numpy"`` or ``"python"``; default :func:`default_backend`.
    context:
        Optional pre-built :class:`ReplayContext` for this instance and
        backend — the batched sweep path builds one per instance and
        shares it across policies/trials.  Built lazily when omitted.
    """

    __slots__ = (
        "instance",
        "policy",
        "name",
        "seed",
        "collector",
        "backend",
        "_ran",
        "_ctx",
        "_scratch_loads",
        "_scratch_slot_bin",
        "_scratch_alive",
    )

    #: Mutation hook for :mod:`repro.verify.mutation`: the stale-residual
    #: mutant subclass flips this to skip the departure re-sum, which the
    #: classic-vs-fastpath differential oracle must catch.
    _stale_residual_bug = False

    def __init__(
        self,
        instance: Instance,
        policy: str,
        seed: int = 0,
        collector: Optional[StatsCollector] = None,
        backend: Optional[str] = None,
        context: Optional[ReplayContext] = None,
    ) -> None:
        if policy not in FAST_POLICIES:
            raise ConfigurationError(
                f"fastpath does not implement policy {policy!r}; supported: "
                f"{', '.join(sorted(FAST_POLICIES))}"
            )
        resolved = default_backend() if backend is None else backend
        if resolved not in (NUMPY_BACKEND, PYTHON_BACKEND):
            raise ConfigurationError(
                f"unknown fastpath backend {resolved!r}; expected "
                f"{NUMPY_BACKEND!r} or {PYTHON_BACKEND!r}"
            )
        if resolved == NUMPY_BACKEND and _np is None:
            raise ConfigurationError("numpy backend requested but numpy is unavailable")
        if policy == "random_fit" and _np is None:
            raise ConfigurationError(
                "random_fit needs numpy's Generator to reproduce the classic "
                "engine's random stream"
            )
        if context is not None:
            if context.instance is not instance:
                raise ConfigurationError(
                    "replay context was built for a different instance"
                )
            if context.backend != resolved:
                raise ConfigurationError(
                    f"replay context targets backend {context.backend!r}, "
                    f"engine uses {resolved!r}"
                )
        self.instance = instance
        self.policy = policy
        #: Policy name, mirroring ``OnlineAlgorithm.name`` so collectors
        #: and reports label fast runs identically to classic ones.
        self.name = policy
        self.seed = int(seed)
        self.collector = collector
        self.backend = resolved
        self._ran = False
        self._ctx = context
        # numpy scratch buffers (residual matrix + bookkeeping), kept
        # across reset() so re-armed replays skip the reallocation.
        self._scratch_loads = None
        self._scratch_slot_bin = None
        self._scratch_alive = None

    # ------------------------------------------------------------------
    def reset(
        self,
        policy: Optional[str] = None,
        seed: Optional[int] = None,
        context: Optional[ReplayContext] = None,
        instance: Optional[Instance] = None,
        collector=_UNSET,
    ) -> "FastEngine":
        """Re-arm the engine for another replay, reusing scratch buffers.

        The single-use contract of :meth:`run` still holds between
        resets — ``reset()`` is the *explicit* opt-in that makes reuse
        safe: it clears the ran flag and (optionally) swaps the policy,
        seed, collector, instance, or shared :class:`ReplayContext`,
        while the residual-matrix scratch buffers stay allocated.  This
        is what lets :class:`~repro.simulation.batch.BatchRunner` replay
        one instance under N policies x M trials without N*M
        reallocations.  Returns ``self`` for chaining.
        """
        if context is not None:
            if instance is not None and context.instance is not instance:
                raise ConfigurationError(
                    "reset(): context and instance arguments disagree"
                )
            if context.backend != self.backend:
                raise ConfigurationError(
                    f"replay context targets backend {context.backend!r}, "
                    f"engine uses {self.backend!r}"
                )
            instance = context.instance
        if instance is not None and instance is not self.instance:
            self.instance = instance
            self._ctx = None  # stale context: rebuilt lazily (or adopted below)
        if context is not None:
            self._ctx = context
        if policy is not None:
            if policy not in FAST_POLICIES:
                raise ConfigurationError(
                    f"fastpath does not implement policy {policy!r}; supported: "
                    f"{', '.join(sorted(FAST_POLICIES))}"
                )
            self.policy = policy
            self.name = policy
        if self.policy == "random_fit" and _np is None:
            raise ConfigurationError(
                "random_fit needs numpy's Generator to reproduce the classic "
                "engine's random stream"
            )
        if seed is not None:
            self.seed = int(seed)
        if collector is not _UNSET:
            self.collector = collector
        self._ran = False
        return self

    # ------------------------------------------------------------------
    def run(self) -> Packing:
        """Execute the full event stream and return the final packing.

        Like the classic engine, a :class:`FastEngine` is single-use: a
        second call raises :class:`~repro.core.errors.AlgorithmError`
        unless the engine is explicitly re-armed with :meth:`reset`.
        """
        return Packing.from_assignment(
            self.instance, self._execute(), algorithm=self.policy
        )

    def run_assignment(self) -> Dict[int, int]:
        """Execute the replay and return the raw uid → bin-id assignment.

        Skips :class:`~repro.core.packing.Packing` construction — the
        batched sweep path derives Eq. 1 cost and the bin count directly
        from the assignment (bit-identically) instead of materialising
        per-bin objects.  Same single-use/:meth:`reset` contract as
        :meth:`run`.
        """
        return self._execute()

    def run_trials(self, seeds) -> List[Dict[int, int]]:
        """Replay one instance under many ``random_fit`` seeds in one call.

        The batched-trials kernel invocation: one shared
        :class:`ReplayContext` (event index, sizes, slack) and one set of
        scratch buffers serve every seed; only the draw stream differs
        per trial.  Returns one assignment per seed, each bit-identical
        to a fresh single run with that seed.
        """
        if self.policy != "random_fit":
            raise ConfigurationError(
                "run_trials() batches seeded trials; only random_fit consumes "
                f"the seed (engine policy is {self.policy!r})"
            )
        out: List[Dict[int, int]] = []
        for s in seeds:
            self.reset(seed=int(s))
            out.append(self._execute())
        return out

    def _execute(self) -> Dict[int, int]:
        if self._ran:
            raise AlgorithmError(
                "FastEngine instances are single-use; build a new one or call reset()"
            )
        self._ran = True
        col = self.collector
        t_run = perf_counter() if col is not None else 0.0
        if col is not None:
            col.run_started(self.instance, self)
        if self.backend == NUMPY_BACKEND:
            assignment = self._replay_numpy(col)
        else:
            assignment = self._replay_python(col)
        if col is not None:
            col.fastpath_runs += 1
            col.run_finished(
                perf_counter() - t_run,
                context={"instance": self.instance.name, "n": self.instance.n,
                         "engine": "fast", "backend": self.backend},
            )
        return assignment

    def _context(self) -> ReplayContext:
        ctx = self._ctx
        if ctx is None or ctx.instance is not self.instance:
            ctx = self._ctx = ReplayContext(self.instance, self.backend)
        return ctx

    # ------------------------------------------------------------------
    # numpy backend
    # ------------------------------------------------------------------
    def _replay_numpy(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        np = _np
        inst = self.instance
        items = inst.items
        n = len(items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order

        policy = self.policy
        mtf = policy == "move_to_front"
        nf = policy == "next_fit"
        rng = np.random.default_rng(self.seed) if policy == "random_fit" else None

        # Reuse the scratch buffers from a previous (reset) run when the
        # dimensionality matches.  No zeroing needed: a slot row only
        # becomes visible to the kernels (all reads are over [:n_slots])
        # after an open writes loads/slot_bin/alive for that slot, and
        # compaction clears alive[k:n_slots] explicitly.
        loads = self._scratch_loads
        if loads is not None and loads.shape[1] == d:
            cap_slots = loads.shape[0]
            slot_bin = self._scratch_slot_bin
            alive = self._scratch_alive
        else:
            cap_slots = _INITIAL_SLOTS
            loads = np.zeros((cap_slots, d), dtype=np.float64)
            slot_bin = np.zeros(cap_slots, dtype=np.int64)
            alive = np.zeros(cap_slots, dtype=bool)
        residents: List[List[int]] = []  # item positions per slot, pack order
        slot_of: Dict[int, int] = {}  # bin id -> slot
        bin_of = [0] * n  # item position -> bin id
        recency: List[int] = []  # MTF bin ids, most recently used first
        current = -1  # Next Fit cursor (bin id)
        n_slots = n_dead = open_count = bin_count = 0
        stale = self._stale_residual_bug

        pc = perf_counter
        scans = checks = peak_open = closed = 0
        dispatch_s = 0.0

        for ev in order:
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                if timing:
                    t0 = pc()
                size = sizes[pos]
                slot = -1
                if nf:
                    if current >= 0:
                        if timing:
                            scans += 1
                            checks += 1
                        s = slot_of[current]
                        if ((loads[s] + size) <= slack).all():
                            slot = s
                elif n_slots:
                    if timing and open_count:
                        # Same semantics as the classic hot path: one
                        # scan per arrival with a non-empty open list,
                        # one fit check per open bin it inspects.
                        scans += 1
                        checks += open_count
                    m = n_slots
                    mask = ((loads[:m] + size) <= slack).all(axis=1)
                    if n_dead:
                        mask &= alive[:m]
                    if mtf:
                        for bid in recency:
                            s = slot_of[bid]
                            if mask[s]:
                                slot = s
                                break
                    elif policy == "first_fit":
                        if mask.any():
                            slot = int(mask.argmax())
                    elif policy == "last_fit":
                        if mask.any():
                            slot = m - 1 - int(mask[::-1].argmax())
                    elif policy == "best_fit":
                        if mask.any():
                            # argmax keeps the first occurrence, i.e. the
                            # earliest-opened bin — the classic tie-break.
                            w = np.where(mask, loads[:m].max(axis=1), -np.inf)
                            slot = int(w.argmax())
                    elif policy == "worst_fit":
                        if mask.any():
                            w = np.where(mask, loads[:m].max(axis=1), np.inf)
                            slot = int(w.argmin())
                    else:  # random_fit: same draw count and modulus as classic
                        fitting = np.flatnonzero(mask)
                        if fitting.size:
                            slot = int(fitting[int(rng.integers(fitting.size))])

                if slot >= 0:
                    opened_new = False
                    bid = int(slot_bin[slot])
                    loads[slot] += size
                    residents[slot].append(pos)
                else:
                    opened_new = True
                    bid = bin_count
                    bin_count += 1
                    if n_slots == cap_slots:
                        cap_slots *= 2
                        grown = np.zeros((cap_slots, d), dtype=np.float64)
                        grown[:n_slots] = loads
                        loads = grown
                        grown_b = np.zeros(cap_slots, dtype=np.int64)
                        grown_b[:n_slots] = slot_bin
                        slot_bin = grown_b
                        grown_a = np.zeros(cap_slots, dtype=bool)
                        grown_a[:n_slots] = alive
                        alive = grown_a
                    slot = n_slots
                    n_slots += 1
                    slot_bin[slot] = bid
                    alive[slot] = True
                    loads[slot] = size  # bitwise equal to zeros + size
                    residents.append([pos])
                    slot_of[bid] = slot
                    open_count += 1
                    if nf:
                        current = bid
                bin_of[pos] = bid
                if mtf and (not recency or recency[0] != bid):
                    if not opened_new:
                        recency.remove(bid)
                    recency.insert(0, bid)
                if timing:
                    dispatch_s += pc() - t0
                    if opened_new and open_count > peak_open:
                        peak_open = open_count
            else:  # ---------------------------------------- departure
                pos = ev - n
                bid = bin_of[pos]
                slot = slot_of[bid]
                res = residents[slot]
                res.remove(pos)
                if res:
                    if not stale:
                        # Re-sum sequentially in pack order, exactly like
                        # Bin.remove — see "Bit-identity contract" above.
                        row = np.zeros(d, dtype=np.float64)
                        for p in res:
                            row += sizes[p]
                        loads[slot] = row
                else:
                    alive[slot] = False
                    del slot_of[bid]
                    n_dead += 1
                    open_count -= 1
                    if timing:
                        closed += 1
                    if mtf:
                        recency.remove(bid)
                    elif nf and current == bid:
                        current = -1
                    if n_dead >= _COMPACT_MIN_DEAD and 2 * n_dead >= n_slots:
                        keep = [s for s in range(n_slots) if alive[s]]
                        k = len(keep)
                        idx = np.asarray(keep, dtype=np.intp)
                        loads[:k] = loads[idx]  # stable: preserves opening order
                        slot_bin[:k] = slot_bin[idx]
                        alive[:k] = True
                        alive[k:n_slots] = False
                        residents[:] = [residents[s] for s in keep]
                        slot_of.clear()
                        for s in range(k):
                            slot_of[int(slot_bin[s])] = s
                        n_slots = k
                        n_dead = 0

        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=bin_count,
                bins_closed=closed,
                peak_open_bins=peak_open,
                dispatch_time_s=dispatch_s,
            )
            col.candidate_scans += scans
            col.fit_checks += checks
        self._scratch_loads = loads
        self._scratch_slot_bin = slot_bin
        self._scratch_alive = alive
        uids = ctx.uids
        return {uids[pos]: bin_of[pos] for pos in range(n)}

    # ------------------------------------------------------------------
    # pure-python backend
    # ------------------------------------------------------------------
    def _replay_python(self, col: Optional[StatsCollector]) -> Dict[int, int]:
        inst = self.instance
        items = inst.items
        n = len(items)
        timing = col is not None
        if n == 0:
            if timing:
                col.record_run_totals(0, 0, 0, 0, 0, 0.0)
            return {}
        d = inst.d
        ctx = self._context()
        slack = ctx.slack
        sizes = ctx.sizes
        order = ctx.order

        policy = self.policy
        mtf = policy == "move_to_front"
        nf = policy == "next_fit"
        rng = _np.random.default_rng(self.seed) if policy == "random_fit" else None

        loads: List[List[float]] = []  # one row per slot (no preallocation)
        slot_bin: List[int] = []
        alive: List[bool] = []
        residents: List[List[int]] = []
        slot_of: Dict[int, int] = {}
        bin_of = [0] * n
        recency: List[int] = []
        current = -1
        n_slots = n_dead = open_count = bin_count = 0
        stale = self._stale_residual_bug
        dims = range(d)

        pc = perf_counter
        scans = checks = peak_open = closed = 0
        dispatch_s = 0.0

        def fits_slot(s: int, size: List[float]) -> bool:
            # Same IEEE-754 double add/compare numpy applies elementwise.
            row = loads[s]
            for j in dims:
                if row[j] + size[j] > slack[j]:
                    return False
            return True

        for ev in order:
            if ev < n:  # ---------------------------------- arrival
                pos = ev
                if timing:
                    t0 = pc()
                size = sizes[pos]
                slot = -1
                if nf:
                    if current >= 0:
                        if timing:
                            scans += 1
                            checks += 1
                        s = slot_of[current]
                        if fits_slot(s, size):
                            slot = s
                elif open_count:
                    if timing:
                        scans += 1
                        checks += open_count
                    if mtf:
                        for bid in recency:
                            s = slot_of[bid]
                            if fits_slot(s, size):
                                slot = s
                                break
                    elif policy == "first_fit":
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                slot = s
                                break
                    elif policy == "last_fit":
                        for s in range(n_slots - 1, -1, -1):
                            if alive[s] and fits_slot(s, size):
                                slot = s
                                break
                    elif policy == "best_fit":
                        best_w = 0.0
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                w = max(loads[s])
                                # strict > keeps the earliest-opened bin
                                # on ties, the classic tie-break
                                if slot < 0 or w > best_w:
                                    slot, best_w = s, w
                    elif policy == "worst_fit":
                        worst_w = 0.0
                        for s in range(n_slots):
                            if alive[s] and fits_slot(s, size):
                                w = max(loads[s])
                                if slot < 0 or w < worst_w:
                                    slot, worst_w = s, w
                    else:  # random_fit
                        fitting = [
                            s for s in range(n_slots) if alive[s] and fits_slot(s, size)
                        ]
                        if fitting:
                            slot = fitting[int(rng.integers(len(fitting)))]

                if slot >= 0:
                    opened_new = False
                    bid = slot_bin[slot]
                    row = loads[slot]
                    for j in dims:
                        row[j] += size[j]
                    residents[slot].append(pos)
                else:
                    opened_new = True
                    bid = bin_count
                    bin_count += 1
                    slot = n_slots
                    n_slots += 1
                    slot_bin.append(bid)
                    alive.append(True)
                    loads.append(list(size))  # 0.0 + x == x exactly
                    residents.append([pos])
                    slot_of[bid] = slot
                    open_count += 1
                    if nf:
                        current = bid
                bin_of[pos] = bid
                if mtf and (not recency or recency[0] != bid):
                    if not opened_new:
                        recency.remove(bid)
                    recency.insert(0, bid)
                if timing:
                    dispatch_s += pc() - t0
                    if opened_new and open_count > peak_open:
                        peak_open = open_count
            else:  # ---------------------------------------- departure
                pos = ev - n
                bid = bin_of[pos]
                slot = slot_of[bid]
                res = residents[slot]
                res.remove(pos)
                if res:
                    if not stale:
                        row = [0.0] * d
                        for p in res:
                            sp = sizes[p]
                            for j in dims:
                                row[j] += sp[j]
                        loads[slot] = row
                else:
                    alive[slot] = False
                    del slot_of[bid]
                    n_dead += 1
                    open_count -= 1
                    if timing:
                        closed += 1
                    if mtf:
                        recency.remove(bid)
                    elif nf and current == bid:
                        current = -1
                    if n_dead >= _COMPACT_MIN_DEAD and 2 * n_dead >= n_slots:
                        keep = [s for s in range(n_slots) if alive[s]]
                        loads[:] = [loads[s] for s in keep]
                        slot_bin[:] = [slot_bin[s] for s in keep]
                        residents[:] = [residents[s] for s in keep]
                        alive[:] = [True] * len(keep)
                        slot_of.clear()
                        for s, bid_ in enumerate(slot_bin):
                            slot_of[bid_] = s
                        n_slots = len(keep)
                        n_dead = 0

        if timing:
            col.record_run_totals(
                arrivals=n,
                departures=n,
                bins_opened=bin_count,
                bins_closed=closed,
                peak_open_bins=peak_open,
                dispatch_time_s=dispatch_s,
            )
            col.candidate_scans += scans
            col.fit_checks += checks
        uids = ctx.uids
        return {uids[pos]: bin_of[pos] for pos in range(n)}


def fast_simulate(
    policy: str,
    instance: Instance,
    seed: int = 0,
    collector: Optional[StatsCollector] = None,
    backend: Optional[str] = None,
) -> Packing:
    """Convenience wrapper: one fast run of ``policy`` on ``instance``.

    Equivalent to ``FastEngine(instance, policy, seed, collector,
    backend).run()``.
    """
    return FastEngine(instance, policy, seed=seed, collector=collector, backend=backend).run()


# Stock registrations: the seven Section 7 policy classes whose default
# configuration the kernels reproduce bit-for-bit.  Imported down here so
# the eligibility table never participates in an import cycle with
# repro.algorithms (whose modules only depend on repro.core).
from ..algorithms.best_fit import BestFit, WorstFit  # noqa: E402
from ..algorithms.first_fit import FirstFit  # noqa: E402
from ..algorithms.last_fit import LastFit  # noqa: E402
from ..algorithms.move_to_front import MoveToFront  # noqa: E402
from ..algorithms.next_fit import NextFit  # noqa: E402
from ..algorithms.random_fit import RandomFit  # noqa: E402

register_kernel_class(MoveToFront, "move_to_front")
register_kernel_class(FirstFit, "first_fit")
register_kernel_class(NextFit, "next_fit")
register_kernel_class(BestFit, "best_fit")
register_kernel_class(WorstFit, "worst_fit")
register_kernel_class(LastFit, "last_fit")
register_kernel_class(RandomFit, "random_fit")
