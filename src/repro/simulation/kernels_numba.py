"""JIT-compiled kernel tier for the fastpath engine (``backend="numba"``).

This module holds the compiled twin of :meth:`FastEngine._replay_numpy
<repro.simulation.fastpath.FastEngine>`: one unified replay kernel that
covers all seven registry policies, all three load measures (L∞/L1/Lp),
and the per-trial ``random_fit`` fan-out, operating on the same flat
residual arrays and the same pre-sorted event-index array that
:class:`~repro.simulation.fastpath.ReplayContext` already builds.

Bit-identity
------------
The kernel reproduces the numpy backend's IEEE-754 semantics operation
for operation, so the existing differential corpus and verify oracles
gate it unchanged:

* fit test ``load + size <= slack`` per dimension, same slack epsilon;
* new-bin loads copy the size row (``0.0 + x == x`` exactly);
* departures re-sum the affected row sequentially in pack order (the
  residents of each slot live in a doubly-linked list walked head to
  tail, i.e. pack order) — never subtract;
* the L1 weight replays numpy's *pairwise* ``add.reduce`` summation
  (:func:`_pairwise_sum` mirrors ``pairwise_sum_DOUBLE``: sequential
  below 8 elements, the eight-accumulator block up to 128, recursive
  halving above);
* the Lp weight replays ``npy_pow``'s shortcut ladder per element
  (:func:`_npy_pow`) and takes the outer root via scalar libm ``pow``,
  matching the numpy backend's ``float(...) ** inv_p``;
* the L∞ weight is a pure comparison scan — no arithmetic to drift;
* tie-breaks are the classic ones: lowest fitting slot (first fit),
  highest (last fit), earliest-opened among equal weights (best/worst
  fit via strict ``>``/``<`` replacement), highest recency stamp
  (move-to-front), cursor bin only (next fit), and the k-th fitting
  slot in ascending slot order for ``random_fit`` with exactly one
  ``Generator.integers`` draw per non-empty candidate set.

Degradation
-----------
numba is an *optional* extra (``pip install .[fast]``); this module
imports it lazily and never at module import time.  Three gates:

* :envvar:`REPRO_NUMBA_DISABLE` — pretend numba is absent (exercises
  the fallback path on machines that do have the extra);
* :envvar:`REPRO_NUMBA_PYFUNC` — run the kernels *uncompiled* as plain
  Python.  The full backend plumbing (dispatch, counters, parity
  oracles) then runs end-to-end without the extra installed; bench
  payloads record ``pyfunc_mode`` so an uncompiled run can never
  masquerade as a compiled result;
* :func:`mark_broken` — a runtime kernel failure disables the tier for
  the rest of the process so callers fall back once, not per run.

Compilation cost is managed explicitly: ``@njit(cache=True)`` persists
machine code in numba's on-disk cache next to this file, and
:func:`warmup` triggers the (single-signature) compile eagerly, timing
it into :func:`jit_compile_seconds` so benches report compile time
separately from steady-state throughput.
"""

from __future__ import annotations

import os
import warnings
from time import perf_counter
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "DISABLE_ENV",
    "PYFUNC_ENV",
    "MIN_VERSION",
    "numba_available",
    "kernels_ready",
    "pyfunc_mode",
    "unavailable_reason",
    "is_warm",
    "jit_compile_seconds",
    "warmup",
    "mark_broken",
    "reset_state",
    "lp_pow_exact",
    "replay",
    "replay_trials",
]

#: Set (to any non-empty value) to pretend numba is not importable —
#: the fallback-observability tests use it so the degradation path is
#: exercised even on machines with the ``[fast]`` extra installed.
DISABLE_ENV = "REPRO_NUMBA_DISABLE"

#: Set to run the kernels uncompiled as plain Python functions.  The
#: numba backend then works end-to-end without the extra installed —
#: same dispatch, same counters, same bit-identity — just slowly; bench
#: payloads record the flag so throughput numbers stay honest.
PYFUNC_ENV = "REPRO_NUMBA_PYFUNC"

#: Oldest numba release whose ``np.random.Generator`` support
#: reproduces numpy's bounded-integer draw stream, which the
#: ``random_fit`` bit-identity contract requires.
MIN_VERSION = (0, 57)

_POLICY_CODES = {
    "first_fit": 0,
    "last_fit": 1,
    "best_fit": 2,
    "worst_fit": 3,
    "move_to_front": 4,
    "next_fit": 5,
    "random_fit": 6,
}

_MEASURE_CODES = {"linf": 0, "l1": 1, "lp": 2}

_state = {
    "checked": False,  # import probe ran
    "ok": False,  # numba importable and >= MIN_VERSION
    "reason": "",  # why not ok, or why broken
    "broken": False,  # runtime kernel failure -> tier off for the process
    "compiled": False,  # njit rebind done
    "warm": False,  # warmup() completed
    "compile_s": 0.0,  # wall time of the JIT compile (0.0 when cached/pyfunc)
}


def _disabled() -> bool:
    return bool(os.environ.get(DISABLE_ENV, "").strip())


def _pyfunc_requested() -> bool:
    return bool(os.environ.get(PYFUNC_ENV, "").strip())


def _probe_import() -> None:
    if _state["checked"]:
        return
    _state["checked"] = True
    try:
        import numba  # noqa: F401  (lazy, optional)
    except Exception as exc:  # pragma: no cover - depends on install
        _state["ok"] = False
        _state["reason"] = f"numba is not importable ({exc.__class__.__name__})"
        return
    version = getattr(numba, "version_info", None)
    if version is not None:
        pair = (version.major, version.minor)
    else:  # pragma: no cover - very old numba
        parts = str(getattr(numba, "__version__", "0.0")).split(".")
        try:
            pair = (int(parts[0]), int(parts[1]))
        except (ValueError, IndexError):
            pair = (0, 0)
    if pair < MIN_VERSION:  # pragma: no cover - depends on install
        _state["ok"] = False
        _state["reason"] = (
            "numba %s is older than the %s minimum the Generator-stream "
            "contract needs" % (".".join(map(str, pair)), ".".join(map(str, MIN_VERSION)))
        )
        return
    _state["ok"] = True
    _state["reason"] = ""


def numba_available() -> bool:
    """True when numba is importable and recent enough (env gates aside)."""
    _probe_import()
    return bool(_state["ok"])


def pyfunc_mode() -> bool:
    """True when :envvar:`REPRO_NUMBA_PYFUNC` runs the kernels uncompiled."""
    return _pyfunc_requested() and not _disabled() and not _state["broken"]


def kernels_ready() -> bool:
    """True when the numba backend can execute in this process.

    Either numba is importable (and not disabled or marked broken), or
    :envvar:`REPRO_NUMBA_PYFUNC` requests the uncompiled pure-Python
    execution of the same kernels.
    """
    if _disabled() or _state["broken"]:
        return False
    if _pyfunc_requested():
        return True
    return numba_available()


def unavailable_reason() -> str:
    """Human-readable cause when :func:`kernels_ready` is False, else ''."""
    if _disabled():
        return f"numba disabled via {DISABLE_ENV}"
    if _state["broken"]:
        return _state["reason"] or "numba kernels marked broken"
    if _pyfunc_requested():
        return ""
    _probe_import()
    return "" if _state["ok"] else _state["reason"]


def is_warm() -> bool:
    """True when kernels are compiled (or pyfunc) and ready to run at speed."""
    if not kernels_ready():
        return False
    return pyfunc_mode() or bool(_state["warm"])


def jit_compile_seconds() -> float:
    """Wall time the last :func:`warmup` spent JIT-compiling (0.0 if cached)."""
    return float(_state["compile_s"])


def mark_broken(reason: str) -> None:
    """Disable the numba tier for the rest of the process."""
    _state["broken"] = True
    _state["reason"] = reason or "numba kernels marked broken"


def reset_state() -> None:
    """Test hook: clear the broken/warm flags and re-probe the import."""
    _state["checked"] = False
    _state["ok"] = False
    _state["broken"] = False
    _state["warm"] = False
    _state["reason"] = ""
    _state["compile_s"] = 0.0
    _POW_PARITY.clear()


# ----------------------------------------------------------------------
# kernels — written as plain Python, rebound to @njit dispatchers by
# _compile() when numba is importable; runnable uncompiled otherwise
# ----------------------------------------------------------------------


def _pairwise_block(a, lo, n):
    """numpy ``pairwise_sum_DOUBLE`` base case: n <= 128, stride 1."""
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    r0 = a[lo]
    r1 = a[lo + 1]
    r2 = a[lo + 2]
    r3 = a[lo + 3]
    r4 = a[lo + 4]
    r5 = a[lo + 5]
    r6 = a[lo + 6]
    r7 = a[lo + 7]
    i = 8
    limit = n - (n % 8)
    while i < limit:
        r0 += a[lo + i]
        r1 += a[lo + i + 1]
        r2 += a[lo + i + 2]
        r3 += a[lo + i + 3]
        r4 += a[lo + i + 4]
        r5 += a[lo + i + 5]
        r6 += a[lo + i + 6]
        r7 += a[lo + i + 7]
        i += 8
    res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        res += a[lo + i]
        i += 1
    return res


def _pairwise_sum(a, lo, n):
    """numpy's pairwise summation over ``a[lo:lo+n]``, bit for bit.

    The recursive halving (``n2 = n//2`` rounded down to a multiple of
    8, combined left + right) is emulated with explicit stacks so the
    jitted function avoids numba's recursion limitations.  Depth is at
    most 64 frames (n halves per level).
    """
    if n <= 128:
        return _pairwise_block(a, lo, n)
    los = np.empty(64, np.int64)
    lens = np.empty(64, np.int64)
    stage = np.empty(64, np.int64)
    vals = np.empty(65, np.float64)
    sp = 0
    vsp = 0
    los[0] = lo
    lens[0] = n
    stage[0] = 0
    while sp >= 0:
        if stage[sp] == 0:
            if lens[sp] <= 128:
                vals[vsp] = _pairwise_block(a, los[sp], lens[sp])
                vsp += 1
                sp -= 1
            else:
                n2 = lens[sp] // 2
                n2 -= n2 % 8
                stage[sp] = 1
                clo = los[sp]
                sp += 1
                los[sp] = clo
                lens[sp] = n2
                stage[sp] = 0
        elif stage[sp] == 1:
            n2 = lens[sp] // 2
            n2 -= n2 % 8
            stage[sp] = 2
            clo = los[sp] + n2
            cn = lens[sp] - n2
            sp += 1
            los[sp] = clo
            lens[sp] = cn
            stage[sp] = 0
        else:
            right = vals[vsp - 1]
            left = vals[vsp - 2]
            vals[vsp - 2] = left + right
            vsp -= 1
            sp -= 1
    return vals[0]


def _npy_pow(x, y):
    """Per-element power matching the ``np.power`` ufunc's fast paths.

    The shortcut ladder (``y == 2/1/0/0.5``) is bitwise identical to the
    ufunc on every build.  The generic fall-through is ``np.power``
    itself: executed uncompiled (pyfunc mode) that *is* the ufunc, so
    Lp weights match the numpy backend exactly; jitted, numba lowers it
    to libm ``pow``, which can drift from numpy's SIMD power loop in
    the final ulp on some builds — :func:`lp_pow_exact` probes for that
    drift per exponent so callers can fall back to the numpy kernel and
    keep the bit-identity contract unconditional.
    """
    if y == 2.0:
        return x * x
    if y == 1.0:
        return x
    if y == 0.0:
        return 1.0
    if y == 0.5:
        return np.sqrt(x)
    return np.power(x, y)


def _fits(loads, sizes, slack, s, pos, d):
    """Per-dimension fit test, identical to ``load + size <= slack``."""
    for j in range(d):
        if loads[s, j] + sizes[pos, j] > slack[j]:
            return False
    return True


def _slot_weight(loads, slot, d, measure, p_exp, inv_p, pw):
    """Measure of a slot's load row, matching the numpy backend exactly."""
    if measure == 0:  # linf: comparison scan, no arithmetic
        w = loads[slot, 0]
        for j in range(1, d):
            v = loads[slot, j]
            if v > w:
                w = v
        return w
    if measure == 1:  # l1: numpy pairwise add.reduce over the row copy
        for j in range(d):
            pw[j] = loads[slot, j]
        return _pairwise_sum(pw, 0, d)
    # lp: per-element npy_pow, pairwise sum, outer root via scalar pow
    for j in range(d):
        pw[j] = _npy_pow(loads[slot, j], p_exp)
    return float(_pairwise_sum(pw, 0, d)) ** inv_p


def _replay_kernel(order, sizes, slack, n, d, policy, measure, p_exp, inv_p, stale, rng):
    """Unified replay kernel: one event sweep, all policies and measures.

    Returns ``(bin_of, bins_opened, bins_closed, peak_open, scans,
    checks)`` where ``bin_of[pos]`` is the bin id assigned to arrival
    ``pos``.  Policy/measure are the integer codes of
    :data:`_POLICY_CODES` / :data:`_MEASURE_CODES`.
    """
    cap = 64
    loads = np.empty((cap, d), np.float64)
    w = np.empty(cap, np.float64)
    stamp = np.empty(cap, np.int64)
    slot_bid = np.empty(cap, np.int64)
    alive = np.zeros(cap, np.bool_)
    res_head = np.empty(cap, np.int64)
    res_tail = np.empty(cap, np.int64)
    cand = np.empty(cap, np.int64)
    res_next = np.empty(n, np.int64)
    res_prev = np.empty(n, np.int64)
    bin_of = np.zeros(n, np.int64)
    slot_of_bid = np.empty(n, np.int64)
    pw = np.empty(d, np.float64)

    n_slots = 0
    n_dead = 0
    open_count = 0
    bin_count = 0
    tcount = 0  # MTF recency stamps: later placement = higher stamp
    cur_bid = -1  # next_fit cursor (bin id)
    scans = 0
    checks = 0
    peak_open = 0
    closed = 0

    for idx in range(order.shape[0]):
        ev = order[idx]
        if ev < n:  # ---------------------------------------- arrival
            pos = ev
            slot = -1
            if policy == 5:  # next_fit: cursor bin only
                if cur_bid >= 0:
                    scans += 1
                    checks += 1
                    s = slot_of_bid[cur_bid]
                    if _fits(loads, sizes, slack, s, pos, d):
                        slot = s
            elif open_count > 0:
                # Same counter semantics as the classic hot path: one
                # scan per arrival with a non-empty open list, one fit
                # check per open bin.
                scans += 1
                checks += open_count
                if policy == 0:  # first_fit: lowest fitting slot
                    for s in range(n_slots):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            slot = s
                            break
                elif policy == 1:  # last_fit: highest fitting slot
                    for s in range(n_slots - 1, -1, -1):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            slot = s
                            break
                elif policy == 2:  # best_fit: max weight, earliest wins ties
                    best = 0.0
                    for s in range(n_slots):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            if slot < 0 or w[s] > best:
                                slot = s
                                best = w[s]
                elif policy == 3:  # worst_fit: min weight, earliest wins ties
                    best = 0.0
                    for s in range(n_slots):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            if slot < 0 or w[s] < best:
                                slot = s
                                best = w[s]
                elif policy == 4:  # move_to_front: highest recency stamp
                    best_st = np.int64(-1)
                    for s in range(n_slots):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            if stamp[s] > best_st:
                                slot = s
                                best_st = stamp[s]
                else:  # random_fit: k-th fitting slot, one draw per set
                    c = 0
                    for s in range(n_slots):
                        if alive[s] and _fits(loads, sizes, slack, s, pos, d):
                            cand[c] = s
                            c += 1
                    if c > 0:
                        slot = cand[rng.integers(0, c)]

            if slot >= 0:
                bid = slot_bid[slot]
                for j in range(d):
                    loads[slot, j] = loads[slot, j] + sizes[pos, j]
                t = res_tail[slot]
                res_next[t] = pos
                res_prev[pos] = t
                res_next[pos] = -1
                res_tail[slot] = pos
            else:
                bid = bin_count
                bin_count += 1
                if n_slots == cap:
                    cap *= 2
                    g_loads = np.empty((cap, d), np.float64)
                    g_w = np.empty(cap, np.float64)
                    g_stamp = np.empty(cap, np.int64)
                    g_bid = np.empty(cap, np.int64)
                    g_alive = np.zeros(cap, np.bool_)
                    g_head = np.empty(cap, np.int64)
                    g_tail = np.empty(cap, np.int64)
                    for s in range(n_slots):
                        for j in range(d):
                            g_loads[s, j] = loads[s, j]
                        g_w[s] = w[s]
                        g_stamp[s] = stamp[s]
                        g_bid[s] = slot_bid[s]
                        g_alive[s] = alive[s]
                        g_head[s] = res_head[s]
                        g_tail[s] = res_tail[s]
                    loads = g_loads
                    w = g_w
                    stamp = g_stamp
                    slot_bid = g_bid
                    alive = g_alive
                    res_head = g_head
                    res_tail = g_tail
                    cand = np.empty(cap, np.int64)
                slot = n_slots
                n_slots += 1
                slot_bid[slot] = bid
                alive[slot] = True
                for j in range(d):
                    loads[slot, j] = sizes[pos, j]  # 0.0 + x == x exactly
                res_head[slot] = pos
                res_tail[slot] = pos
                res_prev[pos] = -1
                res_next[pos] = -1
                slot_of_bid[bid] = slot
                open_count += 1
                if policy == 5:
                    cur_bid = bid
                if open_count > peak_open:
                    peak_open = open_count
            bin_of[pos] = bid
            if policy == 2 or policy == 3:
                w[slot] = _slot_weight(loads, slot, d, measure, p_exp, inv_p, pw)
            elif policy == 4:
                stamp[slot] = tcount
                tcount += 1
        else:  # ---------------------------------------------- departure
            pos = ev - n
            bid = bin_of[pos]
            slot = slot_of_bid[bid]
            pv = res_prev[pos]
            nx = res_next[pos]
            if pv >= 0:
                res_next[pv] = nx
            else:
                res_head[slot] = nx
            if nx >= 0:
                res_prev[nx] = pv
            else:
                res_tail[slot] = pv
            if res_head[slot] >= 0:
                if not stale:
                    # Re-sum sequentially in pack order, exactly like
                    # Bin.remove — head-to-tail walk IS pack order.
                    q = res_head[slot]
                    for j in range(d):
                        loads[slot, j] = sizes[q, j]
                    q = res_next[q]
                    while q >= 0:
                        for j in range(d):
                            loads[slot, j] = loads[slot, j] + sizes[q, j]
                        q = res_next[q]
                    if policy == 2 or policy == 3:
                        w[slot] = _slot_weight(
                            loads, slot, d, measure, p_exp, inv_p, pw
                        )
            else:
                alive[slot] = False
                n_dead += 1
                open_count -= 1
                closed += 1
                if policy == 5 and cur_bid == bid:
                    cur_bid = -1
                if n_dead >= 32 and 2 * n_dead >= n_slots:
                    k = 0
                    for s in range(n_slots):
                        if alive[s]:
                            if k != s:
                                for j in range(d):
                                    loads[k, j] = loads[s, j]
                                w[k] = w[s]
                                stamp[k] = stamp[s]
                                slot_bid[k] = slot_bid[s]
                                alive[k] = True
                                res_head[k] = res_head[s]
                                res_tail[k] = res_tail[s]
                            slot_of_bid[slot_bid[k]] = k
                            k += 1
                    for s in range(k, n_slots):
                        alive[s] = False
                    n_slots = k
                    n_dead = 0

    return bin_of, bin_count, closed, peak_open, scans, checks


def _pow_probe(vals, y, out):
    """Apply :func:`_npy_pow` elementwise (parity probe for jitted pow)."""
    for i in range(vals.shape[0]):
        out[i] = _npy_pow(vals[i], y)


#: Pure-Python entry point captured before _compile() rebinds the
#: module globals — REPRO_NUMBA_PYFUNC routes through it.
_PY_REPLAY = _replay_kernel

#: Per-exponent verdicts of :func:`lp_pow_exact`.
_POW_PARITY: dict = {}


def lp_pow_exact(p_exp: float) -> bool:
    """True when the executing kernel's ``x ** p_exp`` matches numpy's.

    Uncompiled (pyfunc) kernels call the ``np.power`` ufunc itself, so
    they are exact by construction.  Jitted kernels go through libm
    ``pow``, which numpy's SIMD power loop can drift from in the final
    ulp on some builds; this probes 4096 deterministic samples spanning
    the load range and caches the verdict per exponent.  The fastpath
    dispatcher uses a False verdict to route generic-exponent Lp specs
    to the numpy kernel instead, keeping assignments bit-identical.
    """
    p_exp = float(p_exp)
    if pyfunc_mode():
        return True
    cached = _POW_PARITY.get(p_exp)
    if cached is not None:
        return cached
    if not is_warm():
        warmup()
    vals = np.random.default_rng(20230613).random(4096) * 8.0
    vals[:4] = (0.0, 1.0, 0.5, 1e-9)
    out = np.empty_like(vals)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _pow_probe(vals, p_exp, out)
    ref = np.power(vals, p_exp)
    verdict = bool(np.array_equal(out.view(np.int64), ref.view(np.int64)))
    _POW_PARITY[p_exp] = verdict
    return verdict


def _compile() -> None:
    """Rebind the kernel globals to ``@njit(cache=True)`` dispatchers."""
    global _pairwise_block, _pairwise_sum, _npy_pow, _fits, _slot_weight
    global _replay_kernel, _pow_probe
    if _state["compiled"]:
        return
    import numba

    with warnings.catch_warnings():
        # A read-only cache directory degrades cache=True to a
        # NumbaWarning; the test suite promotes warnings to errors, so
        # compilation-side warnings must never escape.
        warnings.simplefilter("ignore")
        njit = numba.njit
        _pairwise_block = njit(cache=True)(_pairwise_block)
        _pairwise_sum = njit(cache=True)(_pairwise_sum)
        _npy_pow = njit(cache=True)(_npy_pow)
        _fits = njit(cache=True)(_fits)
        _slot_weight = njit(cache=True)(_slot_weight)
        _replay_kernel = njit(cache=True)(_replay_kernel)
        _pow_probe = njit(cache=True)(_pow_probe)
    _state["compiled"] = True


def _warm_exercise() -> None:
    """Drive every policy x measure branch of the (single) kernel once."""
    n = 2
    d = 2
    sizes = np.array([[0.3, 0.2], [0.4, 0.1]], np.float64)
    slack = np.array([1.0, 1.0], np.float64)
    # arrivals 0, 1 then departures 0, 1 (values >= n are departures)
    order = np.array([0, 1, 2, 3], np.int64)
    for policy in _POLICY_CODES.values():
        for measure, p_exp in ((0, 0.0), (1, 0.0), (2, 3.0)):
            inv_p = 1.0 / p_exp if p_exp else 0.0
            rng = np.random.default_rng(0)
            _replay_kernel(
                order, sizes, slack, n, d, policy, measure, p_exp, inv_p, False, rng
            )


def warmup() -> float:
    """Compile (or re-attach the on-disk cache of) the replay kernel.

    Returns the wall-clock seconds the JIT spent, also exposed through
    :func:`jit_compile_seconds`.  Under :envvar:`REPRO_NUMBA_PYFUNC`
    this is a no-op returning 0.0.  Raises
    :class:`~repro.core.errors.ConfigurationError` when the backend is
    not available (numba missing, disabled, or marked broken).
    """
    if not kernels_ready():
        raise ConfigurationError(
            f"numba kernels unavailable: {unavailable_reason() or 'unknown cause'}"
        )
    if pyfunc_mode():
        _state["warm"] = True
        _state["compile_s"] = 0.0
        return 0.0
    if _state["warm"]:
        return float(_state["compile_s"])
    t0 = perf_counter()
    try:
        _compile()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _warm_exercise()
    except Exception as exc:  # pragma: no cover - depends on install
        reason = f"numba kernel compilation failed ({exc.__class__.__name__}: {exc})"
        mark_broken(reason)
        raise ConfigurationError(reason) from exc
    _state["compile_s"] = perf_counter() - t0
    _state["warm"] = True
    return float(_state["compile_s"])


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------


def replay(
    order: np.ndarray,
    sizes: np.ndarray,
    slack: np.ndarray,
    n: int,
    d: int,
    policy: str,
    measure: str = "linf",
    p: Optional[float] = None,
    seed: int = 0,
    stale: bool = False,
) -> Tuple[np.ndarray, int, int, int, int, int]:
    """Run one replay through the (compiled or pyfunc) kernel.

    Returns ``(bin_of, bins_opened, bins_closed, peak_open, scans,
    checks)``.  ``order`` is the lexsorted event-index array built by
    :meth:`ReplayContext.order_array
    <repro.simulation.fastpath.ReplayContext.order_array>`; ``seed``
    feeds the ``random_fit`` draw stream and is ignored by the
    deterministic policies.
    """
    if not is_warm():
        warmup()
    p_exp = float(p) if p else 0.0
    inv_p = 1.0 / p_exp if p_exp else 0.0
    rng = np.random.default_rng(seed)
    kern = _PY_REPLAY if pyfunc_mode() else _replay_kernel
    out = kern(
        order,
        sizes,
        slack,
        n,
        d,
        _POLICY_CODES[policy],
        _MEASURE_CODES[measure],
        p_exp,
        inv_p,
        bool(stale),
        rng,
    )
    bin_of, opened, closed, peak, scans, checks = out
    return bin_of, int(opened), int(closed), int(peak), int(scans), int(checks)


def replay_trials(
    order: np.ndarray,
    sizes: np.ndarray,
    slack: np.ndarray,
    n: int,
    d: int,
    seeds: Sequence[int],
    stale: bool = False,
) -> np.ndarray:
    """Per-trial ``random_fit`` fan-out through the jitted kernel.

    Returns an ``(m, n)`` int64 matrix of bin ids, one row per seed.
    Each trial draws from its own ``np.random.default_rng(seed)``
    stream, draw for draw like the classic engine — the JIT removes the
    per-event dispatch overhead the lockstep tier amortises, so a plain
    per-trial loop is the fast shape here.
    """
    if not is_warm():
        warmup()
    m = len(seeds)
    out = np.empty((m, n), np.int64)
    kern = _PY_REPLAY if pyfunc_mode() else _replay_kernel
    code = _POLICY_CODES["random_fit"]
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(int(seed))
        res = kern(order, sizes, slack, n, d, code, 0, 0.0, 0.0, bool(stale), rng)
        out[i, :] = res[0]
    return out
