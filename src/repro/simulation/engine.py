"""Discrete-event simulation engine for online DVBP.

The engine owns everything Algorithm 1's outer loop does that is *not* a
policy decision: replaying the event stream in order, bin lifecycle
(creation, packing, closure), irrevocability (an item never moves once
packed), and usage-time accounting (Eq. 1).  The policy — which bin an
arriving item goes to — is delegated to an
:class:`~repro.algorithms.base.OnlineAlgorithm`.

Observers can subscribe to every state transition; the analysis layers
(Figure 1's leading-interval decomposition, Figure 3's load snapshots)
are implemented as observers so the engine stays policy- and
experiment-agnostic.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..algorithms.base import OnlineAlgorithm
from ..core.bins import Bin
from ..core.errors import AlgorithmError
from ..core.events import EventKind, event_stream
from ..core.instance import Instance
from ..core.items import Item
from ..core.packing import Packing
from ..observability.stats import StatsCollector

__all__ = [
    "SimulationObserver",
    "Engine",
    "simulate",
    "reset_fallback_warnings",
]

#: (policy name, reason) pairs already warned about in this process —
#: fast-engine fallbacks are expected to repeat thousands of times in a
#: sweep, so each distinct cause warns exactly once.
_FALLBACK_WARNED: Set[Tuple[str, str]] = set()


def reset_fallback_warnings() -> None:
    """Forget which fast-engine fallbacks have already warned (tests)."""
    _FALLBACK_WARNED.clear()


def _note_fallback(
    name: str, reason: str, collector: Optional[StatsCollector]
) -> None:
    """Record one fast→classic fallback: counter bump + one-time warning."""
    if collector is not None:
        collector.fastpath_fallbacks += 1
    key = (name, reason)
    if key not in _FALLBACK_WARNED:
        _FALLBACK_WARNED.add(key)
        warnings.warn(
            f"engine='fast' requested but {name!r} runs on the classic "
            f"engine ({reason}); this warning is emitted once per cause",
            RuntimeWarning,
            stacklevel=3,
        )


class SimulationObserver:
    """Callback interface for engine state transitions.

    All hooks default to no-ops; subclass and override what you need.
    Hooks fire *after* the engine has applied the transition, so observer
    code sees the post-state.
    """

    def on_start(self, instance: Instance, algorithm: OnlineAlgorithm) -> None:
        """Called once before the first event."""

    def on_bin_opened(self, bin_: Bin, now: float) -> None:
        """A fresh bin was created (it has not received its item yet)."""

    def on_packed(self, bin_: Bin, item: Item, now: float, opened_new: bool) -> None:
        """``item`` was packed into ``bin_`` (new bin iff ``opened_new``)."""

    def on_departed(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        """``item`` departed from ``bin_`` (bin closed iff ``closed``)."""

    def on_finish(self, packing: Packing) -> None:
        """Called once after the last event with the final packing."""


class Engine:
    """Replays one instance through one algorithm.

    Engines are single-use: construct, call :meth:`run`, read the
    returned :class:`~repro.core.packing.Packing`.  (The *algorithm*
    object is reusable — the engine calls its ``start`` — but a given
    Engine instance must not be run twice.)
    """

    def __init__(
        self,
        instance: Instance,
        algorithm: OnlineAlgorithm,
        observers: Sequence[SimulationObserver] = (),
        collector: Optional[StatsCollector] = None,
    ) -> None:
        self.instance = instance
        self.algorithm = algorithm
        self.observers = list(observers)
        self.collector = collector
        self.bins: List[Bin] = []
        self._bin_of_item: Dict[int, Bin] = {}
        self._assignment: Dict[int, int] = {}
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> Packing:
        """Execute the full event stream and return the final packing.

        With ``collector=None`` (the default) the event loop is the
        original uninstrumented fast path; with a collector the loop
        additionally times each dispatch and feeds the per-event
        counters (see docs/observability.md).
        """
        if self._ran:
            raise AlgorithmError("Engine instances are single-use; build a new one")
        self._ran = True
        if self.collector is not None:
            return self._run_instrumented(self.collector)

        self.algorithm.start(self.instance)
        for obs in self.observers:
            obs.on_start(self.instance, self.algorithm)

        for event in event_stream(self.instance):
            if event.kind is EventKind.ARRIVAL:
                self._handle_arrival(event.item, event.time)
            else:
                self._handle_departure(event.item, event.time)

        packing = Packing.from_assignment(
            self.instance, self._assignment, algorithm=self.algorithm.name
        )
        for obs in self.observers:
            obs.on_finish(packing)
        return packing

    def _run_instrumented(self, col: StatsCollector) -> Packing:
        """The instrumented twin of :meth:`run`'s event loop.

        Kept as a separate loop (rather than per-event ``if`` checks on
        the shared path) so disabling instrumentation costs literally
        nothing.  The collector is bound to the algorithm for the
        duration of the run so the Any Fit hot path can count its
        candidate scans, and unbound afterwards because algorithm
        objects are reusable across engines.
        """
        t_run = perf_counter()
        self.algorithm.bind_collector(col)
        # Per-event state lives in locals and is pushed to the collector
        # once at the end: local integer arithmetic keeps the overhead of
        # an instrumented run within the documented <= 2% budget.
        arrivals = departures = opened = closed_count = 0
        open_bins = peak_open = 0
        dispatch_s = 0.0
        # Hot names bound to locals: the per-event lookups this saves
        # (vs. the plain loop's attribute walks) pay for the two clock
        # reads per arrival.
        arrival_kind = EventKind.ARRIVAL
        bins = self.bins
        pc = perf_counter
        handle_arrival = self._handle_arrival
        handle_departure = self._handle_departure
        try:
            col.run_started(self.instance, self.algorithm)
            self.algorithm.start(self.instance)
            for obs in self.observers:
                obs.on_start(self.instance, self.algorithm)

            for event in event_stream(self.instance):
                if event.kind is arrival_kind:
                    t0 = pc()
                    handle_arrival(event.item, event.time)
                    dispatch_s += pc() - t0
                    arrivals += 1
                    if len(bins) > opened:
                        opened += 1
                        open_bins += 1
                        if open_bins > peak_open:
                            peak_open = open_bins
                else:
                    departures += 1
                    if handle_departure(event.item, event.time):
                        closed_count += 1
                        open_bins -= 1

            packing = Packing.from_assignment(
                self.instance, self._assignment, algorithm=self.algorithm.name
            )
            for obs in self.observers:
                obs.on_finish(packing)
        finally:
            self.algorithm.bind_collector(None)
        col.record_run_totals(
            arrivals=arrivals,
            departures=departures,
            bins_opened=opened,
            bins_closed=closed_count,
            peak_open_bins=peak_open,
            dispatch_time_s=dispatch_s,
        )
        col.run_finished(
            perf_counter() - t_run,
            context={"instance": self.instance.name, "n": self.instance.n},
        )
        return packing

    # ------------------------------------------------------------------
    def _handle_arrival(self, item: Item, now: float) -> None:
        opened: List[Bin] = []

        def open_new_bin() -> Bin:
            if opened:
                raise AlgorithmError(
                    f"{self.algorithm.name} opened two bins for one item "
                    f"(item {item.uid})"
                )
            fresh = Bin(self.instance.capacity, index=len(self.bins), opened_at=now)
            self.bins.append(fresh)
            opened.append(fresh)
            for obs in self.observers:
                obs.on_bin_opened(fresh, now)
            return fresh

        target = self.algorithm.dispatch(item, now, open_new_bin)
        if target is None:
            raise AlgorithmError(f"{self.algorithm.name} returned no bin for item {item.uid}")
        target.pack(item)  # raises CapacityExceededError on a bad policy
        self._bin_of_item[item.uid] = target
        self._assignment[item.uid] = target.index
        for obs in self.observers:
            obs.on_packed(target, item, now, opened_new=bool(opened))

    def _handle_departure(self, item: Item, now: float) -> bool:
        bin_ = self._bin_of_item.pop(item.uid)
        closed = bin_.remove(item, now)
        self.algorithm.notify_departure(bin_, item, now, closed)
        for obs in self.observers:
            obs.on_departed(bin_, item, now, closed)
        return closed


def simulate(
    algorithm: OnlineAlgorithm,
    instance: Instance,
    observers: Sequence[SimulationObserver] = (),
    collector: Optional[StatsCollector] = None,
    fast: bool = False,
) -> Packing:
    """Convenience wrapper: run ``algorithm`` on ``instance`` once.

    Equivalent to ``Engine(instance, algorithm, observers, collector).run()``.

    With ``fast=True`` the run is auto-routed to the flat-array
    :class:`~repro.simulation.fastpath.FastEngine` when it is eligible —
    no observers requested and the algorithm resolves to a fast policy
    kernel (see :func:`~repro.simulation.fastpath.fast_policy_for`) —
    and falls back to the classic engine otherwise.  Both engines
    produce bit-identical packings, so ``fast`` is purely a performance
    switch; a fallback is therefore *correct* but slower than requested,
    and it is surfaced rather than silent: the first occurrence of each
    distinct cause emits a :class:`RuntimeWarning`, and every occurrence
    increments the collector's ``fastpath_fallbacks`` counter.

    Fallback causes:

    * the algorithm has no registered fast kernel (ineligible policy or
      unregistered subclass);
    * observers were requested (the fast engine has no per-event hooks);
    * the fast kernel *failed* mid-run — the run degrades gracefully to
      the classic engine (any counters the aborted fast run wrote are
      rolled back first, so instrumented aggregates stay exact).
    """
    if fast:
        from .fastpath import FastEngine, fast_ineligibility_reason, fast_policy_for

        name = getattr(algorithm, "name", type(algorithm).__name__)
        if observers:
            _note_fallback(name, "observers requested", collector)
        else:
            resolved = fast_policy_for(algorithm)
            if resolved is None:
                _note_fallback(
                    name,
                    fast_ineligibility_reason(algorithm)
                    or "no fast kernel for this policy",
                    collector,
                )
            else:
                policy, seed = resolved
                saved = _collector_state(collector)
                try:
                    return FastEngine(
                        instance, policy, seed=seed, collector=collector
                    ).run()
                except Exception as exc:  # kernel failure: degrade to classic
                    _restore_collector_state(collector, saved)
                    _note_fallback(
                        name, f"fast kernel failed ({type(exc).__name__}: {exc})",
                        collector,
                    )
    return Engine(instance, algorithm, observers, collector).run()


def _collector_state(collector: Optional[StatsCollector]) -> Optional[dict]:
    """Snapshot a collector's accumulator slots (sink binding excluded)."""
    if collector is None:
        return None
    return {
        slot: getattr(collector, slot)
        for slot in StatsCollector.__slots__
        if slot not in ("sink", "sample_rss")
    }


def _restore_collector_state(
    collector: Optional[StatsCollector], saved: Optional[dict]
) -> None:
    """Roll a collector back to a :func:`_collector_state` snapshot."""
    if collector is None or saved is None:
        return
    for slot, value in saved.items():
        setattr(collector, slot, value)
