"""Quantised billing: pay-per-hour instead of pay-per-second.

The paper's objective charges a bin for exactly its usage time; real
"pay-as-you-go" providers bill in quanta ("charged according to their
server usage times in hourly or monthly basis", Section 1).  Under a
billing quantum ``q`` a bin active for time ``u`` costs
``ceil(u / q) * q`` — so closing a server 5 minutes into a paid hour
saves nothing, and policies that *align* departures to quantum
boundaries gain an extra edge.

This module prices packings under quantised billing and exposes the
comparison hooks the billing ablation (``benchmarks/bench_billing.py``)
uses.  It also implements the natural quantum-aware policy tweak:
:class:`QuantumAwareMoveToFront` keeps a bin attractive while its
current paid quantum still has remaining time (packing into it is
"free" until the next boundary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..algorithms.move_to_front import MoveToFront
from ..core.bins import Bin
from ..core.errors import ConfigurationError
from ..core.items import Item
from ..core.packing import Packing

__all__ = [
    "billed_cost",
    "billing_overhead",
    "BilledSummary",
    "summarize_billing",
    "QuantumAwareMoveToFront",
]


def billed_cost(packing: Packing, quantum: float) -> float:
    """Total cost under billing quantum ``q``: ``Σ_b ceil(u_b / q) · q``.

    ``quantum = 0`` means continuous billing (the paper's objective).
    """
    if quantum < 0:
        raise ConfigurationError(f"quantum must be >= 0, got {quantum}")
    if quantum == 0:
        return packing.cost
    total = 0.0
    for rec in packing.bins:
        quanta = math.ceil(rec.usage_time / quantum - 1e-12)
        total += max(quanta, 1) * quantum  # opening a bin bills >= 1 quantum
    return total


def billing_overhead(packing: Packing, quantum: float) -> float:
    """Relative overhead of quantised billing: ``billed / continuous - 1``."""
    cont = packing.cost
    if cont <= 0:
        return 0.0
    return billed_cost(packing, quantum) / cont - 1.0


@dataclass(frozen=True)
class BilledSummary:
    """Billing comparison of one packing."""

    algorithm: str
    continuous_cost: float
    billed_cost: float
    quantum: float
    num_bins: int

    @property
    def overhead(self) -> float:
        """``billed / continuous - 1``."""
        if self.continuous_cost <= 0:
            return 0.0
        return self.billed_cost / self.continuous_cost - 1.0


def summarize_billing(packing: Packing, quantum: float) -> BilledSummary:
    """Build the :class:`BilledSummary` of one packing."""
    return BilledSummary(
        algorithm=packing.algorithm,
        continuous_cost=packing.cost,
        billed_cost=billed_cost(packing, quantum),
        quantum=quantum,
        num_bins=packing.num_bins,
    )


class QuantumAwareMoveToFront(MoveToFront):
    """Move To Front that prefers bins with paid-but-unused quantum time.

    Among fitting candidates, a bin whose next billing boundary is
    farther away is cheaper to keep busy; the policy picks the fitting
    bin with the most *remaining paid time* ``q - (now - opened) mod q``,
    breaking ties by recency (the MF order).  With ``quantum = 0`` it
    degenerates to plain Move To Front.

    This is still an Any Fit algorithm: it only reorders the choice
    among fitting bins.
    """

    name = "quantum_aware_move_to_front"

    def __init__(self, quantum: float = 1.0) -> None:
        super().__init__()
        if quantum < 0:
            raise ConfigurationError(f"quantum must be >= 0, got {quantum}")
        self.quantum = float(quantum)

    def choose(self, item: Item, candidates: List[Bin], now: float) -> Bin:
        if self.quantum == 0:
            return super().choose(item, candidates, now)

        def remaining_paid(b: Bin) -> float:
            elapsed = max(0.0, now - b.opened_at)
            into_quantum = elapsed % self.quantum
            return self.quantum - into_quantum

        best = candidates[0]
        best_key = remaining_paid(best)
        for b in candidates[1:]:
            key = remaining_paid(b)
            if key > best_key + 1e-12:
                best, best_key = b, key
        return best
