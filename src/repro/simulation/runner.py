"""High-level run helpers: one algorithm/instance pair or whole batteries.

These wrap :class:`~repro.simulation.engine.Engine` with the conveniences
experiments need: building algorithms by registry name, running several
algorithms on the same instance, and optional post-run validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..algorithms.base import OnlineAlgorithm
from ..algorithms.registry import make_algorithm
from ..core.errors import ConfigurationError
from ..core.instance import Instance
from ..core.packing import Packing
from ..observability.stats import StatsCollector
from .engine import SimulationObserver, simulate

__all__ = ["run", "run_many", "compare_algorithms", "effective_engine"]

AlgorithmSpec = Union[str, OnlineAlgorithm]


def _resolve(spec: AlgorithmSpec) -> OnlineAlgorithm:
    return make_algorithm(spec) if isinstance(spec, str) else spec


def effective_engine(
    algorithm: AlgorithmSpec,
    engine: str = "classic",
    observers: Sequence[SimulationObserver] = (),
) -> str:
    """The engine :func:`run` would actually use for this request.

    ``engine="fast"`` (or ``"batch"``, or ``"streaming"``) is a
    *request*: runs the alternate path cannot take (observers present,
    or — for the fast/batch engines — a policy without a registered
    kernel) execute on the classic engine instead.  CLIs and drivers
    call this to report the effective engine up front rather than
    leaving the fallback implicit; it performs no simulation and never
    warns.

    ``engine="repacking"`` (and ``"repacking:policy:budget"`` specs) is
    *semantic*, not a performance request: a budget-k run is a
    different computation, so it never falls back and is returned
    verbatim — the repacking engine supports observers and every
    policy.
    """
    if isinstance(engine, str) and engine.split(":", 1)[0] == "repacking":
        return engine
    if engine not in ("fast", "batch", "streaming") or observers:
        return "classic"
    if engine == "streaming":
        return "streaming"
    from .fastpath import fast_policy_for

    return engine if fast_policy_for(algorithm) is not None else "classic"


def run(
    algorithm: AlgorithmSpec,
    instance: Instance,
    observers: Sequence[SimulationObserver] = (),
    validate: bool = False,
    collector: Optional[StatsCollector] = None,
    engine: str = "classic",
    repacker=None,
    budget: Optional[float] = None,
) -> Packing:
    """Run one algorithm on one instance.

    Parameters
    ----------
    algorithm:
        Registry name (e.g. ``"move_to_front"``) or an algorithm object.
    instance:
        The instance to replay.
    observers:
        Optional engine observers (instrumentation).
    validate:
        When ``True``, the returned packing is audited for temporal
        feasibility before being returned (raises
        :class:`~repro.core.errors.PackingAuditError` on violation).
        Experiments enable this in tests and disable it in hot loops.
    collector:
        Optional :class:`~repro.observability.stats.StatsCollector`;
        when given, the engine records per-run counters and timings into
        it (``None`` keeps the uninstrumented fast path).
    repacker / budget:
        Repacking-engine knobs, meaningful only with
        ``engine="repacking"``: the repacking policy (registry name or
        :class:`~repro.repacking.policies.RepackPolicy` object;
        default ``no_repack``) and the migration budget (per-event move
        cap, or amortized credit rate; default: the policy's own).
        Alternatively encode both in the engine spec string —
        ``engine="repacking:greedy_consolidate:2"`` — which is how
        sweep payloads carry them through worker processes.
    engine:
        ``"classic"`` (default), ``"fast"``, ``"batch"``,
        ``"streaming"``, or ``"repacking"``.  ``"fast"`` requests the flat-array
        :class:`~repro.simulation.fastpath.FastEngine`; ``"batch"``
        routes through a :class:`~repro.simulation.batch.BatchRunner`
        (useful mainly for parity with sweep flags — the batched
        amortisation pays off over many replays, which
        :func:`run_many` and ``parallel_sweep(engine="batch")``
        exploit); ``"streaming"`` replays through the bounded-memory
        :func:`repro.streaming.streaming_run` event loop (every
        policy supported).  Runs an alternate path cannot take
        (observers present, or — fast/batch — a policy without a fast
        kernel) fall back to the classic engine with the same result —
        all engines are bit-identical.  ``"repacking"`` replays through
        the migration-budget :mod:`repro.repacking` engine; it never
        falls back (a budget is a semantic change, not a perf switch)
        and is bit-identical to the classic engine exactly when the
        budget is zero.
    """
    if isinstance(engine, str) and engine.split(":", 1)[0] == "repacking":
        from ..repacking import parse_repacking_spec, repacking_run

        spec_policy, spec_budget = parse_repacking_spec(engine)
        if repacker is None:
            repacker = spec_policy
        if budget is None:
            budget = spec_budget
        result = repacking_run(
            _resolve(algorithm),
            instance,
            repacker=repacker,
            budget=budget,
            observers=observers,
            collector=collector,
            validate=validate,  # segment-level audit, not Packing.validate
        )
        return result.packing
    if repacker is not None or budget is not None:
        raise ConfigurationError(
            "repacker/budget are repacking-engine knobs; pass "
            "engine='repacking' (or a 'repacking:policy:budget' spec)"
        )
    if engine not in ("classic", "fast", "batch", "streaming"):
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'classic', 'fast', "
            f"'batch', 'streaming', or 'repacking'"
        )
    if engine == "streaming" and not observers:
        from ..streaming import streaming_run

        packing = streaming_run(_resolve(algorithm), instance, collector=collector)
        if validate:
            packing.validate()
        return packing
    if engine == "batch" and not observers:
        from .batch import BatchRunner

        packing = BatchRunner(instance).run_packing(_resolve(algorithm), collector=collector)
        if validate:
            packing.validate()
        return packing
    packing = simulate(
        _resolve(algorithm), instance, observers, collector, fast=engine == "fast"
    )
    if validate:
        packing.validate()
    return packing


def run_many(
    algorithm: AlgorithmSpec,
    instances: Iterable[Instance],
    validate: bool = False,
    collector: Optional[StatsCollector] = None,
    engine: str = "classic",
    batch: bool = False,
) -> List[Packing]:
    """Run one algorithm over a sequence of instances.

    The same algorithm object is reused (its ``start`` resets state), so
    string specs are resolved once.  A shared ``collector`` accumulates
    stats across all runs (``RunStats.runs`` counts them).

    With ``batch=True`` (or ``engine="batch"``) the battery executes
    through :func:`repro.simulation.batch.batch_run_many`: one re-armed
    :class:`~repro.simulation.fastpath.FastEngine` and its scratch
    buffers serve every instance, and ``instances`` may include compact
    :class:`~repro.simulation.batch.InstanceSpec` sources.  Results are
    bit-identical to the per-instance path.
    """
    if batch or engine == "batch":
        from .batch import batch_run_many

        return batch_run_many(
            algorithm, instances, validate=validate, collector=collector
        )
    algo = _resolve(algorithm)
    return [
        run(algo, inst, validate=validate, collector=collector, engine=engine)
        for inst in instances
    ]


def compare_algorithms(
    algorithms: Sequence[AlgorithmSpec],
    instance: Instance,
    validate: bool = False,
) -> Dict[str, Packing]:
    """Run several algorithms on the same instance.

    Returns a mapping from algorithm name to its packing, in the order
    given (Python dicts preserve insertion order).
    """
    out: Dict[str, Packing] = {}
    for spec in algorithms:
        algo = _resolve(spec)
        out[algo.name] = run(algo, instance, validate=validate)
    return out
