"""Discrete-event simulation of online DVBP packing."""

from .billing import (
    BilledSummary,
    QuantumAwareMoveToFront,
    billed_cost,
    billing_overhead,
    summarize_billing,
)
from .engine import Engine, SimulationObserver, simulate
from .instrumentation import LeaderTracker, LoadSnapshotter, UsagePeriodTracker
from .metrics import (
    PackingMetrics,
    compute_metrics,
    cost_breakdown_by_bin,
    open_bins_timeline,
)
from .parallel import UnitResult, aggregate_sweep_stats, parallel_sweep
from .runner import compare_algorithms, run, run_many
from .trace import TraceRecord, TraceRecorder, render_trace, traces_equal

__all__ = [
    "BilledSummary",
    "Engine",
    "QuantumAwareMoveToFront",
    "billed_cost",
    "billing_overhead",
    "summarize_billing",
    "LeaderTracker",
    "LoadSnapshotter",
    "PackingMetrics",
    "SimulationObserver",
    "TraceRecord",
    "TraceRecorder",
    "UnitResult",
    "aggregate_sweep_stats",
    "parallel_sweep",
    "render_trace",
    "traces_equal",
    "UsagePeriodTracker",
    "compare_algorithms",
    "compute_metrics",
    "cost_breakdown_by_bin",
    "open_bins_timeline",
    "run",
    "run_many",
    "simulate",
]
