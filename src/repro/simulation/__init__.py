"""Discrete-event simulation of online DVBP packing."""

from .billing import (
    BilledSummary,
    QuantumAwareMoveToFront,
    billed_cost,
    billing_overhead,
    summarize_billing,
)
from .engine import Engine, SimulationObserver, simulate
from .fastpath import (
    FAST_POLICIES,
    FastEngine,
    available_backends,
    default_backend,
    fast_policy_for,
    fast_simulate,
    register_kernel_class,
)
from .instrumentation import LeaderTracker, LoadSnapshotter, UsagePeriodTracker
from .metrics import (
    PackingMetrics,
    compute_metrics,
    cost_breakdown_by_bin,
    open_bins_timeline,
)
from .parallel import UnitResult, aggregate_sweep_stats, parallel_sweep, simulate_chunk
from .runner import compare_algorithms, run, run_many
from .trace import TraceRecord, TraceRecorder, render_trace, traces_equal

__all__ = [
    "BilledSummary",
    "Engine",
    "QuantumAwareMoveToFront",
    "billed_cost",
    "billing_overhead",
    "summarize_billing",
    "FAST_POLICIES",
    "FastEngine",
    "available_backends",
    "default_backend",
    "fast_policy_for",
    "fast_simulate",
    "register_kernel_class",
    "simulate_chunk",
    "LeaderTracker",
    "LoadSnapshotter",
    "PackingMetrics",
    "SimulationObserver",
    "TraceRecord",
    "TraceRecorder",
    "UnitResult",
    "aggregate_sweep_stats",
    "parallel_sweep",
    "render_trace",
    "traces_equal",
    "UsagePeriodTracker",
    "compare_algorithms",
    "compute_metrics",
    "cost_breakdown_by_bin",
    "open_bins_timeline",
    "run",
    "run_many",
    "simulate",
]
