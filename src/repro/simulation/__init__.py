"""Discrete-event simulation of online DVBP packing."""

from .billing import (
    BilledSummary,
    QuantumAwareMoveToFront,
    billed_cost,
    billing_overhead,
    summarize_billing,
)
from .batch import (
    BatchRunner,
    InstanceSpec,
    batch_run_many,
    clear_instance_cache,
    instance_cache_info,
    materialize,
    register_spec_generator,
    spec_batch,
)
from .engine import Engine, SimulationObserver, simulate
from .fastpath import (
    FAST_POLICIES,
    FastEngine,
    ReplayContext,
    available_backends,
    choose_backend,
    default_backend,
    fast_policy_for,
    fast_simulate,
    register_kernel_class,
)
from .instrumentation import LeaderTracker, LoadSnapshotter, UsagePeriodTracker
from .metrics import (
    PackingMetrics,
    compute_metrics,
    cost_breakdown_by_bin,
    open_bins_timeline,
)
from .parallel import UnitResult, aggregate_sweep_stats, parallel_sweep, simulate_chunk
from .runner import compare_algorithms, run, run_many
from .trace import TraceRecord, TraceRecorder, render_trace, traces_equal

__all__ = [
    "BatchRunner",
    "BilledSummary",
    "Engine",
    "InstanceSpec",
    "QuantumAwareMoveToFront",
    "batch_run_many",
    "billed_cost",
    "billing_overhead",
    "clear_instance_cache",
    "instance_cache_info",
    "materialize",
    "register_spec_generator",
    "spec_batch",
    "summarize_billing",
    "FAST_POLICIES",
    "FastEngine",
    "ReplayContext",
    "available_backends",
    "choose_backend",
    "default_backend",
    "fast_policy_for",
    "fast_simulate",
    "register_kernel_class",
    "simulate_chunk",
    "LeaderTracker",
    "LoadSnapshotter",
    "PackingMetrics",
    "SimulationObserver",
    "TraceRecord",
    "TraceRecorder",
    "UnitResult",
    "aggregate_sweep_stats",
    "parallel_sweep",
    "render_trace",
    "traces_equal",
    "UsagePeriodTracker",
    "compare_algorithms",
    "compute_metrics",
    "cost_breakdown_by_bin",
    "open_bins_timeline",
    "run",
    "run_many",
    "simulate",
]
