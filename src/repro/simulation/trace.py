"""Structured simulation traces: record, render, compare.

A :class:`TraceRecorder` observer captures every engine transition as a
typed record; traces can be rendered as human-readable logs (for
debugging a policy decision-by-decision), diffed against each other (two
runs of a deterministic policy must produce identical traces — a
property the tests rely on), and summarised.

Record kinds:

``open``    — a new bin was created;
``pack``    — an item was placed (with the bin's load after placement);
``depart``  — an item left (with whether the bin closed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..algorithms.base import OnlineAlgorithm
from ..core.bins import Bin
from ..core.instance import Instance
from ..core.items import Item
from ..core.packing import Packing
from .engine import SimulationObserver

__all__ = ["TraceRecord", "TraceRecorder", "render_trace", "traces_equal"]


@dataclass(frozen=True)
class TraceRecord:
    """One engine transition.

    ``load_after`` is the bin's load vector immediately after the
    transition (a copy).  ``flag`` means ``opened_new`` for packs and
    ``closed`` for departures; unused for opens.
    """

    kind: str  # "open" | "pack" | "depart"
    time: float
    bin_index: int
    item_uid: Optional[int]
    load_after: Tuple[float, ...]
    flag: bool = False


class TraceRecorder(SimulationObserver):
    """Observer collecting the full transition trace of one run."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []
        self.algorithm_name: str = ""

    def on_start(self, instance: Instance, algorithm: OnlineAlgorithm) -> None:
        self.records = []
        self.algorithm_name = algorithm.name

    def on_bin_opened(self, bin_: Bin, now: float) -> None:
        self.records.append(
            TraceRecord("open", now, bin_.index, None, tuple(bin_.load))
        )

    def on_packed(self, bin_: Bin, item: Item, now: float, opened_new: bool) -> None:
        self.records.append(
            TraceRecord("pack", now, bin_.index, item.uid, tuple(bin_.load), opened_new)
        )

    def on_departed(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        self.records.append(
            TraceRecord("depart", now, bin_.index, item.uid, tuple(bin_.load), closed)
        )

    # -- queries ---------------------------------------------------------
    def packs(self) -> List[TraceRecord]:
        """Pack records only, in order."""
        return [r for r in self.records if r.kind == "pack"]

    def opens(self) -> List[TraceRecord]:
        """Open records only, in order."""
        return [r for r in self.records if r.kind == "open"]


def render_trace(recorder: TraceRecorder, max_records: Optional[int] = None) -> str:
    """Human-readable log of a trace.

    One line per record: ``t=3.0  pack    item 7 -> bin 2  load=[0.4 0.7]``.
    """
    lines = [f"trace of {recorder.algorithm_name} ({len(recorder.records)} records)"]
    records = recorder.records[: max_records or len(recorder.records)]
    for r in records:
        load = "[" + " ".join(f"{x:.3g}" for x in r.load_after) + "]"
        if r.kind == "open":
            lines.append(f"t={r.time:<8g} open    bin {r.bin_index}")
        elif r.kind == "pack":
            star = " (new bin)" if r.flag else ""
            lines.append(
                f"t={r.time:<8g} pack    item {r.item_uid} -> bin "
                f"{r.bin_index}  load={load}{star}"
            )
        else:
            star = " (bin closed)" if r.flag else ""
            lines.append(
                f"t={r.time:<8g} depart  item {r.item_uid} <- bin "
                f"{r.bin_index}  load={load}{star}"
            )
    if max_records and len(recorder.records) > max_records:
        lines.append(f"... {len(recorder.records) - max_records} more records")
    return "\n".join(lines)


def traces_equal(a: TraceRecorder, b: TraceRecorder, tol: float = 1e-12) -> bool:
    """Whether two traces describe the identical execution.

    Loads are compared within ``tol``; everything else exactly.
    """
    if len(a.records) != len(b.records):
        return False
    for ra, rb in zip(a.records, b.records):
        if (ra.kind, ra.time, ra.bin_index, ra.item_uid, ra.flag) != (
            rb.kind,
            rb.time,
            rb.bin_index,
            rb.item_uid,
            rb.flag,
        ):
            return False
        if len(ra.load_after) != len(rb.load_after):
            return False
        if any(abs(x - y) > tol for x, y in zip(ra.load_after, rb.load_after)):
            return False
    return True
