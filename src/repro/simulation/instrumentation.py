"""Observers that reconstruct the paper's analysis decompositions.

These are the measurement instruments behind Figures 1-3:

* :class:`LeaderTracker` — for Move To Front, records which bin is the
  *leader* (front of ``L``) over time, yielding each bin's leading /
  non-leading interval decomposition (Figure 1) and letting tests verify
  Claim 1's structural fact that leading intervals partition the span.
* :class:`UsagePeriodTracker` — records every bin's usage period plus
  opening order, yielding the First Fit ``P_i / Q_i`` decomposition of
  Section 4 (Figure 2).
* :class:`LoadSnapshotter` — captures per-bin load vectors at chosen
  times (Figure 3's three phase snapshots of the Theorem 5 execution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import OnlineAlgorithm
from ..algorithms.move_to_front import MoveToFront
from ..core.bins import Bin
from ..core.instance import Instance
from ..core.intervals import Interval
from ..core.items import Item
from ..core.packing import Packing
from .engine import SimulationObserver

__all__ = ["LeaderTracker", "UsagePeriodTracker", "LoadSnapshotter"]


class LeaderTracker(SimulationObserver):
    """Track the Move To Front leader over time.

    After the run, :meth:`leading_intervals` gives, per bin index, the
    list of maximal intervals during which that bin was the leader, and
    :meth:`non_leading_intervals` the complement within the bin's usage
    period — exactly the ``P_{i,j}`` / ``Q_{i,j}`` decomposition used in
    the proof of Theorem 2.
    """

    def __init__(self) -> None:
        self._transitions: List[Tuple[float, Optional[int]]] = []
        self._algorithm: Optional[MoveToFront] = None
        self._final_time: float = 0.0
        self._usage: Dict[int, Interval] = {}
        #: displacement events: the raw material of the Theorem 2 proof.
        #: Each entry is ``(displaced_bin_index, time, displacing_item,
        #: resident_items_of_displaced_bin, transition_pos)`` — a leading
        #: interval of the displaced bin ended at ``time`` because
        #: ``displacing_item`` could not be packed there (it went to
        #: another bin, which became the leader).  ``transition_pos`` is
        #: the index into the internal transition log from which the
        #: bin's return to leadership should be searched (zero-length
        #: leaderships at the same instant are preserved there even
        #: though they vanish from the interval views).
        self.displacements: List[Tuple[int, float, Item, List[Item], int]] = []

    # -- engine hooks ---------------------------------------------------
    def on_start(self, instance: Instance, algorithm: OnlineAlgorithm) -> None:
        if not isinstance(algorithm, MoveToFront):
            raise TypeError("LeaderTracker requires the MoveToFront algorithm")
        self._algorithm = algorithm
        self._transitions = []
        self._usage = {}
        self.displacements = []
        self._final_time = max(it.departure for it in instance.items)

    def _record(self, now: float) -> None:
        lst = self._algorithm.open_list  # type: ignore[union-attr]
        leader = lst[0].index if lst else None
        if not self._transitions or self._transitions[-1][1] != leader:
            self._transitions.append((now, leader))

    def on_packed(self, bin_: Bin, item: Item, now: float, opened_new: bool) -> None:
        prev_leader = self._transitions[-1][1] if self._transitions else None
        pending = None
        if prev_leader is not None and prev_leader != bin_.index:
            # the previous leader was displaced: `item` did not fit it
            displaced = next(
                (b for b in self._algorithm.open_list if b.index == prev_leader),
                None,
            )
            if displaced is not None:
                pending = (prev_leader, now, item, displaced.active_items())
        self._record(now)
        if pending is not None:
            self.displacements.append(pending + (len(self._transitions),))

    def q_length(self, bin_index: int, start: float, transition_pos: int) -> float:
        """Length of the non-leading period of ``bin_index`` that began at
        ``start`` (the displacement recorded with ``transition_pos``).

        The period ends the first time the bin becomes leader again —
        including zero-length leaderships invisible in the interval
        views — or when the bin closes.
        """
        for time, leader in self._transitions[transition_pos:]:
            if leader == bin_index:
                return max(0.0, time - start)
        usage = self._usage.get(bin_index)
        if usage is None:
            return 0.0
        return max(0.0, usage.end - start)

    def on_departed(self, bin_: Bin, item: Item, now: float, closed: bool) -> None:
        if closed:
            self._usage[bin_.index] = Interval(bin_.opened_at, now)
        self._record(now)

    def on_finish(self, packing: Packing) -> None:
        for rec in packing.bins:
            self._usage.setdefault(rec.index, rec.usage_period)

    # -- post-run queries -------------------------------------------------
    def leader_timeline(self) -> List[Tuple[Interval, Optional[int]]]:
        """Step function of leadership: ``(interval, leader_bin_index)``.

        ``None`` segments mean no bin was open.  Segments tile
        ``[first_transition_time, final_time)``.
        """
        out: List[Tuple[Interval, Optional[int]]] = []
        for (t0, who), (t1, _) in zip(self._transitions, self._transitions[1:]):
            out.append((Interval(t0, t1), who))
        if self._transitions:
            t_last, who = self._transitions[-1]
            out.append((Interval(t_last, self._final_time), who))
        return [(iv, who) for iv, who in out if not iv.empty]

    def leading_intervals(self) -> Dict[int, List[Interval]]:
        """Per bin index, the maximal intervals where the bin led."""
        result: Dict[int, List[Interval]] = {}
        for iv, who in self.leader_timeline():
            if who is not None:
                result.setdefault(who, []).append(iv)
        return result

    def non_leading_intervals(self) -> Dict[int, List[Interval]]:
        """Per bin index, the usage-period complement of the leading part."""
        leading = self.leading_intervals()
        result: Dict[int, List[Interval]] = {}
        for index, usage in self._usage.items():
            pieces = sorted(leading.get(index, []), key=lambda iv: iv.start)
            gaps: List[Interval] = []
            cursor = usage.start
            for piece in pieces:
                if piece.start > cursor:
                    gaps.append(Interval(cursor, piece.start))
                cursor = max(cursor, piece.end)
            if cursor < usage.end:
                gaps.append(Interval(cursor, usage.end))
            result[index] = gaps
        return result

    def usage_periods(self) -> Dict[int, Interval]:
        """Per bin index, the bin's full usage period."""
        return dict(self._usage)


class UsagePeriodTracker(SimulationObserver):
    """Record bin usage periods in opening order (First Fit analysis).

    After the run, :meth:`decomposition` returns the Section 4 split of
    each bin's usage period ``I_i = P_i ∪ Q_i`` where
    ``t_i = max(I_i^-, max_{j<i} I_j^+)``: ``Q_i`` is the suffix of
    ``I_i`` after every earlier bin has closed (Figure 2).
    """

    def __init__(self) -> None:
        self._periods: List[Interval] = []

    def on_finish(self, packing: Packing) -> None:
        self._periods = [rec.usage_period for rec in sorted(packing.bins, key=lambda r: r.index)]

    def usage_periods(self) -> List[Interval]:
        """Usage periods indexed by opening order."""
        return list(self._periods)

    def decomposition(self) -> List[Tuple[Interval, Interval]]:
        """Per bin (opening order), the ``(P_i, Q_i)`` pair of Section 4."""
        out: List[Tuple[Interval, Interval]] = []
        latest_close = float("-inf")
        for iv in self._periods:
            t_i = max(iv.start, latest_close)
            split = min(iv.end, t_i)
            out.append((Interval(iv.start, split), Interval(split, iv.end)))
            latest_close = max(latest_close, iv.end)
        return out


class LoadSnapshotter(SimulationObserver):
    """Capture per-bin load vectors at requested times.

    A snapshot at time ``t`` maps bin index → aggregate load vector of
    the items assigned to that bin and active at ``t`` (half-open
    semantics: an item departing at ``t`` no longer contributes).  Bins
    with no active item at ``t`` are omitted.  Snapshots are derived from
    the final packing, so they are exact regardless of event ordering.
    Used to render Figure 3's three phases.
    """

    def __init__(self, times: Sequence[float]) -> None:
        self.times = sorted(times)
        self.snapshots: Dict[float, Dict[int, np.ndarray]] = {}

    def on_finish(self, packing: Packing) -> None:
        by_uid = {it.uid: it for it in packing.instance.items}
        self.snapshots = {}
        for t in self.times:
            snap: Dict[int, np.ndarray] = {}
            for rec in packing.bins:
                active = [by_uid[uid] for uid in rec.item_uids if by_uid[uid].active_at(t)]
                if active:
                    snap[rec.index] = np.sum([it.size for it in active], axis=0)
            self.snapshots[t] = snap
