"""The offline optimum cost ``OPT(R)`` via the Eq. 2 integral.

The optimal offline algorithm may repack items (Section 2.2), bins are
indistinguishable, and idle bins cost nothing, so the minimum achievable
cost is pointwise:

.. math::  OPT(R) = \\int OPT(R, t)\\, dt

where ``OPT(R, t)`` is the minimum number of unit bins holding the items
active at ``t`` — a static vector-bin-packing problem.  The active set is
constant between event times, so the integral is a finite sum over
breakpoint segments.

Exact values use :func:`repro.optimum.vbp_solver.solve_exact` per
segment (with memoisation on the active uid-set, since consecutive
segments differ by one item and repeats are common);
:func:`optimum_cost_bounds` returns fast certified brackets using the
load lower bound and the FFD upper bound instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from ..core.errors import SolverLimitError
from ..core.instance import Instance
from ..core.items import Item

from .vbp_solver import first_fit_decreasing, load_lower_bound, solve_exact

__all__ = ["optimum_cost", "optimum_cost_bounds", "active_segments"]


def active_segments(instance: Instance) -> List[Tuple[float, float, List[Item]]]:
    """Breakpoint segments with their active item sets.

    Returns ``(start, end, active_items)`` triples covering the instance
    horizon; segments with no active items are skipped (they contribute
    zero to every integral).
    """
    times = instance.event_times()
    segments: List[Tuple[float, float, List[Item]]] = []
    for t0, t1 in zip(times, times[1:]):
        active = [it for it in instance.items if it.arrival <= t0 and t1 <= it.departure]
        if active:
            segments.append((t0, t1, active))
    return segments


def optimum_cost(
    instance: Instance,
    max_nodes_per_segment: int = 200_000,
) -> float:
    """Exact ``OPT(R)`` by integrating exact per-segment bin minima.

    Raises
    ------
    SolverLimitError
        If any segment's exact solve exhausts its node budget.  Use
        :func:`optimum_cost_bounds` for instances too large to certify.
    """
    cache: Dict[FrozenSet[int], int] = {}
    total = 0.0
    for t0, t1, active in active_segments(instance):
        key = frozenset(it.uid for it in active)
        if key not in cache:
            cache[key] = solve_exact(
                [it.size for it in active],
                instance.capacity,
                max_nodes=max_nodes_per_segment,
            )
        total += cache[key] * (t1 - t0)
    return total


def optimum_cost_bounds(instance: Instance) -> Tuple[float, float]:
    """Certified ``(lower, upper)`` bracket on ``OPT(R)``.

    * lower: per-segment load lower bound (equals Lemma 1(i) overall);
    * upper: per-segment FFD — feasible for the repacking-allowed
      offline optimum, hence a true upper bound.

    Both are polynomial-time; the bracket is often tight in practice
    (FFD meets the load bound on most random segments).
    """
    cache_lb: Dict[FrozenSet[int], int] = {}
    cache_ub: Dict[FrozenSet[int], int] = {}
    lower = 0.0
    upper = 0.0
    for t0, t1, active in active_segments(instance):
        key = frozenset(it.uid for it in active)
        if key not in cache_lb:
            sizes = [it.size for it in active]
            cache_lb[key] = max(load_lower_bound(sizes, instance.capacity), 1)
            cache_ub[key] = len(first_fit_decreasing(sizes, instance.capacity))
        dt = t1 - t0
        lower += cache_lb[key] * dt
        upper += cache_ub[key] * dt
    return lower, upper
