"""Optimum-cost machinery: Lemma 1 lower bounds, exact OPT, brackets."""

from .lower_bounds import (
    all_lower_bounds,
    fractional_height_bound,
    height_lower_bound,
    load_profile,
    opt_lower_bound,
    span_lower_bound,
    utilization_lower_bound,
)
from .offline_assignment import (
    assignment_cost,
    assignment_feasible,
    exact_assignment,
    greedy_assignment,
    local_search,
)
from .opt_cost import active_segments, optimum_cost, optimum_cost_bounds
from .vbp_solver import (
    best_fit_decreasing,
    first_fit_decreasing,
    load_lower_bound,
    solve_exact,
)

__all__ = [
    "active_segments",
    "assignment_cost",
    "assignment_feasible",
    "exact_assignment",
    "greedy_assignment",
    "local_search",
    "all_lower_bounds",
    "best_fit_decreasing",
    "first_fit_decreasing",
    "fractional_height_bound",
    "height_lower_bound",
    "load_lower_bound",
    "load_profile",
    "opt_lower_bound",
    "optimum_cost",
    "optimum_cost_bounds",
    "solve_exact",
    "span_lower_bound",
    "utilization_lower_bound",
]
