"""Exact and heuristic *static* vector bin packing.

The optimum integral (Eq. 2) reduces MinUsageTime DVBP's offline optimum
to a sequence of classic vector-bin-packing subproblems: at each instant,
how few unit bins can hold the currently active items?  This module
solves that static subproblem:

* :func:`first_fit_decreasing` — the FFD heuristic (sort by L∞ size,
  first fit), giving a feasible packing and hence an **upper** bound;
* :func:`load_lower_bound` — ``ceil`` of the max normalised dimension
  total, a fast **lower** bound;
* :func:`solve_exact` — branch-and-bound exact minimum with an FFD
  incumbent, load-based pruning, and identical-bin symmetry breaking.

The solver is exponential in the worst case; ``max_nodes`` bounds the
search and a :class:`~repro.core.errors.SolverLimitError` reports an
exhausted budget so callers can fall back to the bracket
``[load_lower_bound, first_fit_decreasing]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SolverLimitError
from ..core.vectors import EPS

__all__ = [
    "first_fit_decreasing",
    "best_fit_decreasing",
    "load_lower_bound",
    "solve_exact",
]


def _as_matrix(sizes: Sequence[np.ndarray], capacity: np.ndarray) -> np.ndarray:
    if len(sizes) == 0:
        return np.zeros((0, capacity.size))
    return np.asarray(np.stack(sizes), dtype=np.float64)


def _slack(capacity: np.ndarray) -> np.ndarray:
    return capacity + EPS * np.maximum(capacity, 1.0)


def first_fit_decreasing(
    sizes: Sequence[np.ndarray], capacity: np.ndarray
) -> List[List[int]]:
    """FFD packing: items sorted by decreasing L∞ size, then First Fit.

    Returns the packing as a list of bins, each a list of indices into
    ``sizes``.  The number of bins is an upper bound on the optimum.
    """
    mat = _as_matrix(sizes, capacity)
    if mat.shape[0] == 0:
        return []
    slack = _slack(capacity)
    order = np.argsort(-np.max(mat / capacity[np.newaxis, :], axis=1), kind="stable")
    bins: List[List[int]] = []
    loads: List[np.ndarray] = []
    for idx in order:
        size = mat[idx]
        placed = False
        for b, load in enumerate(loads):
            if np.all(load + size <= slack):
                loads[b] = load + size
                bins[b].append(int(idx))
                placed = True
                break
        if not placed:
            bins.append([int(idx)])
            loads.append(size.copy())
    return bins


def best_fit_decreasing(
    sizes: Sequence[np.ndarray], capacity: np.ndarray
) -> List[List[int]]:
    """BFD packing: like FFD but each item goes to the fullest fitting bin.

    Fullness is measured by the L∞ of the normalised load.  Another
    feasible heuristic; occasionally beats FFD, so the exact solver seeds
    its incumbent with the better of the two.
    """
    mat = _as_matrix(sizes, capacity)
    if mat.shape[0] == 0:
        return []
    slack = _slack(capacity)
    order = np.argsort(-np.max(mat / capacity[np.newaxis, :], axis=1), kind="stable")
    bins: List[List[int]] = []
    loads: List[np.ndarray] = []
    for idx in order:
        size = mat[idx]
        best_b = -1
        best_fullness = -1.0
        for b, load in enumerate(loads):
            if np.all(load + size <= slack):
                fullness = float(np.max(load / capacity))
                if fullness > best_fullness:
                    best_fullness = fullness
                    best_b = b
        if best_b >= 0:
            loads[best_b] = loads[best_b] + size
            bins[best_b].append(int(idx))
        else:
            bins.append([int(idx)])
            loads.append(size.copy())
    return bins


def load_lower_bound(sizes: Sequence[np.ndarray], capacity: np.ndarray) -> int:
    """``ceil(max_j Σ_r s(r)_j / cap_j)`` — the Lemma 1(i) bound at one instant."""
    mat = _as_matrix(sizes, capacity)
    if mat.shape[0] == 0:
        return 0
    total = mat.sum(axis=0) / capacity
    return int(np.ceil(float(np.max(total)) - 1e-9))


def solve_exact(
    sizes: Sequence[np.ndarray],
    capacity: np.ndarray,
    max_nodes: int = 200_000,
) -> int:
    """Exact minimum number of bins for the given item sizes.

    Branch and bound over items in decreasing L∞ order.  At each node an
    item is tried in every *distinct* open-bin load (identical loads are
    symmetric — only the first is expanded) and in one new bin.  Pruning:
    ``bins_open + load_lower_bound(remaining beyond residual)`` is a
    valid optimistic completion only in a weak form, so we use the
    standard ``max(bins_open, ceil(total remaining load / capacity))``
    style bound via the aggregate load of unplaced items.

    Parameters
    ----------
    sizes:
        Item size vectors.
    capacity:
        Bin capacity vector.
    max_nodes:
        Search budget; exceeded budgets raise
        :class:`~repro.core.errors.SolverLimitError`.

    Returns
    -------
    int
        The exact optimum bin count.
    """
    mat = _as_matrix(sizes, capacity)
    n = mat.shape[0]
    if n == 0:
        return 0
    slack = _slack(capacity)

    # incumbent: better of FFD and BFD
    upper = min(
        len(first_fit_decreasing(sizes, capacity)),
        len(best_fit_decreasing(sizes, capacity)),
    )
    lower = max(load_lower_bound(sizes, capacity), 1)
    if upper <= lower:
        return upper

    order = np.argsort(-np.max(mat / capacity[np.newaxis, :], axis=1), kind="stable")
    items = mat[order]
    # suffix aggregate loads for pruning
    suffix = np.zeros((n + 1, mat.shape[1]))
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] + items[i]

    best = upper
    nodes = 0

    def recurse(i: int, loads: List[np.ndarray]) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"exact VBP exceeded {max_nodes} nodes (n={n}); "
                f"certified bracket is [{lower}, {best}]"
            )
        if i == n:
            best = min(best, len(loads))
            return
        if len(loads) >= best:
            return
        # optimistic completion: the remaining aggregate load must be
        # absorbed by the open bins' (aggregated, hence optimistic)
        # residual space plus new bins — a valid lower bound on the
        # final bin count from this node.
        remaining = suffix[i]
        residual = sum((capacity - load for load in loads), np.zeros_like(capacity))
        extra_needed = int(max(0.0, np.ceil(np.max((remaining - residual) / capacity) - 1e-9)))
        if len(loads) + extra_needed >= best:
            return
        size = items[i]
        seen: List[np.ndarray] = []
        for b, load in enumerate(loads):
            if np.all(load + size <= slack):
                if any(np.allclose(load, s) for s in seen):
                    continue  # symmetric to an already-tried bin
                seen.append(load.copy())
                loads[b] = load + size
                recurse(i + 1, loads)
                loads[b] = load
        if len(loads) + 1 < best:
            loads.append(size.copy())
            recurse(i + 1, loads)
            loads.pop()

    recurse(0, [])
    return best
