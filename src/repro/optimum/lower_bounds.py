"""Lemma 1: lower bounds on the optimum cost.

For an instance ``R`` the paper uses three lower bounds on ``OPT(R)``:

(i)   the *height* bound ``∫ ceil(||s(R,t)||_inf) dt`` — at any instant
      at least ``ceil`` of the max normalised per-dimension load bins are
      needed;
(ii)  the *utilisation* bound ``(1/d) Σ_r ||s(r)||_inf ℓ(I(r))``;
(iii) the *span* bound ``span(R)``.

Bound (i) dominates (ii) and (iii).  The Section 7 experiments normalise
every algorithm's cost by bound (i), which is what
:func:`opt_lower_bound` returns by default.

All integrals are computed by a vectorised sweepline over the ``2n``
events: the active-load vector is piecewise constant between event
times, so the integral is a finite sum (cf. Eq. 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.instance import Instance

__all__ = [
    "load_profile",
    "height_lower_bound",
    "fractional_height_bound",
    "utilization_lower_bound",
    "span_lower_bound",
    "opt_lower_bound",
    "all_lower_bounds",
]

#: Guard subtracted inside ``ceil`` so float noise (e.g. a load of
#: ``2.0000000001`` from summing many sizes) does not inflate the bound.
_CEIL_GUARD = 1e-9


def load_profile(instance: Instance) -> Tuple[np.ndarray, np.ndarray]:
    """Piecewise-constant aggregate load ``s(R, t)``.

    Returns
    -------
    (times, loads):
        ``times`` has shape ``(k,)`` — the sorted unique event times;
        ``loads`` has shape ``(k-1, d)`` where row ``j`` is the constant
        load on ``[times[j], times[j+1])``.
    """
    n = instance.n
    d = instance.d
    starts = np.fromiter((it.arrival for it in instance.items), dtype=np.float64, count=n)
    ends = np.fromiter((it.departure for it in instance.items), dtype=np.float64, count=n)
    sizes = np.stack([it.size for it in instance.items])

    times = np.concatenate([starts, ends])
    deltas = np.concatenate([sizes, -sizes])
    order = np.argsort(times, kind="stable")
    times = times[order]
    deltas = deltas[order]

    # group deltas by unique time: cumulative load after processing all
    # events at each unique time
    cum = np.cumsum(deltas, axis=0)
    unique_times, group_end = np.unique(times, return_index=True)
    # index of last event at each unique time = next group start - 1
    last = np.append(group_end[1:], len(times)) - 1
    loads_after = cum[last]
    # clip tiny negatives from float cancellation
    loads_after = np.maximum(loads_after, 0.0)
    return unique_times, loads_after[:-1].reshape(-1, d)


def _segment_lengths(times: np.ndarray) -> np.ndarray:
    return np.diff(times)


def height_lower_bound(instance: Instance) -> float:
    """Lemma 1(i): ``∫ ceil(max_j s(R,t)_j / cap_j) dt``.

    The tightest of the three bounds; used as the OPT proxy in the
    Section 7 experiments.
    """
    times, loads = load_profile(instance)
    if times.size < 2:
        return 0.0
    normalised = loads / instance.capacity[np.newaxis, :]
    height = np.ceil(np.max(normalised, axis=1) - _CEIL_GUARD)
    height = np.maximum(height, 0.0)
    return float(np.dot(height, _segment_lengths(times)))


def fractional_height_bound(instance: Instance) -> float:
    """The un-rounded variant ``∫ ||s(R,t)||_inf dt`` (normalised).

    Weaker than :func:`height_lower_bound`; it is the quantity the
    Lemma 1(ii) proof integrates, exposed for the tests that verify the
    proof's chain of inequalities numerically.
    """
    times, loads = load_profile(instance)
    if times.size < 2:
        return 0.0
    normalised = loads / instance.capacity[np.newaxis, :]
    return float(np.dot(np.max(normalised, axis=1), _segment_lengths(times)))


def utilization_lower_bound(instance: Instance) -> float:
    """Lemma 1(ii): ``(1/d) Σ_r ||s(r)||_inf · ℓ(I(r))`` (normalised)."""
    norm = instance.normalized()
    return norm.total_utilization() / norm.d


def span_lower_bound(instance: Instance) -> float:
    """Lemma 1(iii): ``span(R)``."""
    return instance.span


def opt_lower_bound(instance: Instance) -> float:
    """The best (largest) of the Lemma 1 bounds.

    Mathematically this equals :func:`height_lower_bound` except for
    degenerate numerical cases, but taking the max costs little and is
    robust.
    """
    return max(
        height_lower_bound(instance),
        utilization_lower_bound(instance),
        span_lower_bound(instance),
    )


def all_lower_bounds(instance: Instance) -> dict:
    """All three Lemma 1 bounds keyed by name (for reports/tests)."""
    return {
        "height": height_lower_bound(instance),
        "utilization": utilization_lower_bound(instance),
        "span": span_lower_bound(instance),
    }
