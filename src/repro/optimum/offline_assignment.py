"""Offline packing *without* repacking (static assignment).

The paper's OPT may repack items at any instant (Section 2.2); real
systems usually cannot migrate jobs, which is exactly why the online
problem forbids recourse.  The natural offline yardstick for such
systems is the best *static assignment*: partition the items into
groups that are capacity-feasible at every instant, minimising the sum
of group spans

.. math::  \\min \\sum_b \\operatorname{span}(R_b).

This is NP-hard (it contains vector bin packing), so the module offers
the usual ladder:

* :func:`greedy_assignment` — arrival-order greedy that places each item
  where it adds the least *marginal* usage time (0 if the bin's span
  already covers the item), a duration-aware strengthening of First Fit;
* :func:`local_search` — single-item relocation descent from any
  feasible assignment;
* :func:`exact_assignment` — exhaustive branch-and-bound for tiny
  instances (certified optimum of the no-repack problem);
* :func:`assignment_cost` / feasibility checking shared by all.

Relationships that hold (and are tested):
``repack-OPT ≤ no-repack-OPT ≤ local_search(greedy) ≤ greedy`` and every
online algorithm's cost is ≥ repack-OPT, but online costs may beat the
*greedy/no-repack heuristics* on easy instances (they are upper bounds,
not lower bounds, for the online problem).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SolverLimitError
from ..core.instance import Instance
from ..core.intervals import Interval, union_length
from ..core.items import Item
from ..core.packing import Packing
from ..core.vectors import EPS

__all__ = [
    "assignment_cost",
    "assignment_feasible",
    "greedy_assignment",
    "local_search",
    "exact_assignment",
]


def _groups(instance: Instance, assignment: Dict[int, int]) -> Dict[int, List[Item]]:
    by_bin: Dict[int, List[Item]] = {}
    for item in instance.items:
        by_bin.setdefault(assignment[item.uid], []).append(item)
    return by_bin


def _split_components(items: Sequence[Item]) -> List[List[Item]]:
    """Split a group into temporally connected components.

    A bin with an idle gap is equivalent to two bins (Section 2.1), and
    :class:`~repro.core.packing.Packing` bills each bin's *hull*, so an
    offline group whose items do not overlap in time must become several
    bins — one per connected component of the interval union — before a
    Packing is built.  Union cost is unchanged; hull inflation vanishes.
    """
    ordered = sorted(items, key=lambda it: it.arrival)
    components: List[List[Item]] = []
    current: List[Item] = []
    frontier = float("-inf")
    for it in ordered:
        if current and it.arrival > frontier:
            components.append(current)
            current = []
        current.append(it)
        frontier = max(frontier, it.departure)
    if current:
        components.append(current)
    return components


def _finalize(instance: Instance, assignment: Dict[int, int], algorithm: str) -> Packing:
    """Build a Packing from a static assignment, splitting idle gaps."""
    final: Dict[int, int] = {}
    next_bin = 0
    for _, items in sorted(_groups(instance, assignment).items()):
        for component in _split_components(items):
            for it in component:
                final[it.uid] = next_bin
            next_bin += 1
    return Packing.from_assignment(instance, final, algorithm=algorithm)


def assignment_cost(instance: Instance, assignment: Dict[int, int]) -> float:
    """Total usage time of a static assignment: ``Σ_b span(R_b)``."""
    return sum(
        union_length(it.interval for it in items)
        for items in _groups(instance, assignment).values()
    )


def _group_feasible(items: Sequence[Item], capacity: np.ndarray) -> bool:
    """Whether a group of items respects capacity at every instant."""
    slack = capacity + EPS * np.maximum(capacity, 1.0)
    arrivals = sorted({it.arrival for it in items})
    sizes = np.stack([it.size for it in items])
    starts = np.array([it.arrival for it in items])
    ends = np.array([it.departure for it in items])
    for t in arrivals:
        active = (starts <= t) & (t < ends)
        if np.any(sizes[active].sum(axis=0) > slack):
            return False
    return True


def assignment_feasible(instance: Instance, assignment: Dict[int, int]) -> bool:
    """Whether every bin of the assignment respects capacity at all times."""
    return all(
        _group_feasible(items, instance.capacity)
        for items in _groups(instance, assignment).values()
    )


class _BinState:
    """Mutable per-bin state for the greedy pass: load timeline + span."""

    __slots__ = ("items", "covered")

    def __init__(self) -> None:
        self.items: List[Item] = []
        self.covered: List[Interval] = []  # merged usage intervals

    def marginal_cost(self, item: Item) -> float:
        """Usage time added by ``item``: its interval minus what's covered."""
        uncovered = item.duration
        for iv in self.covered:
            inter = iv.intersection(item.interval)
            uncovered -= inter.length
        return max(0.0, uncovered)

    def fits(self, item: Item, capacity: np.ndarray) -> bool:
        return _group_feasible(self.items + [item], capacity)

    def add(self, item: Item) -> None:
        from ..core.intervals import merge_intervals

        self.items.append(item)
        self.covered = merge_intervals(self.covered + [item.interval])


def greedy_assignment(instance: Instance) -> Packing:
    """Marginal-cost greedy static assignment.

    Items are processed in arrival order; each goes to the feasible bin
    with the smallest marginal usage-time increase (ties: the bin with
    more items, to keep packing tight; then lowest index).  A new bin is
    opened only when no bin fits — an existing placement's marginal cost
    never exceeds the fresh bin's (the item's full duration).
    """
    bins: List[_BinState] = []
    assignment: Dict[int, int] = {}
    for item in instance.items:
        best_idx: Optional[int] = None
        best_key: Tuple[float, int, int] = (float("inf"), 0, 0)
        for idx, state in enumerate(bins):
            if not state.fits(item, instance.capacity):
                continue
            key = (state.marginal_cost(item), -len(state.items), idx)
            if key < best_key:
                best_key = key
                best_idx = idx
        if best_idx is None:
            # a fresh bin costs exactly item.duration; an existing bin is
            # never worse than that (marginal <= duration), so we only
            # open when nothing fits
            bins.append(_BinState())
            best_idx = len(bins) - 1
        bins[best_idx].add(item)
        assignment[item.uid] = best_idx
    return _finalize(instance, assignment, "offline_greedy")


def local_search(
    instance: Instance,
    assignment: Optional[Dict[int, int]] = None,
    max_rounds: int = 20,
) -> Packing:
    """Single-item relocation descent on a static assignment.

    Starting from ``assignment`` (default: :func:`greedy_assignment`),
    repeatedly move one item to another existing bin (or a fresh one)
    whenever that strictly decreases total cost, until a full round
    passes without improvement or ``max_rounds`` is hit.
    """
    if assignment is None:
        assignment = dict(greedy_assignment(instance).assignment)
    else:
        assignment = dict(assignment)

    by_uid = {it.uid: it for it in instance.items}
    groups: Dict[int, List[Item]] = {}
    for uid, b in assignment.items():
        groups.setdefault(b, []).append(by_uid[uid])

    def group_span(items: List[Item]) -> float:
        return union_length(it.interval for it in items)

    spans: Dict[int, float] = {b: group_span(items) for b, items in groups.items()}

    for _ in range(max_rounds):
        improved = False
        for uid in sorted(assignment):
            item = by_uid[uid]
            current = assignment[uid]
            src_items = groups[current]
            src_without = [it for it in src_items if it.uid != uid]
            src_delta = (group_span(src_without) if src_without else 0.0) - spans[current]
            if src_delta >= -1e-12:
                continue  # removing the item saves nothing; no move helps
            bin_ids = list(groups)
            next_fresh = max(bin_ids) + 1
            for target in bin_ids + [next_fresh]:
                if target == current:
                    continue
                tgt_items = groups.get(target, [])
                # moves only ever need the *target* group re-checked: the
                # source group shrinks, which cannot break feasibility
                if tgt_items and not _group_feasible(
                    tgt_items + [item], instance.capacity
                ):
                    continue
                tgt_delta = group_span(tgt_items + [item]) - spans.get(target, 0.0)
                if src_delta + tgt_delta < -1e-12:
                    # apply the move
                    groups[current] = src_without
                    spans[current] = spans[current] + src_delta
                    if not src_without:
                        del groups[current]
                        del spans[current]
                    groups.setdefault(target, []).append(item)
                    spans[target] = spans.get(target, 0.0) + tgt_delta
                    assignment[uid] = target
                    improved = True
                    break
        if not improved:
            break

    return _finalize(instance, assignment, "offline_local_search")


def exact_assignment(instance: Instance, max_nodes: int = 500_000) -> Packing:
    """Exact optimum static assignment by branch and bound (tiny n).

    Items are assigned in arrival order; at each node the next item is
    tried in every existing bin (feasibility-checked) and one fresh bin.
    Pruning uses the partial cost plus zero for the remainder (costs only
    grow), with the greedy solution as incumbent.

    Raises
    ------
    SolverLimitError
        When the node budget is exhausted; callers should fall back to
        :func:`local_search`.
    """
    items = list(instance.items)
    n = len(items)
    incumbent = local_search(instance)
    best_cost = incumbent.cost
    best_assignment = dict(incumbent.assignment)
    nodes = 0

    def partial_cost(groups: List[List[Item]]) -> float:
        return sum(union_length(it.interval for it in g) for g in groups)

    def recurse(i: int, groups: List[List[Item]], cost_so_far: float) -> None:
        nonlocal nodes, best_cost, best_assignment
        nodes += 1
        if nodes > max_nodes:
            raise SolverLimitError(
                f"exact static assignment exceeded {max_nodes} nodes (n={n})"
            )
        if cost_so_far >= best_cost - 1e-12:
            return
        if i == n:
            best_cost = cost_so_far
            best_assignment = {
                it.uid: b for b, group in enumerate(groups) for it in group
            }
            return
        item = items[i]
        for b, group in enumerate(groups):
            if _group_feasible(group + [item], instance.capacity):
                before = union_length(it.interval for it in group)
                group.append(item)
                after = union_length(it.interval for it in group)
                recurse(i + 1, groups, cost_so_far + after - before)
                group.pop()
        groups.append([item])
        recurse(i + 1, groups, cost_so_far + item.duration)
        groups.pop()

    recurse(0, [], 0.0)
    return _finalize(instance, best_assignment, "offline_exact")
