"""Streaming event merge: arrivals + a departure heap, classic order.

The classic engine materialises all ``2n`` events and lexsorts them by
``(time, kind, seq)`` (:func:`repro.core.events.event_stream`).  The
streaming merge reproduces *exactly* that total order without ever
holding more than the currently live items: arrivals are consumed
lazily from an iterator (in non-decreasing arrival order — the order
every generator and every stored instance already provides), and each
item's future departure is parked on a heap keyed ``(time, uid)``.

Why this is exact, not approximate:

* a departure on the heap belongs to an item that has already arrived,
  and every not-yet-consumed arrival is no earlier than the current one
  — so draining the heap up to (and including, departures-first) the
  next arrival's time can never emit a departure too early or miss one;
* departures at equal times pop in uid order, arrivals at equal times
  keep the input order — the same tie-breaks rules 2–4 of
  :mod:`repro.core.events` prescribe.

The heap therefore holds one entry per *live* item: memory is
O(peak-concurrently-open items), not O(total items).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Tuple

from ..core.errors import StreamOrderError
from ..core.events import Event, EventKind
from ..core.items import Item

__all__ = ["merge_events"]


def merge_events(items: Iterable[Item]) -> Iterator[Event]:
    """Yield the classic ``(time, kind, seq)``-ordered event stream lazily.

    ``items`` must arrive in non-decreasing arrival time (equal-time
    arrivals in the intended dispatch order, as in ``Instance.items``);
    an out-of-order arrival raises :class:`~repro.core.errors.StreamOrderError`.
    Arrival ``seq`` is the position in the input stream and departure
    ``seq`` is the uid — identical to
    :func:`repro.core.events.event_stream`, so the two streams compare
    equal element for element on any materialised instance.
    """
    heap: List[Tuple[float, int, Item]] = []
    last_arrival = float("-inf")
    for pos, item in enumerate(items):
        if item.arrival < last_arrival:
            raise StreamOrderError(
                f"arrival stream is out of order: item {item.uid} arrives at "
                f"{item.arrival!r} after an arrival at {last_arrival!r}"
            )
        last_arrival = item.arrival
        # departures-first at ties: a departure at exactly item.arrival
        # sorts as (t, DEPARTURE=0, uid) < (t, ARRIVAL=1, pos)
        while heap and heap[0][0] <= item.arrival:
            t, uid, departed = heapq.heappop(heap)
            yield Event(t, EventKind.DEPARTURE, uid, departed)
        yield Event(item.arrival, EventKind.ARRIVAL, pos, item)
        heapq.heappush(heap, (item.departure, item.uid, item))
    while heap:
        t, uid, departed = heapq.heappop(heap)
        yield Event(t, EventKind.DEPARTURE, uid, departed)
