"""The streaming engine: O(peak-open-items) replay of an item stream.

Twin number three.  The classic engine (and its flat-array and batched
siblings) materialise the full instance and lexsort all ``2n`` events up
front; this engine consumes an *iterator* of items in arrival order,
merges departures in on the fly (:mod:`repro.streaming.merge`), and
keeps only live state:

* open bins live in a dict keyed by bin index and are dropped the moment
  they close (tombstone reclamation) — a closed bin's Eq. 1 cost
  contribution is exactly ``closed_at - opened_at``, because a bin opens
  with its first item, stays non-empty until it closes, and is never
  reused, so the contribution is folded into a running total and the
  object freed;
* the item → bin map already pops on departure, so it too holds only
  live items;
* bins are :class:`StreamBin` — a :class:`~repro.core.bins.Bin` that
  tracks the latest member departure instead of appending every member
  to an unbounded audit ``history`` list;
* policy-side proof bookkeeping is suspended for the replay
  (``algorithm.audit_mode = False``) — Next Fit's Theorem 4
  ``release_log`` otherwise pins every released bin's residents for
  the life of the run.

Decisions are bit-identical to the classic engine: the same
:class:`~repro.algorithms.base.OnlineAlgorithm` object makes the same
calls in the same event order over bins with the same float loads, so
the assignment (and therefore the Eq. 1 cost) is the same — the
``compare_with_streaming`` oracle in :mod:`repro.verify.oracles`
enforces this on every corpus instance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..algorithms.base import OnlineAlgorithm
from ..core.bins import Bin
from ..core.errors import AlgorithmError, StreamOrderError
from ..core.instance import Instance
from ..core.intervals import Interval
from ..core.items import Item
from ..core.packing import Packing
from ..observability.stats import StatsCollector

__all__ = ["StreamBin", "StreamResult", "StreamingEngine", "streaming_run"]

_TOL = 1e-9


class _CapacityContext:
    """Duck-typed stand-in for an :class:`~repro.core.instance.Instance`.

    Every stock algorithm's :meth:`~repro.algorithms.base.OnlineAlgorithm.start`
    reads only ``instance.capacity``; streaming has no instance to offer,
    so this shim carries the capacity vector and nothing else.
    """

    __slots__ = ("capacity",)

    def __init__(self, capacity: np.ndarray) -> None:
        self.capacity = capacity


class StreamBin(Bin):
    """A :class:`~repro.core.bins.Bin` with O(1) memory per bin.

    The base class appends every member ever packed to ``history`` (the
    audit trail the offline analyses need); on an unbounded stream that
    list is the difference between O(live) and O(total) memory.  This
    subclass keeps ``history`` empty and tracks the single scalar the
    engine needs from it — the latest member departure, which is what
    :attr:`usage_period` falls back to while the bin is still open.
    """

    __slots__ = ("latest_departure",)

    def __init__(self, capacity: np.ndarray, index: int, opened_at: float) -> None:
        super().__init__(capacity, index, opened_at)
        self.latest_departure = float(opened_at)

    def pack(self, item: Item) -> None:
        # identical capacity-check and load arithmetic to the base class;
        # the appended audit entry is dropped immediately to keep the
        # per-bin footprint constant
        super().pack(item)
        self.history.pop()
        if item.departure > self.latest_departure:
            self.latest_departure = item.departure

    @property
    def usage_period(self) -> Interval:
        end = self.closed_at if self.closed_at is not None else self.latest_departure
        return Interval(self.opened_at, end)


@dataclass(frozen=True)
class StreamResult:
    """What one streaming replay learned.

    ``cost`` is the running Eq. 1 total: the exact ``closed - opened``
    contribution of every closed bin, plus the accrued-so-far usage of
    any bin still open when the stream ended (zero bins remain open when
    every item's departure is finite).  The running total sums in bin
    *close* order; :func:`streaming_run` cross-checks it against the
    assignment-derived :class:`~repro.core.packing.Packing` cost.
    """

    algorithm: str
    cost: float
    events: int
    arrivals: int
    departures: int
    bins_opened: int
    bins_closed: int
    open_bins: int
    peak_open_bins: int
    peak_live_items: int
    flushes: int
    assignment: Optional[Dict[int, int]] = None


class StreamingEngine:
    """Replays an item iterator through one algorithm with bounded memory.

    Parameters
    ----------
    algorithm:
        The dispatch policy (same object contract as the classic
        engine).
    capacity:
        Per-dimension bin capacity vector.
    collector:
        Optional :class:`~repro.observability.stats.StatsCollector`;
        when given the run is instrumented (dispatch timing, lifecycle
        counters, ``streaming_runs`` / ``stream_flushes`` /
        ``peak_live_items``).
    record_assignment:
        Keep the full uid → bin-index map.  Needed by the verify oracle
        and the ``Packing``-returning :func:`streaming_run` wrapper, but
        it is O(total items) — leave it off (the default) on unbounded
        streams; the engine then holds live state only.
    flush_every:
        Emit a ``"stream_flush"`` trace record (through the collector's
        sink, when one is attached) and bump ``stream_flushes`` every
        this many events.  ``0`` disables periodic flushing.
    """

    def __init__(
        self,
        algorithm: OnlineAlgorithm,
        capacity: np.ndarray,
        collector: Optional[StatsCollector] = None,
        record_assignment: bool = False,
        flush_every: int = 1_000_000,
    ) -> None:
        self.algorithm = algorithm
        self.capacity = np.asarray(capacity, dtype=np.float64)
        self.collector = collector
        self.record_assignment = record_assignment
        self.flush_every = int(flush_every)
        self._dispatch_s = 0.0
        self._ran = False

    # ------------------------------------------------------------------
    def run(self, items: Iterable[Item]) -> StreamResult:
        """Consume ``items`` (non-decreasing arrival order) to exhaustion."""
        if self._ran:
            raise AlgorithmError(
                "StreamingEngine instances are single-use; build a new one"
            )
        self._ran = True
        col = self.collector
        t_run = perf_counter()
        if col is not None:
            col.run_started(_CapacityContext(self.capacity), self.algorithm)
            self.algorithm.bind_collector(col)
        # suspend unbounded proof bookkeeping (e.g. next_fit's
        # release_log) for the duration of the replay: it is never read
        # online and would silently turn O(live) memory into O(stream)
        prev_audit = self.algorithm.audit_mode
        self.algorithm.audit_mode = False
        try:
            result = self._event_loop(items, col)
        finally:
            self.algorithm.audit_mode = prev_audit
            if col is not None:
                self.algorithm.bind_collector(None)
        if col is not None:
            col.record_run_totals(
                arrivals=result.arrivals,
                departures=result.departures,
                bins_opened=result.bins_opened,
                bins_closed=result.bins_closed,
                peak_open_bins=result.peak_open_bins,
                dispatch_time_s=self._dispatch_s,
            )
            col.streaming_runs += 1
            col.stream_flushes += result.flushes
            if result.peak_live_items > col.peak_live_items:
                col.peak_live_items = result.peak_live_items
            col.run_finished(
                perf_counter() - t_run,
                context={"engine": "streaming", "events": result.events},
            )
        return result

    # ------------------------------------------------------------------
    def _event_loop(
        self, items: Iterable[Item], col: Optional[StatsCollector]
    ) -> StreamResult:
        # Inline streaming merge: same drain conditions and tie-breaks as
        # repro.streaming.merge.merge_events (pinned against
        # core.events.event_stream by tests), without allocating an Event
        # object per event on the hot path.
        algorithm = self.algorithm
        capacity = self.capacity
        algorithm.start(_CapacityContext(capacity))

        heap: List[Tuple[float, int, Item]] = []
        heappush, heappop = heapq.heappush, heapq.heappop
        open_bins: Dict[int, StreamBin] = {}
        bin_of_item: Dict[int, StreamBin] = {}
        assignment: Optional[Dict[int, int]] = (
            {} if self.record_assignment else None
        )
        next_index = 0
        events = arrivals = departures = 0
        closed_count = peak_open = peak_live = 0
        cost_closed = 0.0
        dispatch_s = 0.0
        flushes = 0
        flush_every = self.flush_every
        next_flush = flush_every if flush_every else float("inf")
        last_arrival = float("-inf")
        instrumented = col is not None
        pc = perf_counter

        def handle_departure(item: Item, now: float) -> None:
            nonlocal closed_count, cost_closed
            bin_ = bin_of_item.pop(item.uid)
            closed = bin_.remove(item, now)
            algorithm.notify_departure(bin_, item, now, closed)
            if closed:
                closed_count += 1
                cost_closed += bin_.closed_at - bin_.opened_at
                del open_bins[bin_.index]  # tombstone reclamation

        for pos, item in enumerate(items):
            if item.arrival < last_arrival:
                raise StreamOrderError(
                    f"arrival stream is out of order: item {item.uid} arrives "
                    f"at {item.arrival!r} after an arrival at {last_arrival!r}"
                )
            now = last_arrival = item.arrival
            # departures-first at equal times (core.events rule 2)
            while heap and heap[0][0] <= now:
                t, _, departed = heappop(heap)
                handle_departure(departed, t)
                departures += 1
                events += 1

            opened: List[StreamBin] = []

            def open_new_bin() -> StreamBin:
                nonlocal next_index
                if opened:
                    raise AlgorithmError(
                        f"{algorithm.name} opened two bins for one item "
                        f"(item {item.uid})"
                    )
                fresh = StreamBin(capacity, index=next_index, opened_at=now)
                next_index += 1
                open_bins[fresh.index] = fresh
                opened.append(fresh)
                return fresh

            if instrumented:
                t0 = pc()
                target = algorithm.dispatch(item, now, open_new_bin)
                dispatch_s += pc() - t0
            else:
                target = algorithm.dispatch(item, now, open_new_bin)
            if target is None:
                raise AlgorithmError(
                    f"{algorithm.name} returned no bin for item {item.uid}"
                )
            target.pack(item)
            bin_of_item[item.uid] = target
            if assignment is not None:
                assignment[item.uid] = target.index
            heappush(heap, (item.departure, item.uid, item))

            arrivals += 1
            events += 1
            if len(open_bins) > peak_open:
                peak_open = len(open_bins)
            if len(bin_of_item) > peak_live:
                peak_live = len(bin_of_item)
            if events >= next_flush:
                # one flush per crossed threshold, however many events
                # the departure drain advanced past it in one iteration
                while events >= next_flush:
                    next_flush += flush_every
                flushes += 1
                self._emit_flush(col, events, cost_closed, open_bins, bin_of_item)

        while heap:
            t, _, departed = heappop(heap)
            handle_departure(departed, t)
            departures += 1
            events += 1

        # accrued usage of bins the stream left open (empty stream tail):
        # latest known departure bounds what they have certainly accrued
        cost = cost_closed
        for bin_ in open_bins.values():
            cost += bin_.latest_departure - bin_.opened_at

        self._dispatch_s = dispatch_s
        return StreamResult(
            algorithm=algorithm.name,
            cost=cost,
            events=events,
            arrivals=arrivals,
            departures=departures,
            bins_opened=next_index,
            bins_closed=closed_count,
            open_bins=len(open_bins),
            peak_open_bins=peak_open,
            peak_live_items=peak_live,
            flushes=flushes,
            assignment=assignment,
        )

    def _emit_flush(
        self,
        col: Optional[StatsCollector],
        events: int,
        cost_closed: float,
        open_bins: Dict[int, StreamBin],
        live_items: Dict[int, StreamBin],
    ) -> None:
        """Emit one periodic progress record through the trace sink."""
        if col is None or col.sink is None:
            return
        col.sink.emit(
            "stream_flush",
            {
                "events": events,
                "cost_closed": cost_closed,
                "open_bins": len(open_bins),
                "live_items": len(live_items),
            },
        )


def streaming_run(
    algorithm: OnlineAlgorithm,
    instance: Instance,
    collector: Optional[StatsCollector] = None,
    flush_every: int = 1_000_000,
) -> Packing:
    """Replay a materialised instance through the streaming engine.

    The adapter behind ``run(..., engine="streaming")`` and the
    ``compare_with_streaming`` oracle: records the full assignment and
    returns the same :class:`~repro.core.packing.Packing` currency as
    every other engine (built by ``Packing.from_assignment``, hence
    bit-identical cost arithmetic to the classic engine whenever the
    assignments agree).  The engine's running close-order cost total is
    cross-checked against the packing cost before returning — drift
    beyond tolerance means the streaming accounting itself is broken and
    raises rather than returning a plausible-looking packing.
    """
    engine = StreamingEngine(
        algorithm,
        instance.capacity,
        collector=collector,
        record_assignment=True,
        flush_every=flush_every,
    )
    result = engine.run(instance.items)
    packing = Packing.from_assignment(
        instance, result.assignment, algorithm=algorithm.name
    )
    if abs(result.cost - packing.cost) > _TOL * max(1.0, abs(packing.cost)):
        raise AlgorithmError(
            f"streaming running cost {result.cost!r} drifted from the "
            f"assignment-derived cost {packing.cost!r} "
            f"({algorithm.name} on {instance.name!r})"
        )
    return packing
