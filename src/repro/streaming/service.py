"""A long-lived placement service wrapping the streaming machinery.

:class:`PlacementService` turns the packer from a batch experiment into
an online server: callers ``place`` items and ``depart`` them one call
at a time, against a monotonic service clock, with no instance and no
pre-declared horizon.  State is exactly the streaming engine's live
state — open :class:`~repro.streaming.engine.StreamBin` objects, the
live item → bin map, a scheduled-departure heap — plus the dispatch
policy's own exported state, so the whole service can be snapshotted to
a JSON document and restored bit-identically (same future decisions,
same costs), persisted through the same crash-safe
:func:`~repro.orchestration.checkpoint.atomic_write` primitive the
checkpoint store uses.

Semantics
---------
* The clock never runs backwards: every ``at`` must be ``>= now``.
* Scheduled departures (items placed with a ``duration`` or an explicit
  ``departure``) fire automatically as the clock advances, *before* any
  arrival at the same instant — the departures-first tie-break of
  :mod:`repro.core.events`.
* Items placed with neither a duration nor a departure are
  **open-ended**: they stay resident until an explicit :meth:`depart`.
  Internally they carry the finite sentinel :data:`OPEN_ENDED`
  (``sys.float_info.max``) so the core item validation stays intact;
  the sentinel never reaches any cost term because cost accrues from
  observed clock times only.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import sys
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..algorithms.base import OnlineAlgorithm
from ..algorithms.registry import make_algorithm
from ..core.errors import ConfigurationError, DVBPError, InvalidItemError
from ..core.items import Item
from ..observability.stats import RunStats, StatsCollector
from ..orchestration.checkpoint import atomic_write
from .engine import StreamBin, _CapacityContext

__all__ = ["OPEN_ENDED", "PlacementService"]

#: Sentinel departure time of an item with no scheduled departure.
#: Finite (``Item`` validation requires it), astronomically far, and
#: excluded from every cost computation by construction.
OPEN_ENDED = sys.float_info.max

#: Snapshot document schema; bump on incompatible changes.
SNAPSHOT_SCHEMA = "repro-service-snapshot/v1"

__all__.append("SNAPSHOT_SCHEMA")


class PlacementService:
    """An online DVBP placement server with snapshot/restore.

    Parameters
    ----------
    policy:
        Registry name of the dispatch policy (e.g. ``"move_to_front"``).
        The policy must support ``export_state``/``import_state`` for
        :meth:`snapshot` to work — all stock policies do.
    capacity:
        Per-dimension bin capacity: a sequence, or a scalar combined
        with ``d``.
    d:
        Number of resource dimensions when ``capacity`` is a scalar.
    seed:
        Seed forwarded to ``random_fit`` (ignored by deterministic
        policies).
    collector:
        Optional shared :class:`~repro.observability.stats.StatsCollector`
        (e.g. to fan service telemetry into an existing trace sink); a
        private one is created when omitted.
    """

    def __init__(
        self,
        policy: str = "move_to_front",
        capacity: Union[float, Sequence[float]] = 100.0,
        d: int = 1,
        seed: int = 0,
        collector: Optional[StatsCollector] = None,
    ) -> None:
        if np.isscalar(capacity):
            cap = np.full(int(d), float(capacity))
        else:
            cap = np.asarray(capacity, dtype=np.float64)
        if cap.ndim != 1 or cap.size < 1 or not np.all(cap > 0):
            raise ConfigurationError(
                f"capacity must be a positive vector, got {capacity!r}"
            )
        self.policy = policy
        self.seed = int(seed)
        self.capacity = cap
        self.collector = collector if collector is not None else StatsCollector()
        kwargs = {"seed": self.seed} if policy == "random_fit" else {}
        self._algorithm: OnlineAlgorithm = make_algorithm(policy, **kwargs)
        # a service lives indefinitely: suspend unbounded proof
        # bookkeeping (next_fit's release_log) permanently, same as the
        # streaming engine does per run
        self._algorithm.audit_mode = False
        self._algorithm.start(_CapacityContext(cap))
        self.collector.run_started(_CapacityContext(cap), self._algorithm)
        self._algorithm.bind_collector(self.collector)
        self._now = 0.0
        self._next_uid = 0
        self._next_bin_index = 0
        self._open_bins: Dict[int, StreamBin] = {}
        self._items: Dict[int, Tuple[Item, StreamBin]] = {}
        self._pending: List[Tuple[float, int]] = []
        self._cost_closed = 0.0
        self._arrivals = 0
        self._departures = 0
        self._bins_closed = 0
        self._peak_open_bins = 0
        self._peak_live_items = 0

    # ------------------------------------------------------------------
    # clock and state queries
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The service clock (the latest ``at`` any call supplied)."""
        return self._now

    @property
    def live_items(self) -> int:
        """Number of currently resident items."""
        return len(self._items)

    @property
    def open_bins(self) -> int:
        """Number of currently open bins."""
        return len(self._open_bins)

    @property
    def cost(self) -> float:
        """Eq. 1 cost accrued so far.

        Exact ``closed - opened`` usage of every closed bin, plus
        ``now - opened`` for each still-open bin (open bins have been
        continuously non-empty since they opened, so that is their exact
        accrued usage — no estimate involved).
        """
        return self._cost_closed + sum(
            self._now - b.opened_at for b in self._open_bins.values()
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def place(
        self,
        size: Union[float, Sequence[float]],
        duration: Optional[float] = None,
        departure: Optional[float] = None,
        at: Optional[float] = None,
        item_id: Optional[int] = None,
    ) -> int:
        """Place one item; return the index of the bin it landed in.

        ``duration`` and ``departure`` are mutually exclusive ways to
        schedule the item's automatic departure; with neither the item
        is open-ended and departs only via :meth:`depart`.  ``at``
        defaults to the current clock and must not move it backwards.
        ``item_id`` overrides the auto-assigned uid (must not collide
        with a live item).
        """
        at = self._advance(at)
        if duration is not None and departure is not None:
            raise ConfigurationError("pass duration or departure, not both")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError(f"duration must be positive, got {duration}")
            end = at + float(duration)
        elif departure is not None:
            end = float(departure)
            if end <= at:
                raise ConfigurationError(
                    f"departure {end} must be after arrival {at}"
                )
        else:
            end = OPEN_ENDED
        if item_id is None:
            uid = self._next_uid
        else:
            uid = int(item_id)
            if uid in self._items:
                raise ConfigurationError(f"item id {uid} is already live")
        self._next_uid = max(self._next_uid, uid + 1)
        item = Item(at, end, np.asarray(size, dtype=np.float64), uid=uid)
        if item.size.shape != self.capacity.shape or np.any(item.size > self.capacity):
            raise InvalidItemError(
                f"item size {np.asarray(size)!r} does not fit the service "
                f"capacity {self.capacity!r}"
            )

        opened: List[StreamBin] = []

        def open_new_bin() -> StreamBin:
            fresh = StreamBin(self.capacity, index=self._next_bin_index, opened_at=at)
            self._next_bin_index += 1
            self._open_bins[fresh.index] = fresh
            opened.append(fresh)
            return fresh

        t0 = perf_counter()
        target = self._algorithm.dispatch(item, at, open_new_bin)
        target.pack(item)
        elapsed = perf_counter() - t0
        self._items[uid] = (item, target)
        if end != OPEN_ENDED:
            heapq.heappush(self._pending, (end, uid))
        self._arrivals += 1
        if len(self._open_bins) > self._peak_open_bins:
            self._peak_open_bins = len(self._open_bins)
        if len(self._items) > self._peak_live_items:
            self._peak_live_items = len(self._items)
        self.collector.record_arrival(elapsed, opened_new=bool(opened))
        if len(self._items) > self.collector.peak_live_items:
            self.collector.peak_live_items = len(self._items)
        return target.index

    def depart(self, item_id: int, at: Optional[float] = None) -> bool:
        """Depart a live item explicitly; return whether its bin closed.

        The call first advances the clock to ``at`` (firing any
        departure scheduled at or before it), so departing an item
        *after* its scheduled time raises — it already left.
        """
        at = self._advance(at)
        if item_id not in self._items:
            raise ConfigurationError(
                f"item {item_id} is not live (never placed, or already departed)"
            )
        return self._process_departure(int(item_id), at)

    def advance(self, to: float) -> int:
        """Advance the clock to ``to``; return how many departures fired."""
        before = self._departures
        self._advance(float(to))
        return self._departures - before

    def stats(self) -> RunStats:
        """Lifecycle counters in the library's standard stats currency."""
        return RunStats(
            algorithm=self._algorithm.name,
            runs=1,
            events=self._arrivals + self._departures,
            arrivals=self._arrivals,
            departures=self._departures,
            bins_opened=self._next_bin_index,
            bins_closed=self._bins_closed,
            peak_open_bins=self._peak_open_bins,
            peak_live_items=self._peak_live_items,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _advance(self, at: Optional[float]) -> float:
        if at is None:
            at = self._now
        at = float(at)
        if at < self._now:
            raise ConfigurationError(
                f"the service clock is monotonic: at={at} is before now={self._now}"
            )
        # scheduled departures up to and including ``at`` fire before
        # whatever op requested the advance (departures-first tie-break)
        while self._pending and self._pending[0][0] <= at:
            t, uid = heapq.heappop(self._pending)
            entry = self._items.get(uid)
            if entry is None or entry[0].departure != t:
                continue  # stale entry: the item departed explicitly
            self._process_departure(uid, t)
        self._now = at
        return at

    def _process_departure(self, uid: int, now: float) -> bool:
        item, bin_ = self._items.pop(uid)
        closed = bin_.remove(item, now)
        self._algorithm.notify_departure(bin_, item, now, closed)
        self._departures += 1
        if closed:
            self._bins_closed += 1
            self._cost_closed += bin_.closed_at - bin_.opened_at
            del self._open_bins[bin_.index]
        self.collector.record_departure(closed)
        return closed

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the complete service state.

        Restoring it (:meth:`restore`) yields a service that makes the
        same future decisions at the same costs: bins are rebuilt by
        re-packing their residents in original pack order (so float
        loads re-fold identically), and the policy re-adopts its own
        exported state (open-list order, RNG stream position, …).
        """
        bins = []
        for index in sorted(self._open_bins):
            b = self._open_bins[index]
            bins.append({
                "index": index,
                "opened_at": b.opened_at,
                "latest_departure": b.latest_departure,
                "items": [
                    {
                        "uid": it.uid,
                        "arrival": it.arrival,
                        "departure": it.departure,
                        "size": [float(x) for x in it.size],
                    }
                    for it in b.active_items()
                ],
            })
        pending = sorted(
            (t, uid) for t, uid in self._pending
            if uid in self._items and self._items[uid][0].departure == t
        )
        return {
            "schema": SNAPSHOT_SCHEMA,
            "policy": self.policy,
            "seed": self.seed,
            "capacity": [float(x) for x in self.capacity],
            "now": self._now,
            "next_uid": self._next_uid,
            "next_bin_index": self._next_bin_index,
            "cost_closed": self._cost_closed,
            "counters": {
                "arrivals": self._arrivals,
                "departures": self._departures,
                "bins_closed": self._bins_closed,
                "peak_open_bins": self._peak_open_bins,
                "peak_live_items": self._peak_live_items,
            },
            "bins": bins,
            "pending": [[t, uid] for t, uid in pending],
            "algorithm": self._algorithm.export_state(),
        }

    @classmethod
    def restore(
        cls,
        state: Mapping[str, Any],
        collector: Optional[StatsCollector] = None,
    ) -> "PlacementService":
        """Rebuild a service from a :meth:`snapshot` document."""
        if state.get("schema") != SNAPSHOT_SCHEMA:
            raise ConfigurationError(
                f"not a service snapshot (schema {state.get('schema')!r}, "
                f"expected {SNAPSHOT_SCHEMA!r})"
            )
        svc = cls(
            policy=state["policy"],
            capacity=state["capacity"],
            seed=state.get("seed", 0),
            collector=collector,
        )
        svc._now = float(state["now"])
        svc._next_uid = int(state["next_uid"])
        svc._next_bin_index = int(state["next_bin_index"])
        svc._cost_closed = float(state["cost_closed"])
        counters = state["counters"]
        svc._arrivals = int(counters["arrivals"])
        svc._departures = int(counters["departures"])
        svc._bins_closed = int(counters["bins_closed"])
        svc._peak_open_bins = int(counters["peak_open_bins"])
        svc._peak_live_items = int(counters["peak_live_items"])
        for rec in state["bins"]:
            b = StreamBin(
                svc.capacity, index=int(rec["index"]), opened_at=float(rec["opened_at"])
            )
            for it_rec in rec["items"]:
                item = Item(
                    float(it_rec["arrival"]),
                    float(it_rec["departure"]),
                    np.asarray(it_rec["size"], dtype=np.float64),
                    uid=int(it_rec["uid"]),
                )
                b.pack(item)  # re-folds the load in original pack order
                svc._items[item.uid] = (item, b)
            # pack() tracked only the residents' max departure; the true
            # high-water mark may come from an already-departed member
            b.latest_departure = float(rec["latest_departure"])
            svc._open_bins[b.index] = b
        svc._pending = [(float(t), int(uid)) for t, uid in state["pending"]]
        heapq.heapify(svc._pending)
        svc._algorithm.import_state(state["algorithm"], svc._open_bins)
        return svc

    def snapshot_to(self, path: str) -> str:
        """Persist :meth:`snapshot` crash-safely; return the path.

        Uses the checkpoint store's atomic-write primitive (temp file +
        fsync + rename + directory fsync) and embeds a SHA-256 checksum
        so :meth:`restore_from` can reject torn or hand-edited files.
        """
        state = self.snapshot()
        body = json.dumps(state, sort_keys=True)
        document = json.dumps(
            {"sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
             "state": state},
            sort_keys=True, indent=2,
        )
        atomic_write(path, document + "\n")
        return path

    @classmethod
    def restore_from(
        cls, path: str, collector: Optional[StatsCollector] = None
    ) -> "PlacementService":
        """Load a :meth:`snapshot_to` file, verifying its checksum."""
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        body = json.dumps(document["state"], sort_keys=True)
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if digest != document["sha256"]:
            raise ConfigurationError(
                f"service snapshot {path!r} failed its checksum "
                f"(stored {document['sha256'][:12]}…, computed {digest[:12]}…)"
            )
        return cls.restore(document["state"], collector=collector)


def serve_loop(
    service: PlacementService,
    requests: Iterable[str],
    write: Callable[[str], None],
) -> int:
    """Drive ``service`` over a JSON-lines request/response protocol.

    One request object per input line, one response object per output
    line — ``repro serve`` wires this to stdin/stdout; tests drive it
    with plain lists.  Requests carry an ``"op"`` key:

    * ``{"op": "place", "size": s, "duration": …}`` (or ``"departure"``,
      ``"at"``, ``"item_id"``) →
      ``{"ok": true, "bin": i, "item_id": uid, "now": t}``;
    * ``{"op": "depart", "item_id": uid, "at": …}`` →
      ``{"ok": true, "closed": bool, "now": t}``;
    * ``{"op": "advance", "to": t}`` →
      ``{"ok": true, "departed": k, "now": t}``;
    * ``{"op": "stats"}`` → ``{"ok": true, "stats": {…}, "cost": c,
      "live_items": n, "open_bins": m, "now": t}``;
    * ``{"op": "snapshot", "path": p}`` → ``{"ok": true, "path": p}``
      (checksummed file via :meth:`PlacementService.snapshot_to`);
      without ``"path"`` the state document is returned inline under
      ``"state"``;
    * ``{"op": "quit"}`` → ``{"ok": true, "bye": true}`` and the loop
      returns early.

    A malformed or failing request yields ``{"ok": false, "error": msg}``
    and the loop continues — one bad client line must not take the
    service down.  Blank lines are skipped.  Returns the number of
    requests handled.
    """
    import dataclasses

    handled = 0
    for raw in requests:
        raw = raw.strip()
        if not raw:
            continue
        handled += 1
        try:
            req = json.loads(raw)
            op = req.get("op")
            if op == "place":
                uid = req["item_id"] if req.get("item_id") is not None \
                    else service._next_uid
                bin_index = service.place(
                    req["size"],
                    duration=req.get("duration"),
                    departure=req.get("departure"),
                    at=req.get("at"),
                    item_id=req.get("item_id"),
                )
                resp = {
                    "ok": True, "bin": bin_index, "item_id": int(uid),
                    "now": service.now,
                }
            elif op == "depart":
                closed = service.depart(req["item_id"], at=req.get("at"))
                resp = {"ok": True, "closed": closed, "now": service.now}
            elif op == "advance":
                departed = service.advance(req["to"])
                resp = {"ok": True, "departed": departed, "now": service.now}
            elif op == "stats":
                resp = {
                    "ok": True,
                    "stats": dataclasses.asdict(service.stats()),
                    "cost": service.cost,
                    "live_items": service.live_items,
                    "open_bins": service.open_bins,
                    "now": service.now,
                }
            elif op == "snapshot":
                if req.get("path"):
                    resp = {"ok": True, "path": service.snapshot_to(req["path"])}
                else:
                    resp = {"ok": True, "state": service.snapshot()}
            elif op == "quit":
                write(json.dumps({"ok": True, "bye": True}))
                break
            else:
                resp = {"ok": False, "error": f"unknown op {op!r}"}
        except (DVBPError, ValueError, KeyError, TypeError, OSError) as exc:
            resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        write(json.dumps(resp))
    return handled


__all__.append("serve_loop")
