"""repro.streaming — incremental event consumption with bounded memory.

The fourth execution mode (after classic, fastpath, and batch): instead
of materialising an :class:`~repro.core.instance.Instance` and
lexsorting all ``2n`` events up front, this package consumes items one
at a time and keeps only live state, so memory scales with the *peak
number of concurrently open items*, not the stream length.  Three
modules:

* :mod:`~repro.streaming.merge` — the streaming merge: arrivals from an
  iterator interleaved with a departure heap, reproducing the classic
  ``(time, kind, seq)`` event order (departures-first at ties) exactly;
* :mod:`~repro.streaming.engine` — :class:`StreamingEngine`, the
  bounded-memory replay loop (tombstone-reclaimed bins, periodic cost
  flushing), plus :func:`streaming_run`, the
  :class:`~repro.core.packing.Packing`-returning adapter behind
  ``run(..., engine="streaming")``;
* :mod:`~repro.streaming.service` — :class:`PlacementService`, a
  long-lived ``place``/``depart`` server with crash-safe JSON
  snapshot/restore built on the orchestration checkpoint machinery
  (also reachable as ``repro serve``).

The engine is bit-identical in final cost and assignment to the classic
engine on every materialised instance — the ``compare_with_streaming``
oracle in :mod:`repro.verify` enforces this in every verify profile.
"""

from .engine import StreamBin, StreamingEngine, StreamResult, streaming_run
from .merge import merge_events
from .service import OPEN_ENDED, SNAPSHOT_SCHEMA, PlacementService, serve_loop

__all__ = [
    "StreamBin",
    "StreamingEngine",
    "StreamResult",
    "streaming_run",
    "merge_events",
    "OPEN_ENDED",
    "SNAPSHOT_SCHEMA",
    "PlacementService",
    "serve_loop",
]
