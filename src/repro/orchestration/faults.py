"""Worker fault handling: retries, backoff, and deterministic injection.

Two halves:

* **Recovery primitives** — :class:`RetryPolicy` (bounded retry with
  deterministic exponential backoff) and :func:`call_with_retry` (the
  serial-path / single-run retry loop, also used by ``repro run``).
* **Deterministic fault injection** — :class:`FaultPlan`, an
  env-triggered harness that makes selected work units fail on their
  early attempts.  Fault injection must reach *worker processes*, which
  inherit the parent's environment under both fork and spawn start
  methods, so the trigger is environment variables rather than Python
  state:

  ``REPRO_FAULT_UNITS``
      Comma-separated unit selectors, each ``algorithm:index`` or
      ``*:index`` (any algorithm) or a bare ``index``.  Example:
      ``"first_fit:3,*:7"``.
  ``REPRO_FAULT_MODE``
      ``"raise"`` (default) — the worker raises
      :class:`InjectedWorkerFault`, exercising the per-unit retry path;
      ``"exit"`` — the worker calls ``os._exit(17)``, killing the
      process and exercising the ``BrokenProcessPool`` recovery path;
      ``"hang"`` — the worker sleeps far past any sane unit timeout,
      exercising the timeout + pool-recycle path.
  ``REPRO_FAULT_TIMES``
      How many attempts of a selected unit fail before it succeeds
      (default 1: the first attempt fails, the retry completes).  This
      is what makes injection *deterministic yet recoverable* — a unit
      that failed unconditionally could never be retried to success.
  ``REPRO_FAULT_KILL_AFTER``
      Orchestrator-side: SIGKILL the *sweep process itself* immediately
      after its N-th checkpoint flush.  This is the kill-resume smoke
      hook (``tools/kill_resume_smoke.py`` and the CI job): the death is
      mid-run, un-catchable, and lands at a deterministic point.

The plan is re-read from the environment in each worker (module-level
entry points, picklable by design), so no injection state needs to cross
the process boundary.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Optional, Tuple

from ..simulation.parallel import UnitResult, simulate_payload, unit_key

__all__ = [
    "InjectedWorkerFault",
    "FaultPlan",
    "RetryPolicy",
    "call_with_retry",
    "fault_aware_unit",
    "ENV_FAULT_UNITS",
    "ENV_FAULT_MODE",
    "ENV_FAULT_TIMES",
    "ENV_FAULT_KILL_AFTER",
]

ENV_FAULT_UNITS = "REPRO_FAULT_UNITS"
ENV_FAULT_MODE = "REPRO_FAULT_MODE"
ENV_FAULT_TIMES = "REPRO_FAULT_TIMES"
ENV_FAULT_KILL_AFTER = "REPRO_FAULT_KILL_AFTER"

_HANG_SECONDS = 3600.0


class InjectedWorkerFault(RuntimeError):
    """The deterministic failure raised by ``REPRO_FAULT_MODE=raise``."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed injection plan (empty plan = injection disabled).

    ``units`` holds ``(algorithm_or_*, instance_index)`` selectors;
    ``mode`` is ``raise``/``exit``/``hang``; ``times`` is the number of
    failing attempts per selected unit; ``kill_after_flushes`` is the
    orchestrator-side SIGKILL trigger (``None`` = off).
    """

    units: FrozenSet[Tuple[str, int]] = frozenset()
    mode: str = "raise"
    times: int = 1
    kill_after_flushes: Optional[int] = None

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        """Parse the plan from ``REPRO_FAULT_*`` (unset = empty plan)."""
        env = os.environ if environ is None else environ
        spec = env.get(ENV_FAULT_UNITS, "").strip()
        units: List[Tuple[str, int]] = []
        for token in filter(None, (t.strip() for t in spec.split(","))):
            if ":" in token:
                algo, _, idx = token.rpartition(":")
            else:
                algo, idx = "*", token
            units.append((algo or "*", int(idx)))
        kill_raw = env.get(ENV_FAULT_KILL_AFTER, "").strip()
        return cls(
            units=frozenset(units),
            mode=env.get(ENV_FAULT_MODE, "raise").strip() or "raise",
            times=int(env.get(ENV_FAULT_TIMES, "1") or "1"),
            kill_after_flushes=int(kill_raw) if kill_raw else None,
        )

    @property
    def active(self) -> bool:
        """Whether any worker-side injection is configured."""
        return bool(self.units)

    def should_fail(self, algorithm: str, index: int, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) of a unit fails."""
        if attempt >= self.times:
            return False
        return (algorithm, index) in self.units or ("*", index) in self.units

    def trigger(self, algorithm: str, index: int, attempt: int) -> None:
        """Fail in the configured mode (no-op if this attempt passes)."""
        if not self.should_fail(algorithm, index, attempt):
            return
        if self.mode == "exit":
            os._exit(17)
        if self.mode == "hang":
            time.sleep(_HANG_SECONDS)
            return
        raise InjectedWorkerFault(
            f"injected fault: unit ({algorithm}, {index}) attempt {attempt}"
        )

    def maybe_kill_self(self, flushes: int) -> None:
        """Orchestrator-side SIGKILL after the configured flush count."""
        if self.kill_after_flushes is not None and flushes >= self.kill_after_flushes:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``delay(attempt)`` is the sleep before re-running attempt number
    ``attempt`` (1-based for the first retry):
    ``min(backoff_base_s * backoff_factor**(attempt-1), max_backoff_s)``.
    No jitter — sweep workloads have no thundering-herd peer to avoid,
    and deterministic delays keep fault-injection tests reproducible.
    """

    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (attempt >= 1), in seconds."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )


def call_with_retry(
    fn,
    policy: RetryPolicy,
    label: str = "call",
    collector=None,
    sleep=time.sleep,
):
    """Run ``fn()`` with the policy's bounded retry + backoff.

    The in-process recovery primitive behind the serial sweep path and
    ``repro run --retries``.  Each failed attempt bumps the collector's
    ``retries`` counter (when one is given); the final failure re-raises
    the last exception unchanged.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception:
            if attempt >= policy.retries:
                raise
            attempt += 1
            if collector is not None:
                collector.record_fault_event("retry")
            sleep(policy.delay(attempt))


def fault_aware_unit(task: Tuple[int, tuple]):
    """Worker entry point: fault injection check, then the real unit.

    ``task`` is ``(attempt, payload)`` where ``payload`` is any
    :func:`~repro.simulation.parallel.simulate_payload` payload — one
    per-unit simulation (returning a single :class:`UnitResult`) or one
    batched instance payload (returning a list of them).  The attempt
    number stays *outside* the payload so the simulated work is
    byte-identical across attempts — retries cannot change results.
    Module-level (picklable) for spawn-method pools.

    Fault selectors match on the payload's :func:`unit_key`; for a
    batched payload that is ``("__batch__", index)``, so ``"*:idx"`` and
    bare-index selectors keep working across engines.
    """
    attempt, payload = task
    plan = FaultPlan.from_env()
    if plan.active:
        name, index = unit_key(payload)
        plan.trigger(name, index, attempt)
    return simulate_payload(payload)
